"""Fig. 8: % of logic modules (ALMs) consumed vs scheduler size."""

import pytest

from repro.experiments.fig8_alms import alms_table


def test_fig8_alms(benchmark, save_table):
    table = benchmark(alms_table)
    save_table("fig8_alms", table)
    sizes = table.column("size")
    # Paper anchors: PIFO 64% @ 1K, does not fit at 2K; PIEO fits 30K.
    assert table.column("pifo_alms_pct")[sizes.index(1024)] == (
        pytest.approx(64.0, abs=2))
    assert not table.column("pifo_fits")[sizes.index(2048)]
    assert table.column("pieo_fits")[sizes.index(30000)]
