"""Micro-benchmarks of the primitive operations across implementations.

These measure *model simulation speed* in Python (useful for sizing
larger simulations); the hardware-time story is carried by the cycle
counters, which every variant reports via extra_info.
"""

import random

import pytest

from repro.core.element import Element
from repro.core.pieo import PieoHardwareList
from repro.core.pifo import PifoDesignPieoList
from repro.core.reference import ReferencePieo

CAPACITY = 1024

IMPLEMENTATIONS = {
    "reference": lambda: ReferencePieo(CAPACITY),
    "hardware": lambda: PieoHardwareList(CAPACITY),
    "pifo-design": lambda: PifoDesignPieoList(CAPACITY),
}


def _warm(structure, occupancy, rng):
    for index in range(occupancy):
        structure.enqueue(Element(("warm", index),
                                  rank=rng.randint(0, 1 << 16),
                                  send_time=rng.choice([0, 0, 1 << 20])))


@pytest.mark.parametrize("name", sorted(IMPLEMENTATIONS))
def test_enqueue_dequeue_pair(benchmark, name):
    rng = random.Random(11)
    structure = IMPLEMENTATIONS[name]()
    _warm(structure, CAPACITY // 2, rng)
    counter = [0]

    def pair():
        counter[0] += 1
        structure.enqueue(Element(counter[0],
                                  rank=rng.randint(0, 1 << 16)))
        structure.dequeue(now=0)

    benchmark(pair)
    counters = getattr(structure, "counters", None)
    if counters is not None:
        ops = max(1, counters.total_ops())
        benchmark.extra_info["modeled_cycles_per_op"] = (
            counters.cycles / ops)


@pytest.mark.parametrize("name", sorted(IMPLEMENTATIONS))
def test_dequeue_flow(benchmark, name):
    rng = random.Random(13)
    structure = IMPLEMENTATIONS[name]()
    _warm(structure, CAPACITY // 2, rng)

    def extract_and_restore():
        element = structure.dequeue_flow(("warm", 100))
        structure.enqueue(element)

    benchmark(extract_and_restore)


def test_group_filtered_dequeue(benchmark):
    """The hierarchical extraction path on the hardware model."""
    rng = random.Random(17)
    structure = PieoHardwareList(CAPACITY)
    for index in range(CAPACITY // 2):
        structure.enqueue(Element(index, rank=rng.randint(0, 1 << 16),
                                  group=index % 8))
    state = [CAPACITY]

    def grouped_pair():
        element = structure.dequeue(now=0, group_range=(3, 3))
        state[0] += 1
        structure.enqueue(Element(state[0],
                                  rank=rng.randint(0, 1 << 16),
                                  group=3))
        assert element is None or element.group == 3

    benchmark(grouped_pair)
