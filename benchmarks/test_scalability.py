"""Section 6.1: the "over 30x more scalable than PIFO" headline."""

from repro.experiments.scalability import scalability_table


def test_scalability(benchmark, save_table):
    table = benchmark(scalability_table)
    save_table("scalability", table)
    stratix_v_row = table.rows[0]
    assert stratix_v_row[1] < 2_048        # PIFO max
    assert stratix_v_row[3] >= 30_000      # PIEO max (logic + SRAM)
    assert stratix_v_row[4] > 30           # the 30x claim
