"""End-to-end simulation throughput on the fig12 workload.

Measures packets/sec through the full stack (sources -> hierarchical
TokenBucket/WF2Q+ scheduler -> transmit engine -> 40 Gbps link) for the
event-queue x drain-path matrix, and records the result in
``bench_results/sim_throughput.txt``.

Methodology: this box's wall clock is noisy (±30% run to run), so raw
packets/sec from different invocations are not comparable.  Every round
therefore runs ALL configurations back to back and only the
*within-round ratio* against the baseline is trusted; the table reports
the median ratio across rounds next to the median raw rate.  The
baseline configuration (``reference`` heap event queue, batched drain
off) reproduces the seed revision's simulation loop in-tree, so
``ratio_vs_baseline`` is the speedup over the seed.

Honest numbers: against the actual seed revision (measured separately
via a git-worktree checkout with the same interleaved protocol) the
default fast path is ~1.7-2.4x (median ~2x) — short of the 3x this
change originally targeted.  Most of that win comes from scheduler-path
work (grouped reference list, context reuse, inlined hot paths) that is
baked into *every* in-tree configuration, so the within-tree deltas
below are small: the batched drain adds a stable ~1.1x, while the
pure-Python calendar queue roughly breaks even against C ``heapq`` at
this workload's event density (its value is the bounded-compaction
behaviour under cancel churn, not raw speed).  Profiles
(``sim_profile.txt``) show the remaining time is scheduler logic spread
thinly across ~30 frames at 1-9% each, so further gains need
algorithmic scheduler work, not loop tuning.
"""

import cProfile
import io
import pathlib
import pstats
import statistics
import time

from repro.experiments.hier_common import (default_node_rates,
                                           run_hierarchy)
from repro.experiments.runner import Table
from repro.sim.packet import reset_packet_ids

DURATION = 0.003
ROUNDS = 3

#: (label, event_queue, drain) — first entry is the baseline.
CONFIGS = (
    ("baseline", "reference", False),
    ("drain", "reference", True),
    ("calendar", "calendar", False),
    ("calendar+drain", "calendar", True),
)


def _one_run(event_queue: str, drain: bool):
    """One fig12-workload simulation; returns (packets, elapsed_sec)."""
    reset_packet_ids(0)
    start = time.perf_counter()
    run = run_hierarchy(default_node_rates(), duration=DURATION,
                        event_queue=event_queue, drain=drain)
    elapsed = time.perf_counter() - start
    return len(run.engine.recorder), elapsed


def _throughput_table() -> Table:
    rates = {label: [] for label, _, _ in CONFIGS}
    ratios = {label: [] for label, _, _ in CONFIGS}
    packets = None
    for _ in range(ROUNDS):
        round_rates = {}
        for label, event_queue, drain in CONFIGS:
            count, elapsed = _one_run(event_queue, drain)
            if packets is None:
                packets = count
            assert count == packets, (
                f"{label}: {count} packets != baseline {packets}; "
                "configurations must be result-identical")
            round_rates[label] = count / elapsed
        base = round_rates[CONFIGS[0][0]]
        for label, rate in round_rates.items():
            rates[label].append(rate)
            ratios[label].append(rate / base)
    table = Table(
        title=(f"Simulation throughput, fig12 workload ({packets} "
               f"packets, {DURATION*1e3:g} ms simulated, "
               f"{ROUNDS} interleaved rounds)"),
        headers=["config", "event_queue", "drain", "pps_median",
                 "ratio_vs_baseline"],
    )
    for label, event_queue, drain in CONFIGS:
        table.add_row(label, event_queue, "on" if drain else "off",
                      round(statistics.median(rates[label])),
                      round(statistics.median(ratios[label]), 2))
    table.add_note("ratio_vs_baseline is the median of within-round "
                   "ratios (each round runs every config back to back), "
                   "which cancels machine-load drift; raw pps_median is "
                   "machine-state dependent and not comparable across "
                   "invocations. baseline = this tree with the seed's "
                   "loop shape (reference heap, no batched drain); the "
                   "~2x win over the actual seed revision comes from "
                   "scheduler-path optimizations shared by every row "
                   "(see module docstring).")
    return table


def _write_profile(path) -> None:
    """cProfile the fast configuration; top frames by cumulative time."""
    profiler = cProfile.Profile()
    reset_packet_ids(0)
    profiler.enable()
    run_hierarchy(default_node_rates(), duration=DURATION,
                  event_queue="calendar", drain=True)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(30)
    path.write_text(buffer.getvalue())


def test_sim_throughput_table(benchmark, save_table):
    table = benchmark.pedantic(_throughput_table, rounds=1, iterations=1)
    save_table("sim_throughput", table)
    ratio = dict(zip(table.column("config"),
                     table.column("ratio_vs_baseline")))
    # Floors sit well under the observed medians (drain ~1.1x, the
    # calendar configs ~0.8-1.4x round to round) so a noisy round cannot
    # flake; dropping through one means a path genuinely regressed.
    assert ratio["drain"] >= 0.95, table.to_text()
    assert ratio["calendar"] >= 0.6, table.to_text()
    assert ratio["calendar+drain"] >= 0.7, table.to_text()


def test_sim_profile_artifact():
    """Regenerate the committed cProfile snapshot of the fast config
    (uploaded as a CI artifact by the perf-smoke job)."""
    results_dir = pathlib.Path(__file__).parent / "bench_results"
    results_dir.mkdir(exist_ok=True)
    _write_profile(results_dir / "sim_profile.txt")
