"""Observability overhead: raw backend vs TracedList (null and live).

Measures mixed primitive-op throughput for each software backend in
three configurations:

* ``raw`` — the bare backend from the registry;
* ``traced-null`` — wrapped in :class:`TracedList` with the default
  null observers (the configuration shipped when nobody passes
  ``--trace``/``--metrics``);
* ``traced-live`` — wrapped with a live ring-buffer tracer *and* a
  metrics registry, i.e. the full observation cost.

The guarantee under regression test: the null path costs < 10% ops/sec
versus the raw backend.  (The live path is reported for scale but not
gated — paying for observation is the user's explicit choice.)

Results land in ``bench_results/obs_overhead.txt``.
"""

import random
import time

from repro.core.backends import make_list
from repro.core.element import Element
from repro.experiments.runner import Table
from repro.obs import MetricsRegistry, TracedList, Tracer

BACKENDS = ("reference", "hardware", "fast")
CAPACITY = 1_024
OPERATIONS = 20_000
ROUNDS = 3  # best-of to damp scheduler noise
MAX_NULL_OVERHEAD_PCT = 10.0


def _drive(pieo, operations=OPERATIONS, seed=1) -> float:
    """Mixed enqueue/dequeue stream; returns ops/sec.

    The op stream is pre-generated and occupancy is tracked from return
    values, so the timed region contains only primitive calls — the
    identical sequence for every configuration.
    """
    rng = random.Random(seed)
    for index in range(CAPACITY // 2):
        pieo.enqueue(Element(("warm", index),
                             rank=rng.randint(0, 1 << 16),
                             send_time=rng.randint(0, 1 << 16)))
    ops_rng = random.Random(seed + 1)
    coins = [ops_rng.random() < 0.5 for _ in range(operations)]
    elements = [Element(index, rank=ops_rng.randint(0, 1 << 16),
                        send_time=ops_rng.randint(0, 1 << 16))
                for index in range(operations)]
    nows = [ops_rng.randint(0, 1 << 16) for _ in range(operations)]
    enqueue, dequeue = pieo.enqueue, pieo.dequeue
    occupancy = len(pieo)
    start = time.perf_counter()
    for index in range(operations):
        if occupancy < CAPACITY and (occupancy == 0 or coins[index]):
            enqueue(elements[index])
            occupancy += 1
        elif dequeue(now=nows[index]) is not None:
            occupancy -= 1
    elapsed = time.perf_counter() - start
    return operations / elapsed


def _make(backend: str, mode: str):
    inner = make_list(backend, capacity=CAPACITY)
    if mode == "raw":
        return inner
    if mode == "traced-null":
        return TracedList(inner)
    return TracedList(inner, tracer=Tracer(capacity=CAPACITY),
                      metrics=MetricsRegistry())


def _best_of(backend: str, mode: str) -> float:
    return max(_drive(_make(backend, mode)) for _ in range(ROUNDS))


def _overhead_table() -> Table:
    table = Table(
        title=(f"Observability overhead: {OPERATIONS} mixed ops, "
               f"N={CAPACITY}, best of {ROUNDS}"),
        headers=["backend", "mode", "ops_per_sec", "delta_vs_raw_pct"],
    )
    for backend in BACKENDS:
        raw = _best_of(backend, "raw")
        for mode in ("raw", "traced-null", "traced-live"):
            measured = raw if mode == "raw" else _best_of(backend, mode)
            delta = (raw - measured) / raw * 100.0
            table.add_row(backend, mode, round(measured),
                          round(delta, 1))
    table.add_note("traced-null is the default configuration (no "
                   "--trace/--metrics): the wrapper shadows its methods "
                   "with the inner engine's, so the delta is noise. "
                   "traced-live pays for a ring-buffer event per op plus "
                   "two perf_counter() calls and a histogram insert.")
    return table


def test_obs_overhead_table(benchmark, save_table):
    table = benchmark.pedantic(_overhead_table, rounds=1, iterations=1)
    save_table("obs_overhead", table)
    deltas = {(row[0], row[1]): row[3] for row in table.rows}
    for backend in BACKENDS:
        assert deltas[(backend, "traced-null")] < MAX_NULL_OVERHEAD_PCT, (
            f"null-path TracedList costs more than "
            f"{MAX_NULL_OVERHEAD_PCT}% on {backend}; table:\n"
            + table.to_text())
