"""CI perf smoke: ratio-normalized simulation-throughput gate.

Raw packets/sec is meaningless across machines (and noisy even on one:
this repo's dev box drifts ±30% run to run), so the gate normalizes by
a calibration score measured *in the same process, interleaved with the
workload*: a fixed pure-Python loop whose instruction mix (LCG
arithmetic, tuple heapq churn, dict traffic) resembles the simulator's
hot path.  The gated metric is

    normalized = (workload packets/sec) / (calibration Mops/sec)

which cancels host speed to first order.  The calibration loop itself
lives in :mod:`repro.bench.harness` (shared with ``python -m
repro.bench``).  Two scenarios are gated independently: ``hier`` (the
single-link fig12 fast configuration) and ``incast`` (a 4-port
shared-buffer dataplane under 2x oversubscription, exercising the
classifier/admission/multi-engine path).  ``--check`` fails when either
measured median drops more than 30% below its committed baseline in
``bench_results/perf_smoke_baseline.json``; refresh the baseline with
``--write-baseline`` after an intentional perf change.  Every run also
drops a machine-readable ``BENCH_perf_smoke.json`` trajectory point at
the repo root (schema: :mod:`repro.bench.results`).

Usage::

    python benchmarks/perf_smoke.py --check [--profile OUT.txt]
    python benchmarks/perf_smoke.py --write-baseline
"""

from __future__ import annotations

import argparse
import cProfile
import datetime
import io
import json
import pathlib
import pstats
import statistics
import sys
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.bench import results as bench_results  # noqa: E402
from repro.bench.harness import calibration_score  # noqa: E402
from repro.experiments.hier_common import (default_node_rates,  # noqa: E402
                                           run_hierarchy)
from repro.experiments.incast import build_incast  # noqa: E402
from repro.sim.events import Simulator  # noqa: E402
from repro.sim.packet import reset_packet_ids  # noqa: E402

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
BASELINE_PATH = (pathlib.Path(__file__).parent / "bench_results"
                 / "perf_smoke_baseline.json")
BENCH_JSON_PATH = REPO_ROOT / bench_results.bench_filename("perf_smoke")
DURATION = 0.003
INCAST_DURATION = 0.002
INCAST_BUFFER_KIB = 64
ROUNDS = 3
#: Fail --check when the median normalized score drops more than this
#: fraction below the committed baseline.
TOLERANCE = 0.30


def hier_pps() -> float:
    """Packets/sec of the fast-config fig12 workload."""
    reset_packet_ids(0)
    start = time.perf_counter()
    run = run_hierarchy(default_node_rates(), duration=DURATION,
                        event_queue="calendar", drain=True)
    elapsed = time.perf_counter() - start
    return len(run.engine.recorder) / elapsed


def _run_incast():
    reset_packet_ids(0)
    sim = Simulator(queue="calendar")
    dataplane = build_incast(sim, buffer_bytes=INCAST_BUFFER_KIB * 1024,
                             duration=INCAST_DURATION,
                             drop_policy="longest-queue")
    sim.run_until(INCAST_DURATION)
    return dataplane


def incast_pps() -> float:
    """Processed packets/sec (admission decisions, i.e. arrivals) of a
    4-port shared-buffer incast — the multi-engine dataplane path."""
    start = time.perf_counter()
    dataplane = _run_incast()
    elapsed = time.perf_counter() - start
    return dataplane.conservation()["arrivals"] / elapsed


SCENARIOS = {
    "hier": hier_pps,
    "incast": incast_pps,
}


def measure_samples(rounds: int = ROUNDS) -> tuple:
    """Per-scenario normalized samples (plus the calibration scores)
    over interleaved calibrate/run rounds."""
    scores: dict = {name: [] for name in SCENARIOS}
    calibrations: list = []
    for _ in range(rounds):
        for name, workload in SCENARIOS.items():
            calibration = calibration_score()
            calibrations.append(calibration)
            scores[name].append(workload() / calibration)
    return scores, calibrations


def measure(rounds: int = ROUNDS) -> dict:
    """Median normalized score per scenario over interleaved
    calibrate/run rounds."""
    scores, _ = measure_samples(rounds)
    return {name: statistics.median(values)
            for name, values in scores.items()}


def write_bench_json(scores: dict, calibrations: list,
                     path: pathlib.Path = BENCH_JSON_PATH,
                     run_date=None, rounds: int = ROUNDS
                     ) -> pathlib.Path:
    """Emit the gate's samples as a ``BENCH_perf_smoke.json`` record.

    Multi-metric: each scenario's normalized score is one gated metric
    (``hier_normalized``, ``incast_normalized``), so the same file both
    feeds ``python -m repro.bench compare`` and archives the exact
    samples the ``--check`` gate measured.
    """
    if run_date is None:
        run_date = datetime.date.today().isoformat()
    metrics = {
        f"{name}_normalized": bench_results.make_metric(
            "packets/sec per calibration Mops/sec", values, gated=True)
        for name, values in scores.items()
    }
    metrics["calibration_mops"] = bench_results.make_metric(
        "Mops/sec", calibrations)
    record = bench_results.make_result(
        "perf_smoke", metrics, counts={}, attribution=None,
        provenance=bench_results.make_provenance(
            run_date, rounds=rounds, tolerance=TOLERANCE))
    return bench_results.write_bench(path, record)


def write_profile(path: pathlib.Path) -> None:
    """cProfile one fast-config run; top 30 frames by cumulative time."""
    profiler = cProfile.Profile()
    reset_packet_ids(0)
    profiler.enable()
    run_hierarchy(default_node_rates(), duration=DURATION,
                  event_queue="calendar", drain=True)
    profiler.disable()
    buffer = io.StringIO()
    pstats.Stats(profiler, stream=buffer) \
        .sort_stats("cumulative").print_stats(30)
    path.write_text(buffer.getvalue())
    print(f"profile -> {path}")


def main(argv) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--check", action="store_true",
                        help="fail (exit 1) on a >30%% normalized "
                             "regression vs the committed baseline")
    parser.add_argument("--write-baseline", action="store_true",
                        help="measure and overwrite the baseline file")
    parser.add_argument("--profile", metavar="OUT", default=None,
                        help="also write a cProfile summary to OUT")
    parser.add_argument("--bench-json", metavar="PATH",
                        default=str(BENCH_JSON_PATH),
                        help="where to write the machine-readable "
                             "BENCH record ('' disables)")
    args = parser.parse_args(argv[1:])

    samples, calibrations = measure_samples()
    scores = {name: statistics.median(values)
              for name, values in samples.items()}
    for name, score in scores.items():
        print(f"{name}: normalized score {score:.3f} "
              f"(packets/sec per calibration Mops/sec, "
              f"median of {ROUNDS} rounds)")

    if args.bench_json:
        destination = write_bench_json(samples, calibrations,
                                       pathlib.Path(args.bench_json))
        print(f"bench record -> {destination}")

    if args.profile:
        write_profile(pathlib.Path(args.profile))

    if args.write_baseline:
        BASELINE_PATH.parent.mkdir(exist_ok=True)
        BASELINE_PATH.write_text(json.dumps(
            {"scenarios": {name: round(score, 3)
                           for name, score in scores.items()},
             "duration": DURATION, "incast_duration": INCAST_DURATION,
             "rounds": ROUNDS, "tolerance": TOLERANCE},
            indent=2) + "\n")
        print(f"baseline -> {BASELINE_PATH}")
        return 0

    if args.check:
        baseline = json.loads(BASELINE_PATH.read_text())
        failed = False
        for name, reference in baseline["scenarios"].items():
            floor = reference * (1.0 - TOLERANCE)
            print(f"{name}: baseline {reference:.3f}, "
                  f"floor {floor:.3f}")
            if scores[name] < floor:
                print(f"FAIL: {name} normalized throughput regressed "
                      f"more than {TOLERANCE:.0%} below baseline")
                failed = True
        if failed:
            return 1
        print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
