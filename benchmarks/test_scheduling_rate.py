"""Section 6.2: scheduling rate — 4 cycles/op, 50 ns @ 80 MHz, 4 ns on
ASIC — plus Python-level throughput of the cycle-accurate model."""

import random

import pytest

from repro.core.element import Element
from repro.core.pieo import PieoHardwareList
from repro.experiments.scheduling_rate import (measured_cycles_per_op,
                                               rate_table)


def test_section62_rate_table(benchmark, save_table):
    table = benchmark(rate_table)
    save_table("scheduling_rate", table)
    assert all(table.column("meets_mtu_100g"))


def test_measured_cycles_per_op(benchmark):
    cycles = benchmark.pedantic(measured_cycles_per_op, rounds=1,
                                iterations=1)
    assert cycles == pytest.approx(4.0)


@pytest.mark.parametrize("capacity", [256, 1024, 4096])
def test_hardware_model_op_throughput(benchmark, capacity):
    """Python-side throughput of one enqueue+dequeue pair on the
    cycle-accurate model (model simulation speed, not hardware speed)."""
    pieo = PieoHardwareList(capacity)
    rng = random.Random(7)
    for index in range(capacity // 2):
        pieo.enqueue(Element(("warm", index), rank=rng.randint(0, 1 << 16),
                             send_time=0))
    counter = [capacity]

    def one_pair():
        flow_id = counter[0] = counter[0] + 1
        pieo.enqueue(Element(flow_id, rank=rng.randint(0, 1 << 16),
                             send_time=0))
        pieo.dequeue(now=1)

    benchmark(one_pair)
    benchmark.extra_info["modeled_cycles_per_op"] = 4
