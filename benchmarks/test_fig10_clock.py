"""Fig. 10: clock rate achieved by the scheduler circuit vs size."""

import pytest

from repro.experiments.fig10_clock import clock_table


def test_fig10_clock(benchmark, save_table):
    table = benchmark(clock_table)
    save_table("fig10_clock", table)
    sizes = table.column("size")
    pieo = table.column("pieo_mhz")
    assert pieo[sizes.index(30000)] == pytest.approx(80, abs=2)
    assert table.column("pifo_mhz")[sizes.index(1024)] == pytest.approx(
        57, abs=2)
    assert pieo == sorted(pieo, reverse=True)
