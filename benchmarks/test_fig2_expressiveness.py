"""Fig. 2: WF2Q+ expressiveness — PIEO vs single/two-PIFO emulations."""

from repro.analysis.deviation import max_deviation
from repro.baselines.pifo_wf2q import ideal_wf2q_order, paper_example
from repro.experiments.fig2_expressiveness import (deviation_sweep,
                                                   example_table,
                                                   pieo_order)


def test_fig2_example_orders(benchmark, save_table):
    table = benchmark(example_table)
    save_table("fig2_example", table)
    deviations = dict(zip(table.column("design"),
                          table.column("max_deviation_vs_ideal")))
    assert deviations["pieo"] == 0
    assert deviations["two_pifo"] > 0


def test_fig2_deviation_sweep(benchmark, save_table):
    table = benchmark.pedantic(deviation_sweep, rounds=1, iterations=1)
    save_table("fig2_sweep", table)
    two_pifo = table.column("two_pifo_max_dev")
    assert two_pifo[-1] > two_pifo[0]  # O(N) growth
    assert all(value == 0 for value in table.column("pieo_max_dev"))


def test_fig2_pieo_replay_speed(benchmark):
    """Micro: replaying the paper example through a real PIEO list."""
    packets = paper_example()
    order = benchmark(pieo_order, packets)
    assert max_deviation(ideal_wf2q_order(packets), order) == 0
