"""Registry-backend throughput: reference vs hardware vs fast.

Records Python-side primitive-op throughput (ops/sec) for the three main
ordered-list engines at N in {256, 1024, 4096} into
``bench_results/backend_throughput.txt``, and asserts the fast engine's
headline claim: >= 5x the reference oracle at N = 4096.
"""

import random

import pytest

from repro.core.element import Element
from repro.core.backends import make_list
from repro.experiments.runner import Table
from repro.experiments.scheduling_rate import software_ops_per_sec
from repro.obs import MetricsRegistry, TracedList

SIZES = (256, 1_024, 4_096)
BACKENDS = ("reference", "hardware", "fast")
OPERATIONS = 20_000
METRIC_OPERATIONS = 4_000  # per-op histogram sampling is cheaper to run


def _avg_op_us(backend: str, capacity: int,
               operations: int = METRIC_OPERATIONS, seed: int = 1) -> float:
    """Mean per-primitive latency in µs, measured *by the obs layer*:
    the same mixed op stream as :func:`software_ops_per_sec`, but driven
    through a :class:`TracedList` so the number in the table is exactly
    what ``--metrics`` would report for this backend."""
    registry = MetricsRegistry()
    rng = random.Random(seed)
    pieo = TracedList(make_list(backend, capacity=capacity),
                      metrics=registry)
    for index in range(capacity // 2):
        pieo.enqueue(Element(flow_id=("warm", index),
                             rank=rng.randint(0, 1 << 16),
                             send_time=rng.randint(0, 1 << 16)))
    ops_rng = random.Random(seed + 1)
    for index in range(operations):
        if len(pieo) < capacity and (len(pieo) == 0
                                     or ops_rng.random() < 0.5):
            pieo.enqueue(Element(flow_id=("op", index),
                                 rank=ops_rng.randint(0, 1 << 16),
                                 send_time=ops_rng.randint(0, 1 << 16)))
        else:
            pieo.dequeue(now=ops_rng.randint(0, 1 << 16))
    histograms = registry.to_dict()["histograms"]
    total_us = sum(h["sum"] for h in histograms.values())
    total_ops = sum(h["count"] for h in histograms.values())
    return total_us / total_ops


def _throughput_table() -> Table:
    table = Table(
        title=("Backend throughput: Python-side primitive ops/sec "
               f"({OPERATIONS} mixed ops, half-full start)"),
        headers=["backend", "size", "ops_per_sec", "speedup_vs_reference",
                 "avg_op_us"],
    )
    for size in SIZES:
        baseline = None
        for backend in BACKENDS:
            measured = software_ops_per_sec(backend, size, OPERATIONS)
            if baseline is None:
                baseline = measured
            table.add_row(backend, size, round(measured),
                          round(measured / baseline, 1),
                          round(_avg_op_us(backend, size), 2))
    table.add_note("the cycle-accurate model beats the oracle at larger N "
                   "despite per-op accounting (O(sqrt N) sublist walks vs "
                   "the oracle's linear eligibility scan); the fast engine "
                   "drops the accounting too and wins across the board. "
                   "avg_op_us is the obs layer's own histogram-mean "
                   "latency measured through a TracedList.")
    return table


def test_backend_throughput_table(benchmark, save_table):
    table = benchmark.pedantic(_throughput_table, rounds=1, iterations=1)
    save_table("backend_throughput", table)
    speedup = {(row[0], row[1]): row[3] for row in table.rows}
    assert speedup[("fast", 4_096)] >= 5.0, (
        "fast engine must be >= 5x the reference oracle at N=4096; table:\n"
        + table.to_text())


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_ops_per_sec_4096(benchmark, backend):
    """Per-backend ops/sec at the headline size, as its own benchmark
    series (pytest-benchmark captures the distribution)."""
    result = benchmark.pedantic(
        software_ops_per_sec, args=(backend, 4_096),
        kwargs={"operations": 5_000}, rounds=3, iterations=1)
    assert result > 0
    benchmark.extra_info["backend"] = backend
