"""Registry-backend throughput: reference vs hardware vs fast.

Records primitive-op throughput for the three main ordered-list engines
at N in {256, 1024, 4096} into ``bench_results/backend_throughput.txt``.

Both numeric columns come from **one instrumented pass** per
(backend, size): the op stream is driven through a
:class:`~repro.obs.TracedList` (so ``avg_op_us`` is the obs layer's own
histogram mean) while the very same pass is wall-clocked end to end (so
``ops_per_sec`` covers the identical operations).  Earlier revisions
measured the two columns in two separate runs with different op counts,
which made them mutually inconsistent — ``avg_op_us`` implied a
different ops/sec than the ``ops_per_sec`` column showed.  The columns
now satisfy ``ops_per_sec ~= 1e6 / avg_op_us`` up to loop overhead
outside the traced calls.

The headline assertion floor (fast >= 2x the reference oracle at
N = 4096) is deliberately below the typically measured ~5x: the shared
tracing overhead compresses ratios at small N, and this box's wall
clock is noisy enough (±30% run to run) that a tight floor would flake.
"""

import random
import time

import pytest

from repro.core.element import Element
from repro.core.backends import make_list
from repro.experiments.runner import Table
from repro.experiments.scheduling_rate import software_ops_per_sec
from repro.obs import MetricsRegistry, TracedList

SIZES = (256, 1_024, 4_096)
BACKENDS = ("reference", "hardware", "fast")
OPERATIONS = 20_000


def _measure(backend: str, capacity: int,
             operations: int = OPERATIONS, seed: int = 1):
    """One instrumented pass; returns ``(ops_per_sec, avg_op_us)``.

    Same mixed op stream as :func:`software_ops_per_sec` (half-full
    warm-up, coin-flip enqueue/dequeue), but with the randomness
    pre-built so the timed loop holds only list work plus the
    :class:`TracedList` shim.  The wall clock wraps exactly the loop
    whose per-op latencies land in the metrics histograms.
    """
    registry = MetricsRegistry()
    rng = random.Random(seed)
    pieo = TracedList(make_list(backend, capacity=capacity),
                      metrics=registry)
    for index in range(capacity // 2):
        pieo.enqueue(Element(flow_id=("warm", index),
                             rank=rng.randint(0, 1 << 16),
                             send_time=rng.randint(0, 1 << 16)))
    ops_rng = random.Random(seed + 1)
    coins = [ops_rng.random() < 0.5 for _ in range(operations)]
    elements = [Element(flow_id=("op", index),
                        rank=ops_rng.randint(0, 1 << 16),
                        send_time=ops_rng.randint(0, 1 << 16))
                for index in range(operations)]
    nows = [ops_rng.randint(0, 1 << 16) for _ in range(operations)]
    start = time.perf_counter()
    for index in range(operations):
        if len(pieo) < capacity and (len(pieo) == 0 or coins[index]):
            pieo.enqueue(elements[index])
        else:
            pieo.dequeue(now=nows[index])
    elapsed = time.perf_counter() - start
    histograms = registry.to_dict()["histograms"]
    total_us = sum(h["sum"] for h in histograms.values())
    total_ops = sum(h["count"] for h in histograms.values())
    return operations / elapsed, total_us / total_ops


def _throughput_table() -> Table:
    table = Table(
        title=("Backend throughput: instrumented primitive ops "
               f"({OPERATIONS} mixed ops, half-full start, one traced "
               "pass per row)"),
        headers=["backend", "size", "ops_per_sec", "speedup_vs_reference",
                 "avg_op_us"],
    )
    for size in SIZES:
        baseline = None
        for backend in BACKENDS:
            ops_per_sec, avg_op_us = _measure(backend, size)
            if baseline is None:
                baseline = ops_per_sec
            table.add_row(backend, size, round(ops_per_sec),
                          round(ops_per_sec / baseline, 1),
                          round(avg_op_us, 2))
    table.add_note("ops_per_sec and avg_op_us come from the same "
                   "TracedList pass, so ops_per_sec ~= 1e6 / avg_op_us "
                   "up to loop overhead outside the traced calls. The "
                   "cycle-accurate model beats the oracle at larger N "
                   "despite per-op accounting (O(sqrt N) sublist walks "
                   "vs the oracle's linear eligibility scan); the fast "
                   "engine drops the accounting too and wins across the "
                   "board.")
    return table


def test_backend_throughput_table(benchmark, save_table):
    table = benchmark.pedantic(_throughput_table, rounds=1, iterations=1)
    save_table("backend_throughput", table)
    speedup = {(row[0], row[1]): row[3] for row in table.rows}
    assert speedup[("fast", 4_096)] >= 2.0, (
        "fast engine must be >= 2x the reference oracle at N=4096 under "
        "instrumentation; table:\n" + table.to_text())


@pytest.mark.parametrize("backend", BACKENDS)
def test_backend_ops_per_sec_4096(benchmark, backend):
    """Per-backend un-instrumented ops/sec at the headline size, as its
    own benchmark series (pytest-benchmark captures the distribution)."""
    result = benchmark.pedantic(
        software_ops_per_sec, args=(backend, 4_096),
        kwargs={"operations": 5_000}, rounds=3, iterations=1)
    assert result > 0
    benchmark.extra_info["backend"] = backend
