"""Fig. 11: rate-limit enforcement accuracy (Section 6.3)."""

import pytest

from repro.core.pieo import PieoHardwareList
from repro.experiments.fig11_rate_limit import (all_nodes_table,
                                                rate_limit_table)
from repro.experiments.hier_common import default_node_rates, run_hierarchy
from repro.experiments.runner import Table


def test_fig11_rate_limit_sweep(benchmark, save_table):
    table = benchmark.pedantic(
        rate_limit_table, kwargs={"duration": 0.01}, rounds=1,
        iterations=1)
    save_table("fig11_rate_limit", table)
    assert max(table.column("error_pct")) < 1.0


def test_fig11_on_hardware_cosim(benchmark, save_table):
    """The same experiment co-simulated on the cycle-accurate hardware
    lists: identical enforcement accuracy, plus the hardware cost of
    every scheduling decision (4 cycles per primitive op)."""
    hardware_lists = []

    def factory(_cap):
        hardware = PieoHardwareList(256)
        hardware_lists.append(hardware)
        return hardware

    def run():
        return run_hierarchy(default_node_rates(), duration=0.005,
                             list_factory=factory)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    table = Table(
        title="Fig. 11 on the cycle-accurate hardware design "
              "(co-simulation, 5 ms)",
        headers=["node", "configured_gbps", "achieved_gbps"],
    )
    for index, target in enumerate(default_node_rates()):
        achieved = result.node_rates_bps.get(f"n{index}", 0.0) / 1e9
        table.add_row(f"n{index}", target, round(achieved, 3))
        assert achieved == pytest.approx(target, rel=0.02)
    total_ops = sum(hw.counters.total_ops() for hw in hardware_lists)
    total_cycles = sum(hw.counters.cycles for hw in hardware_lists)
    nulls = sum(count for hw in hardware_lists
                for name, count in hw.counters.ops.items()
                if name.endswith("_null"))
    table.add_note(f"{total_ops} primitive ops across "
                   f"{len(hardware_lists)} physical PIEOs, "
                   f"{total_cycles} cycles "
                   f"({(total_cycles - nulls) / max(1, total_ops - nulls):.2f}"
                   " cycles per non-null op — slightly above 4 because "
                   "logical-PIEO extraction charges an extra cycle per "
                   "additional sublist its group filter examines); every "
                   "list passes its full structural check.")
    for hardware in hardware_lists:
        hardware.check()
    save_table("fig11_hardware_cosim", table)


def test_fig11_all_nodes(benchmark, save_table):
    table = benchmark.pedantic(
        all_nodes_table, kwargs={"duration": 0.01}, rounds=1,
        iterations=1)
    save_table("fig11_all_nodes", table)
    assert max(table.column("error_pct")) < 1.0
