"""Benchmark-suite helpers.

Every benchmark regenerates one paper table/figure.  Because pytest
captures stdout, each generated table is also written to
``bench_results/<name>.txt`` next to this file, so the figures are
inspectable after a plain ``pytest benchmarks/ --benchmark-only`` run.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "bench_results"


@pytest.fixture
def save_table():
    """Persist (and print) an experiment table; returns the table."""

    def _save(name, table):
        RESULTS_DIR.mkdir(exist_ok=True)
        text = table.to_text()
        (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
        print()
        print(text)
        return table

    return _save
