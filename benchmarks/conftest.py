"""Benchmark-suite helpers.

Every benchmark regenerates one paper table/figure.  Because pytest
captures stdout, each generated table is also written to
``bench_results/<name>.txt`` next to this file — through the one shared
provenance-stamping writer
(:func:`repro.bench.results.write_table_text`), so every committed
artifact records the git commit, run date, and host calibration score
it was measured under.
"""

from __future__ import annotations

import datetime
import pathlib
import sys

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent
                       / "src"))

from repro.bench.harness import calibration_score  # noqa: E402
from repro.bench.results import git_commit, write_table_text  # noqa: E402

RESULTS_DIR = pathlib.Path(__file__).parent / "bench_results"


@pytest.fixture(scope="session")
def bench_provenance():
    """Session-wide provenance facts: (run_date, commit, calibration).

    Calibration is measured once per session — it stamps artifacts with
    the host's rough speed so a committed table can be read in context;
    per-benchmark normalization still interleaves its own calibration.
    """
    return (datetime.date.today().isoformat(), git_commit(),
            calibration_score())


@pytest.fixture
def save_table(bench_provenance):
    """Persist (and print) an experiment table; returns the table."""
    run_date, commit, calibration = bench_provenance

    def _save(name, table):
        text = table.to_text()
        write_table_text(RESULTS_DIR / f"{name}.txt", text,
                         run_date=run_date, commit=commit,
                         calibration_mops=calibration)
        print()
        print(text)
        return table

    return _save
