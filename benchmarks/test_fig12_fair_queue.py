"""Fig. 12: fair-queue enforcement within a node (Section 6.3)."""

from repro.experiments.fig12_fair_queue import fair_queue_table


def test_fig12_fair_queue(benchmark, save_table):
    table = benchmark.pedantic(
        fair_queue_table, kwargs={"duration": 0.01}, rounds=1,
        iterations=1)
    save_table("fig12_fair_queue", table)
    assert min(table.column("jain_index")) > 0.999


def test_fig12_weighted_fair_queue(benchmark, save_table):
    table = benchmark.pedantic(
        fair_queue_table,
        kwargs={"duration": 0.01, "flow_weights": [1.0, 2.0]},
        rounds=1, iterations=1)
    save_table("fig12_weighted", table)
    assert min(table.column("jain_index")) > 0.999
