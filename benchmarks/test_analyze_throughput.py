"""Analyzer throughput: events/sec through TraceAnalysis on a synthetic
100k-event trace.

The analyzer is the offline half of the observability story — it has to
chew through multi-minute traced runs (tens of millions of events) in
interactive time, so its throughput is tracked like the backends'.
Three stages are timed separately:

* ``parse`` — :func:`read_jsonl` on the exported file (strict JSON +
  non-finite revival);
* ``analyze`` — :class:`TraceAnalysis` construction (timeline
  reconstruction + latency attribution);
* ``report`` — per-flow aggregation (:meth:`TraceAnalysis.flows`) plus
  the full audit pass.

Results land in ``bench_results/analyze_throughput.txt``.
"""

import random
import time

from repro.experiments.runner import Table
from repro.obs import TraceAnalysis, Tracer, read_jsonl

NUM_FLOWS = 100
EVENTS_TARGET = 100_000
ROUNDS = 3  # best-of to damp scheduler noise


def synthetic_trace(events_target=EVENTS_TARGET, seed=7) -> Tracer:
    """A well-formed trace shaped like a hierarchical fig11/fig12 run:
    4 events per packet (arrival, enqueue, dequeue, departure) over
    ``NUM_FLOWS`` leaf flows plus periodic node-level episodes."""
    rng = random.Random(seed)
    tracer = Tracer()
    now = 0.0
    packet_id = 0
    while tracer.emitted < events_target:
        packet_id += 1
        flow_id = f"n{rng.randrange(10)}.f{rng.randrange(10)}"
        size = 1500
        tracer.arrival(now, flow_id, size, packet_id=packet_id)
        eligible = rng.random() < 0.5
        send_time = now if eligible else now + rng.uniform(0, 3e-6)
        tracer.enqueue(now, flow_id, rank=rng.random(),
                       send_time=send_time, eligible=eligible)
        wait = rng.uniform(1e-7, 5e-6)
        dequeue_at = now + wait
        tracer.dequeue(dequeue_at, flow_id, rank=0.0,
                       send_time=send_time,
                       eligible_at=(now if eligible
                                    else min(send_time, dequeue_at)))
        tracer.departure(dequeue_at, flow_id, size,
                         packet_id=packet_id, finish=dequeue_at + 3e-7)
        # Packets are serial (and gaps exceed the 3e-7 s wire time) so
        # event order, per-flow FIFO, and link occupancy all stay legal.
        now = dequeue_at + rng.uniform(4e-7, 1e-6)
    return tracer


def _best_of(fn):
    best = None
    for _ in range(ROUNDS):
        start = time.perf_counter()
        result = fn()
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best[0]:
            best = (elapsed, result)
    return best


def test_analyze_throughput(tmp_path, save_table):
    tracer = synthetic_trace()
    path = tmp_path / "bench.jsonl"
    tracer.write_jsonl(path)
    events = len(tracer.events)

    parse_s, records = _best_of(lambda: read_jsonl(path))
    analyze_s, analysis = _best_of(lambda: TraceAnalysis(records))
    report_s, _ = _best_of(
        lambda: (analysis.flows(), analysis.audit()))

    table = Table(
        title=f"Analyzer throughput ({events} events, "
              f"{NUM_FLOWS} flows)",
        headers=["stage", "seconds", "events_per_sec"])
    for stage, seconds in (("parse", parse_s),
                           ("analyze", analyze_s),
                           ("report", report_s),
                           ("total", parse_s + analyze_s + report_s)):
        table.add_row(stage, round(seconds, 4),
                      round(events / seconds))
    table.add_note("best of %d rounds; synthetic 4-events-per-packet "
                   "hierarchical trace" % ROUNDS)
    save_table("analyze_throughput", table)

    # Sanity, not speed: the analyzer really consumed the whole trace.
    assert len(records) == events
    assert not analysis.errors
    assert sum(report.packets
               for report in analysis.flows().values()) == events // 4
