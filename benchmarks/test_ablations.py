"""Design-choice ablations called out in DESIGN.md:

* sublist size s vs the paper's sqrt(N) choice (logic/lane trade-off),
* exact PIEO vs the approximate datastructures of Section 2.3,
* PIEO's O(sqrt N) comparator work vs PIFO's O(N) (measured, not
  modeled, from the cycle-accurate implementations).
"""

import random

import pytest

from repro.core.element import Element
from repro.core.pieo import PieoHardwareList
from repro.core.pifo import PifoDesignPieoList
from repro.experiments.ablation_sublist import sublist_ablation_table
from repro.experiments.ablation_trigger import trigger_ablation_table
from repro.experiments.approx_structures import approx_structures_table
from repro.experiments.end_to_end_shaping import shaping_comparison_table
from repro.experiments.pipeline_rate import pipeline_table
from repro.experiments.structure_comparison import structure_comparison_table


def test_ablation_sublist_size(benchmark, save_table):
    table = benchmark.pedantic(sublist_ablation_table, rounds=1,
                               iterations=1)
    save_table("ablation_sublist", table)
    assert all(cycles == pytest.approx(4.0)
               for cycles in table.column("cycles_per_op"))
    lanes = table.column("lanes")
    sizes = table.column("sublist_size")
    assert lanes[sizes.index(64)] == min(lanes)  # sqrt(4096) = 64


def test_ablation_approximate_structures(benchmark, save_table):
    table = benchmark.pedantic(approx_structures_table, rounds=1,
                               iterations=1)
    save_table("ablation_approx", table)
    rows = {(row[0], row[1]): row[2] for row in table.rows}
    assert rows[("pieo (exact)", "-")] == 0
    assert rows[("calendar_queue", 64)] <= rows[("calendar_queue", 4)]


def test_ablation_trigger_model(benchmark, save_table):
    table = benchmark.pedantic(trigger_ablation_table, rounds=1,
                               iterations=1)
    save_table("ablation_trigger", table)
    rows = {row[0]: row for row in table.rows}
    assert rows["output"][1] == 0
    assert rows["input"][1] == "never"


def test_ablation_pipelining(benchmark, save_table):
    table = benchmark.pedantic(pipeline_table, rounds=1, iterations=1)
    save_table("ablation_pipeline", table)
    assert all(table.column("mtu_100g_ok"))


def test_end_to_end_shaping_comparison(benchmark, save_table):
    table = benchmark.pedantic(shaping_comparison_table, rounds=1,
                               iterations=1)
    save_table("end_to_end_shaping", table)
    rows = {row[0]: row for row in table.rows}
    assert rows["pieo"][-1] < rows["pifo"][-1]  # only PIEO shapes


def test_structure_comparison(benchmark, save_table):
    table = benchmark.pedantic(structure_comparison_table, rounds=1,
                               iterations=1)
    save_table("structure_comparison", table)
    rows = {row[0]: row for row in table.rows}
    assert rows["p-heap"][3] > rows["pieo (sqrt-N design)"][3]


def _measured_comparators_per_op(structure, operations=1000):
    """Run balanced traffic at ~half occupancy (the regime where the
    resident population, and hence PIFO's comparator bank, is large)."""
    rng = random.Random(3)
    next_flow = 0
    target = structure.capacity // 2
    while len(structure) < target:
        structure.enqueue(Element(next_flow,
                                  rank=rng.randint(0, 1 << 16)))
        next_flow += 1
    structure.counters.reset()
    for _ in range(operations):
        if len(structure) <= target:
            structure.enqueue(Element(next_flow,
                                      rank=rng.randint(0, 1 << 16)))
            next_flow += 1
        else:
            structure.dequeue(now=1)
    return (structure.counters.comparator_activations
            / max(1, structure.counters.total_ops()))


def test_ablation_comparator_scaling(benchmark, save_table):
    """PIEO's measured comparator work grows ~sqrt(N); PIFO's grows ~N."""
    from repro.experiments.runner import Table
    table = Table(
        title="Measured comparator activations per op (cycle-accurate "
              "models, random half-full traffic)",
        headers=["capacity", "pieo_cmps_per_op", "pifo_cmps_per_op",
                 "ratio"])

    def build():
        for capacity in (256, 1024, 4096):
            pieo = _measured_comparators_per_op(
                PieoHardwareList(capacity))
            pifo = _measured_comparators_per_op(
                PifoDesignPieoList(capacity))
            table.add_row(capacity, round(pieo, 1), round(pifo, 1),
                          round(pifo / pieo, 2))
        return table

    benchmark.pedantic(build, rounds=1, iterations=1)
    save_table("ablation_comparators", table)
    ratios = table.column("ratio")
    assert ratios == sorted(ratios)  # PIFO's disadvantage grows with N
