"""Runtime-telemetry overhead: uninstrumented vs null vs live profiler.

Measures the fig12 fast-config workload in three configurations:

* ``bare`` — no profiler anywhere near the call;
* ``null`` — the workload wrapped in
  :data:`repro.obs.runtime.NULL_RUNTIME_PROFILER` phases (the default
  path when nobody passes ``--profile-runtime``);
* ``live`` — a sampling :class:`repro.obs.runtime.RuntimeProfiler`
  running at the default interval.

The guarantee under regression test: the null path costs < 5% wall time
versus bare.  (The live path is reported for scale but not gated —
sampling costs what the interval says it costs, and it runs on another
thread anyway.)

Results land in ``bench_results/runtime_overhead.txt``.
"""

import time

from repro.experiments.hier_common import default_node_rates, run_hierarchy
from repro.experiments.runner import Table
from repro.obs.runtime import NULL_RUNTIME_PROFILER, RuntimeProfiler
from repro.sim.packet import reset_packet_ids

DURATION = 0.003
ROUNDS = 5  # best-of to damp scheduler noise
MAX_NULL_OVERHEAD_PCT = 5.0


def _workload() -> None:
    reset_packet_ids(0)
    run_hierarchy(default_node_rates(), duration=DURATION,
                  event_queue="calendar", drain=True)


def _bare() -> float:
    start = time.perf_counter()
    _workload()
    return time.perf_counter() - start


def _null() -> float:
    profiler = NULL_RUNTIME_PROFILER
    start = time.perf_counter()
    with profiler, profiler.phase("hier"):
        _workload()
    return time.perf_counter() - start


def _live() -> float:
    profiler = RuntimeProfiler()
    start = time.perf_counter()
    with profiler, profiler.phase("hier"):
        _workload()
    return time.perf_counter() - start


def _interleaved_best() -> dict:
    """Best wall time per mode, rounds interleaved bare/null/live so
    slow drift in host speed hits every mode equally."""
    _workload()  # warm caches/allocators outside the timed region
    best: dict = {}
    for _ in range(ROUNDS):
        for mode, runner in (("bare", _bare), ("null", _null),
                             ("live", _live)):
            wall = runner()
            if mode not in best or wall < best[mode]:
                best[mode] = wall
    return best


def _overhead_table() -> Table:
    table = Table(
        title=(f"Runtime-profiler overhead: fig12 fast config "
               f"({DURATION * 1e3:.0f} ms sim), best of {ROUNDS} "
               f"interleaved rounds"),
        headers=["mode", "wall_s", "delta_vs_bare_pct"],
    )
    best = _interleaved_best()
    bare = best["bare"]
    for mode in ("bare", "null", "live"):
        delta = (best[mode] - bare) / bare * 100.0
        table.add_row(mode, round(best[mode], 4), round(delta, 1))
    table.add_note("null is the default configuration (no "
                   "--profile-runtime): one no-op context-manager "
                   "round-trip per phase site, zero threads — the "
                   "delta is noise.  live pays for a daemon sampler "
                   "thread reading sys._current_frames() every "
                   "interval.")
    return table


def test_runtime_overhead_table(benchmark, save_table):
    table = benchmark.pedantic(_overhead_table, rounds=1, iterations=1)
    save_table("runtime_overhead", table)
    deltas = {row[0]: row[2] for row in table.rows}
    assert deltas["null"] < MAX_NULL_OVERHEAD_PCT, (
        f"null-path runtime profiler costs more than "
        f"{MAX_NULL_OVERHEAD_PCT}% wall; table:\n" + table.to_text())
