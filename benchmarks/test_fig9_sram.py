"""Fig. 9: % of SRAM consumed vs scheduler size."""

from repro.experiments.fig9_sram import sram_table


def test_fig9_sram(benchmark, save_table):
    table = benchmark(sram_table)
    save_table("fig9_sram", table)
    # Paper: consumption is "fairly modest" even with the 2x overhead.
    assert all(table.column("fits"))
    assert max(table.column("sram_pct")) < 20
    assert max(table.column("overhead_x")) <= 2.2
