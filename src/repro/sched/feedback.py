"""Scheduling on asynchronous network feedback (Section 4.4).

Datacenter protocols such as D3 [51] and priority-based flow control
(802.1Qbb [12]) quench and resume flows asynchronously.  The paper
expresses this with the alarm function::

    alarm-func(e):
        if pause feedback for f:  f.block = True;  ordered_list.dequeue(f)
        if resume feedback for f: f.block = False; pre-enqueue-func(f)

:class:`FeedbackChannel` delivers such events into a
:class:`~repro.sched.framework.PieoScheduler` through the simulator, with
an optional propagation delay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List

from repro.sched.framework import PieoScheduler
from repro.sim.events import Simulator

PAUSE = "pause"
RESUME = "resume"


@dataclass(frozen=True)
class FeedbackEvent:
    """One pause/resume notification from the network."""

    time: float
    flow_id: Hashable
    kind: str  # PAUSE or RESUME


class FeedbackChannel:
    """Delivers pause/resume feedback to the scheduler.

    Pass the :class:`~repro.sim.engine.TransmitEngine` so a resume can
    kick the scheduling loop (a paused-then-resumed flow otherwise waits
    for the next packet arrival before transmitting again).
    """

    def __init__(self, sim: Simulator, scheduler: PieoScheduler,
                 delay: float = 0.0, engine=None) -> None:
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.sim = sim
        self.scheduler = scheduler
        self.delay = delay
        self.engine = engine
        self.log: List[FeedbackEvent] = []

    def pause(self, flow_id: Hashable) -> None:
        """Receive pause feedback for ``flow_id`` (applied after delay)."""
        self.sim.schedule_in(self.delay, lambda: self._apply(flow_id, PAUSE))

    def resume(self, flow_id: Hashable) -> None:
        """Receive resume feedback for ``flow_id``."""
        self.sim.schedule_in(self.delay,
                             lambda: self._apply(flow_id, RESUME))

    def _apply(self, flow_id: Hashable, kind: str) -> None:
        now = self.sim.now
        self.log.append(FeedbackEvent(now, flow_id, kind))
        if kind == PAUSE:
            self.scheduler.pause_flow(flow_id, now)
        else:
            became_schedulable = self.scheduler.resume_flow(flow_id, now)
            if became_schedulable and self.engine is not None:
                self.engine.kick()
