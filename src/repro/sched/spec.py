"""Promised-bound metadata per registered scheduling algorithm.

Every algorithm in the Section 4 catalogue implicitly promises formal
guarantees from the scheduling literature — work conservation,
GPS-relative delay bounds (Parekh/Gallager), fairness envelopes,
token-bucket conformance, slot legality.  :class:`AlgorithmSpec` makes
those promises *machine-readable* so :mod:`repro.conformance` can turn
them into executable checks: the registry attaches one spec per entry
and the conformance runner derives the applicable checker set from it.

The spec also records **waivers**: documented, named deviations of the
implementation from the textbook bound (checker name -> explanation).
A waived checker still runs and reports, but does not fail the
conformance verdict; every waiver carries a regression test pinning the
observed behaviour so silent drift is caught.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Tuple

#: Checkers every algorithm must satisfy regardless of its spec.
UNIVERSAL_CHECKERS: Tuple[str, ...] = (
    "conservation", "per-flow-fifo", "link-overlap")


@dataclass(frozen=True)
class AlgorithmSpec:
    """The formal guarantees one registered algorithm promises.

    Parameters
    ----------
    work_conserving:
        The link never idles while an eligible packet is queued
        (``work-conservation`` checker).  Non-work-conserving
        algorithms get the complementary ``idle-legality`` checker:
        idling is legal only while every resident element is
        ineligible.
    shaped:
        Elements carry wall-clock ``send_time`` eligibility and must
        never depart early (``no-early-release``).
    regulated:
        Arrivals must pass through a
        :class:`~repro.sched.rcsp.RateJitterRegulator` before the
        scheduler sees them (RCSP's regulator/scheduler split).
    slotted:
        Departures must align to the TDMA slot grid and successive
        grants of one flow must be at least a frame apart
        (``tdma-slots``).
    token_bucket:
        Per-flow departures must conform to an ``(r, b)`` token bucket
        reconstructed from the flow's rate and burst
        (``token-bucket-conformance``).
    priority_ordered:
        Rank is the static flow priority: no packet of a
        lower-priority flow may start service while a higher-priority
        flow has an *eligible* element resident
        (``priority-inversion``).
    gps_delay_slack:
        When set, every delivered packet must finish within
        ``gps_delay_slack * L_max/R`` of its GPS fluid finish time
        (``gps-delay-bound``).  1.0 is the Parekh–Gallager WFQ bound.
    fairness_envelope_mtu:
        When set, normalized service (bytes/weight) of continuously
        backlogged flows may spread at most this many max-size packets
        apart (``fairness-envelope``).
    fairness_unit:
        ``"bytes"`` (bit-level fairness, the WFQ family and DRR) or
        ``"packets"`` (per-visit round robin, SFQ: one packet per
        backlogged bucket per round, so byte service legitimately
        drifts with mixed sizes while packet counts stay level).
    scenario:
        Default conformance scenario name (see
        :mod:`repro.conformance.scenarios`).
    waivers:
        checker name -> documented explanation of a known, accepted
        deviation.  Waived checkers run but do not fail the verdict.
    """

    work_conserving: bool = True
    shaped: bool = False
    regulated: bool = False
    slotted: bool = False
    token_bucket: bool = False
    priority_ordered: bool = False
    gps_delay_slack: Optional[float] = None
    fairness_envelope_mtu: Optional[float] = None
    fairness_unit: str = "bytes"
    scenario: str = "backlogged"
    waivers: Mapping[str, str] = field(default_factory=dict)

    def checkers(self) -> Tuple[str, ...]:
        """Names of every checker this spec makes applicable."""
        names = list(UNIVERSAL_CHECKERS)
        if self.work_conserving:
            names.append("work-conservation")
        else:
            names.append("idle-legality")
        if self.shaped:
            names.append("no-early-release")
        if self.gps_delay_slack is not None:
            names.append("gps-delay-bound")
        if self.fairness_envelope_mtu is not None:
            names.append("fairness-envelope")
        if self.priority_ordered:
            names.append("priority-inversion")
        if self.token_bucket:
            names.append("token-bucket-conformance")
        if self.slotted:
            names.append("tdma-slots")
        return tuple(names)

    def is_waived(self, checker: str) -> Optional[str]:
        """The waiver text for ``checker``, or ``None`` if it must
        pass."""
        return self.waivers.get(checker)
