"""Stochastic Fairness Queuing (Section 4.1; McKenney 1990).

SFQ approximates fair queuing cheaply: flows are hashed into a fixed
number of buckets and the buckets are served round-robin, so scheduling
state is O(buckets) instead of O(flows).  Colliding flows share their
bucket's bandwidth — the "stochastic" part.

On PIEO: service opportunities are numbered ``round * num_buckets +
bucket``.  Each bucket holds one slot per round; a flow entering the
ordered list reserves its bucket's next free slot as its rank, so
colliding flows occupy successive rounds of the same bucket and split its
share.  All predicates are true (work conserving).
"""

from __future__ import annotations

import zlib
from typing import Dict, Hashable

from repro.core.element import ALWAYS_ELIGIBLE
from repro.sched.base import SchedulingAlgorithm
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue


class StochasticFairnessQueuing(SchedulingAlgorithm):
    """SFQ with ``num_buckets`` hash buckets."""

    name = "sfq"

    def __init__(self, num_buckets: int = 16, seed: int = 1) -> None:
        if num_buckets < 1:
            raise ValueError("need at least one bucket")
        self.num_buckets = num_buckets
        self.seed = seed
        #: Next unreserved service round, per bucket.
        self._bucket_round: Dict[int, int] = {}
        #: Round of the most recently served slot (for idle-bucket rejoin).
        self._current_round = 0

    def bucket_of(self, flow_id: Hashable) -> int:
        # Stable across processes (the built-in string hash is salted per
        # interpreter run, which would make schedules irreproducible).
        digest = zlib.crc32(repr((self.seed, flow_id)).encode("utf-8"))
        return digest % self.num_buckets

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        bucket = self.bucket_of(flow.flow_id)
        round_ = self._bucket_round.get(bucket, 0)
        if round_ < self._current_round:
            # The bucket was idle; rejoin the current round instead of
            # claiming stale (unfairly early) service slots.
            round_ = self._current_round
        self._bucket_round[bucket] = round_ + 1
        flow.state["sfq_round"] = round_
        ctx.enqueue(flow, rank=round_ * self.num_buckets + bucket,
                    send_time=ALWAYS_ELIGIBLE)

    def post_dequeue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        served_round = int(flow.state.get("sfq_round", 0))
        if served_round > self._current_round:
            self._current_round = served_round
        ctx.transmit_head(flow)
        if not flow.is_empty:
            ctx.reenqueue(flow)
