"""Starvation avoidance in strict-priority scheduling (Section 4.4).

The paper's first asynchronous-scheduling example: a flow that has waited
longer than a threshold without service gets its priority asynchronously
boosted.  The alarm function performs ``dequeue(f)``; the alarm handler
bumps the priority and re-enqueues via the Pre-Enqueue function::

    async_event e = (curr_time - f.age >= threshold)
    alarm-func(e):      ordered_list.dequeue(f)
    alarm-handler(f):   f.age = curr_time
                        f.priority = f.priority - 1
                        pre-enqueue-func(f)
"""

from __future__ import annotations

from typing import List

from repro.sched.framework import PieoScheduler, SchedulerContext
from repro.sched.priority import StrictPriority
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue


class AgingStrictPriority(StrictPriority):
    """Strict priority whose alarm handler implements priority aging."""

    name = "strict-priority-aging"

    def post_dequeue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        flow.state["age"] = ctx.now
        super().post_dequeue(ctx, flow)

    def alarm_handler(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        flow.state["age"] = ctx.now
        flow.priority -= 1
        self.pre_enqueue(ctx, flow)


def starving_flows(scheduler: PieoScheduler, now: float,
                   threshold: float) -> List[FlowQueue]:
    """Flows matching the async event (waited >= threshold unserved)."""
    result = []
    for flow in scheduler.flows.values():
        if flow.is_empty:
            continue
        age = flow.state.get("age", 0.0)
        if now - age >= threshold:
            result.append(flow)
    return result


def install_aging_monitor(sim: Simulator, scheduler: PieoScheduler,
                          threshold: float, period: float,
                          end_time: float) -> None:
    """Periodically fire the alarm function for starving flows.

    Models the hardware's asynchronous event detector with a polling
    event in the discrete-event simulation.
    """
    if period <= 0 or threshold <= 0:
        raise ValueError("threshold and period must be positive")

    def tick() -> None:
        for flow in starving_flows(scheduler, sim.now, threshold):
            scheduler.run_alarm(flow.flow_id, sim.now)
        if sim.now + period <= end_time:
            sim.schedule_in(period, tick)

    sim.schedule_in(period, tick)
