"""Token Bucket (Section 4.2) — the classic non-work-conserving shaper.

Each flow accrues tokens at its configured rate up to a burst threshold;
a packet may depart once the flow holds enough tokens, otherwise the
flow's eligibility is deferred to the instant it will have gathered them.

On PIEO (paper pseudo-code, Section 4.2)::

    rank      = send_time
    predicate = (wall_clock_time >= send_time)

making the scheduler release flows in earliest-send-time order, at their
send times — i.e. accurate rate limiting and pacing.
"""

from __future__ import annotations

from repro.sched.base import SchedulingAlgorithm, TimeBase
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue
from repro.sim.packet import MTU_BYTES


class TokenBucket(SchedulingAlgorithm):
    """Per-flow token-bucket shaping.

    Flow configuration comes from the flow itself: ``flow.rate_bps`` is
    the token rate; the burst threshold is
    ``flow.state["burst_bytes"]`` when set, else ``default_burst_bytes``.
    """

    name = "token-bucket"
    time_base = TimeBase.WALL

    def __init__(self, default_burst_bytes: float = 2 * MTU_BYTES) -> None:
        if default_burst_bytes <= 0:
            raise ValueError("burst threshold must be positive")
        self.default_burst_bytes = default_burst_bytes

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        send_time = self._charge(flow, ctx.now, flow.head_size())
        ctx.enqueue(flow, rank=send_time, send_time=send_time)

    def packet_attributes(self, ctx: SchedulerContext, flow: FlowQueue,
                          packet) -> tuple:
        """Input-triggered variant (Section 3.2.1): tokens are charged at
        packet *arrival*, so long queues pre-commit future send times.
        The output-triggered model charges at head-of-line time instead,
        which is why the paper notes it "can provide more precise
        guarantees for certain shaping policies"."""
        send_time = self._charge(flow, ctx.now, packet.size_bytes)
        return send_time, send_time

    def _charge(self, flow: FlowQueue, now: float,
                size_bytes: float) -> float:
        """The paper's Section 4.2 pseudo-code: accrue tokens, compute
        the packet's send time, debit the bucket."""
        if flow.rate_bps <= 0:
            raise ValueError(
                f"flow {flow.flow_id!r} needs a positive rate_bps for "
                "token-bucket shaping")
        rate_bytes = flow.rate_bps / 8.0
        burst = flow.state.get("burst_bytes", self.default_burst_bytes)
        tokens = flow.state.get("tokens", burst)
        tokens += rate_bytes * (now - flow.state.get("last_time", now))
        if tokens > burst:
            tokens = burst
        if size_bytes <= tokens:
            send_time = now
        else:
            send_time = now + (size_bytes - tokens) / rate_bytes
        tokens -= size_bytes
        flow.state["tokens"] = tokens
        flow.state["last_time"] = now
        flow.state["send_time"] = send_time
        return send_time
