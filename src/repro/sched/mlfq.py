"""Multi-level feedback queue scheduling (Section 2.3, ref. [4]).

PIAS-style information-agnostic flow scheduling [Bai et al., NSDI 2015]:
approximate Shortest-Job-First without knowing job sizes, by demoting a
flow through priority levels as it sends more bytes.  Hardware
implementations use one FIFO per level; on PIEO the whole policy is a
rank function:

* ``rank = level(bytes_sent)`` — the index of the first demotion
  threshold the flow has not yet crossed,
* predicate always true (work conserving),
* FIFO order within a level falls out of PIEO's rank tie-break.

Short flows finish while still at high priority (small rank); long flows
sink to the bottom level and share it round-robin.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.element import ALWAYS_ELIGIBLE
from repro.errors import ConfigurationError
from repro.sched.base import SchedulingAlgorithm
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue


class MultiLevelFeedbackQueue(SchedulingAlgorithm):
    """MLFQ / PIAS on the PIEO primitive.

    Parameters
    ----------
    thresholds_bytes:
        Ascending demotion thresholds; a flow that has sent ``b`` bytes
        sits at level ``#{t : t <= b}`` (level 0 is the highest
        priority, ``len(thresholds)`` the lowest).
    """

    name = "mlfq"

    def __init__(self, thresholds_bytes: Sequence[float]) -> None:
        thresholds = list(thresholds_bytes)
        if not thresholds:
            raise ConfigurationError("need at least one threshold")
        if thresholds != sorted(thresholds) or thresholds[0] <= 0:
            raise ConfigurationError(
                "thresholds must be positive and ascending")
        if len(set(thresholds)) != len(thresholds):
            raise ConfigurationError("thresholds must be distinct")
        self.thresholds = thresholds

    @property
    def num_levels(self) -> int:
        return len(self.thresholds) + 1

    def level_of(self, flow: FlowQueue) -> int:
        sent = flow.state.get("mlfq_bytes_sent", 0.0)
        level = 0
        for threshold in self.thresholds:
            if sent >= threshold:
                level += 1
        return level

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        ctx.enqueue(flow, rank=self.level_of(flow),
                    send_time=ALWAYS_ELIGIBLE)

    def post_dequeue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        packet = ctx.transmit_head(flow)
        if packet is not None:
            flow.state["mlfq_bytes_sent"] = flow.state.get(
                "mlfq_bytes_sent", 0.0) + packet.size_bytes
        if not flow.is_empty:
            ctx.reenqueue(flow)

    def reset_flow(self, flow: FlowQueue) -> None:
        """Reset the demotion counter (e.g. per-job boundary, or PIAS's
        periodic reset against starvation)."""
        flow.state["mlfq_bytes_sent"] = 0.0
