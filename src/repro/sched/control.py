"""Control-plane interface (Sections 2.1 and 3.2).

Fig. 1 shows the scheduling state shared between the data path and a
control plane: "this state could also be accessed and configured by the
control plane.  The control plane can use the memory to store control
states, e.g., per-flow rate-limit value or QoS priority."

:class:`ControlPlane` is that interface for a running scheduler.  Reads
are plain state accesses.  Writes that affect an element already
resident in the ordered list are applied through the asynchronous alarm
path of Section 4.4 — ``dequeue(f)``, mutate, re-run the Pre-Enqueue
function — so the new attributes take effect immediately rather than at
the flow's next natural re-enqueue.
"""

from __future__ import annotations

from typing import Dict, Hashable, Optional

from repro.errors import ConfigurationError
from repro.sched.base import TriggerModel
from repro.sched.framework import PieoScheduler, SchedulerContext
from repro.sim.flow import FlowQueue


class ControlPlane:
    """Runtime configuration of per-flow scheduling state."""

    def __init__(self, scheduler: PieoScheduler) -> None:
        self.scheduler = scheduler
        #: Audit log of configuration writes: (time, flow_id, key, value).
        self.audit_log = []

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def flow_state(self, flow_id: Hashable) -> Dict[str, float]:
        """The per-flow scheduling state (a live view)."""
        return self.scheduler.get_flow(flow_id).state

    def global_state(self) -> Dict[str, float]:
        return self.scheduler.state

    def flow_config(self, flow_id: Hashable) -> Dict[str, float]:
        flow = self.scheduler.get_flow(flow_id)
        return {
            "weight": flow.weight,
            "rate_bps": flow.rate_bps,
            "priority": flow.priority,
            "group": flow.group,
        }

    # ------------------------------------------------------------------
    # Writes
    # ------------------------------------------------------------------
    def set_rate_limit(self, flow_id: Hashable, rate_bps: float,
                       now: float = 0.0,
                       burst_bytes: Optional[float] = None) -> None:
        """Configure a flow's shaping rate (and optionally its burst
        allowance), re-ranking it live if resident."""
        if rate_bps <= 0:
            raise ConfigurationError("rate must be positive")
        flow = self.scheduler.get_flow(flow_id)

        def apply(mutated: FlowQueue) -> None:
            mutated.rate_bps = rate_bps
            if burst_bytes is not None:
                mutated.state["burst_bytes"] = burst_bytes

        self._write(flow, "rate_bps", rate_bps, now, apply)

    def set_weight(self, flow_id: Hashable, weight: float,
                   now: float = 0.0) -> None:
        """Configure a fair-queuing weight."""
        if weight <= 0:
            raise ConfigurationError("weight must be positive")
        flow = self.scheduler.get_flow(flow_id)
        self._write(flow, "weight", weight, now,
                    lambda mutated: setattr(mutated, "weight", weight))

    def set_priority(self, flow_id: Hashable, priority: int,
                     now: float = 0.0) -> None:
        """Configure a QoS priority."""
        flow = self.scheduler.get_flow(flow_id)
        self._write(flow, "priority", priority, now,
                    lambda mutated: setattr(mutated, "priority", priority))

    def set_state(self, flow_id: Hashable, key: str, value: float,
                  now: float = 0.0) -> None:
        """Write an algorithm-specific per-flow state entry (e.g. an EDF
        deadline offset)."""
        flow = self.scheduler.get_flow(flow_id)
        self._write(flow, key, value, now,
                    lambda mutated: mutated.state.__setitem__(key, value))

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _write(self, flow: FlowQueue, key: str, value, now: float,
               apply) -> None:
        self.audit_log.append((now, flow.flow_id, key, value))
        resident = flow.flow_id in self.scheduler.ordered_list
        if not resident:
            apply(flow)
            return
        # Live update via the Section 4.4 path: extract, mutate,
        # re-enqueue through the Pre-Enqueue function.
        self.scheduler.ordered_list.dequeue_flow(flow.flow_id)
        apply(flow)
        ctx = SchedulerContext(self.scheduler, now, reason="alarm")
        if self.scheduler.trigger is TriggerModel.INPUT:
            # Input-triggered schedulers stamped the attributes on the
            # packet at arrival; the new configuration only affects
            # packets arriving from now on (the precision loss
            # Section 3.2.1 attributes to this model).
            head = flow.head
            self.scheduler._list_enqueue(flow, head.rank, head.send_time)
        else:
            self.scheduler.algorithm.pre_enqueue(ctx, flow)
