"""Rate-Controlled Static-Priority queuing, RCSP (Section 4.2; Zhang &
Ferrari 1994).

RCSP splits scheduling into a *rate controller* that assigns each packet
an eligibility time (shaping), and a *static-priority scheduler* that
serves, among flows whose head packet is eligible, the one with the
highest priority.

On PIEO (paper pseudo-code)::

    rank      = f.priority
    predicate = (wall_clock_time >= f.queue.head.time)

The rate controller is provided here as :class:`RateJitterRegulator`, the
standard RCSP regulator: packet ``k`` of a flow becomes eligible at
``max(arrival_k, eligible_{k-1} + 1/rate)``.
"""

from __future__ import annotations

from typing import Dict, Hashable

from repro.sched.base import SchedulingAlgorithm, TimeBase
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


class RateJitterRegulator:
    """Assigns eligibility times enforcing a per-flow packet rate."""

    def __init__(self) -> None:
        self._last_eligible: Dict[Hashable, float] = {}

    def regulate(self, flow: FlowQueue, packet: Packet) -> None:
        """Stamp ``packet.eligible_time``; call at packet arrival."""
        if flow.rate_bps <= 0:
            packet.eligible_time = packet.arrival_time
            return
        spacing = packet.size_bits / flow.rate_bps
        previous = self._last_eligible.get(flow.flow_id)
        eligible = packet.arrival_time
        if previous is not None and previous + spacing > eligible:
            eligible = previous + spacing
        packet.eligible_time = eligible
        self._last_eligible[flow.flow_id] = eligible


class RateControlledStaticPriority(SchedulingAlgorithm):
    """RCSP scheduler stage: static priority over eligible head packets.

    Smaller ``flow.priority`` values are served first (rank order).
    """

    name = "rcsp"
    time_base = TimeBase.WALL

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        head = flow.head
        send_time = head.eligible_time if head is not None else 0.0
        ctx.enqueue(flow, rank=flow.priority, send_time=send_time)
