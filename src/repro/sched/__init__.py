"""The PIEO programming framework and the paper's scheduling algorithms.

Section 4's catalogue, all expressed through the Pre-Enqueue /
Post-Dequeue / alarm programming functions:

* work conserving: DRR, WFQ, WF2Q+, SFQ (Section 4.1)
* non-work conserving: Token Bucket, RCSP (Section 4.2)
* hierarchical scheduling with logical PIEOs (Section 4.3)
* asynchronous scheduling: priority aging, network feedback (Section 4.4)
* priority scheduling: strict priority, SJF, SRTF, EDF, LSTF (Section 4.5)
"""

from repro.sched.base import SchedulingAlgorithm, TimeBase, TriggerModel
from repro.sched.control import ControlPlane
from repro.sched.drr import DeficitRoundRobin
from repro.sched.feedback import PAUSE, RESUME, FeedbackChannel
from repro.sched.framework import PieoScheduler, SchedulerContext
from repro.sched.hierarchical import (HierarchicalScheduler, LogicalPieoView,
                                      SchedNode, two_level_tree)
from repro.sched.mlfq import MultiLevelFeedbackQueue
from repro.sched.priority import (EarliestDeadlineFirst, LeastSlackTimeFirst,
                                  ShortestJobFirst,
                                  ShortestRemainingTimeFirst, StrictPriority)
from repro.sched.rcsp import RateControlledStaticPriority, RateJitterRegulator
from repro.sched.registry import (available_algorithms, get_algorithm,
                                  get_spec, make_algorithm,
                                  register_algorithm)
from repro.sched.sfq import StochasticFairnessQueuing
from repro.sched.spec import AlgorithmSpec
from repro.sched.starvation import (AgingStrictPriority,
                                    install_aging_monitor, starving_flows)
from repro.sched.tdma import TimeSlotted
from repro.sched.token_bucket import TokenBucket
from repro.sched.wf2q import WF2Qplus, WorstCaseFairWeightedFairQueuing
from repro.sched.wfq import WeightedFairQueuing

__all__ = [
    "SchedulingAlgorithm",
    "TimeBase",
    "TriggerModel",
    "ControlPlane",
    "DeficitRoundRobin",
    "PAUSE",
    "RESUME",
    "FeedbackChannel",
    "PieoScheduler",
    "SchedulerContext",
    "HierarchicalScheduler",
    "LogicalPieoView",
    "SchedNode",
    "two_level_tree",
    "MultiLevelFeedbackQueue",
    "EarliestDeadlineFirst",
    "LeastSlackTimeFirst",
    "ShortestJobFirst",
    "ShortestRemainingTimeFirst",
    "StrictPriority",
    "RateControlledStaticPriority",
    "RateJitterRegulator",
    "StochasticFairnessQueuing",
    "AgingStrictPriority",
    "install_aging_monitor",
    "starving_flows",
    "TimeSlotted",
    "TokenBucket",
    "WF2Qplus",
    "WorstCaseFairWeightedFairQueuing",
    "WeightedFairQueuing",
    "AlgorithmSpec",
    "available_algorithms",
    "get_algorithm",
    "get_spec",
    "make_algorithm",
    "register_algorithm",
]
