"""Priority scheduling algorithms (Section 4.5).

"One can easily emulate a priority queue using PIEO, by setting the rank
of each element as equal to its priority value, and setting the
eligibility predicate of each element as true."  This module expresses
the paper's examples: strict priority, Shortest Job First, Shortest
Remaining Time First, Earliest Deadline First, and Least Slack Time
First.  Smaller rank always means served earlier.
"""

from __future__ import annotations

from repro.core.element import ALWAYS_ELIGIBLE
from repro.sched.base import SchedulingAlgorithm
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue


class StrictPriority(SchedulingAlgorithm):
    """Serve the lowest ``flow.priority`` value first; FIFO within a
    priority level (PIEO's rank tie-break)."""

    name = "strict-priority"

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        ctx.enqueue(flow, rank=flow.priority, send_time=ALWAYS_ELIGIBLE)


class ShortestJobFirst(SchedulingAlgorithm):
    """SJF [47]: rank = total backlog of the flow at enqueue time."""

    name = "sjf"

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        ctx.enqueue(flow, rank=flow.backlog_bytes,
                    send_time=ALWAYS_ELIGIBLE)


class ShortestRemainingTimeFirst(SchedulingAlgorithm):
    """SRTF [48]: like SJF but the rank is refreshed every time the flow
    re-enters the ordered list, so it tracks *remaining* work.

    Arrivals to an already-resident flow grow its backlog without moving
    its rank; refresh it asynchronously with the Section 4.4 idiom —
    ``scheduler.run_alarm(flow_id, now)`` extracts the flow and the alarm
    handler re-enqueues it at its current remaining-bytes rank.
    """

    name = "srtf"

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        remaining = flow.backlog_bytes
        flow.state["remaining_bytes"] = remaining
        ctx.enqueue(flow, rank=remaining, send_time=ALWAYS_ELIGIBLE)

    def alarm_handler(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        self.pre_enqueue(ctx, flow)


class EarliestDeadlineFirst(SchedulingAlgorithm):
    """EDF [44]: rank = absolute deadline of the head packet.

    Deadlines are ``arrival_time + flow.state["deadline_offset"]``
    (a per-flow relative deadline, default 1.0 s).
    """

    name = "edf"

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        head = flow.head
        offset = flow.state.get("deadline_offset", 1.0)
        deadline = (head.arrival_time if head is not None else ctx.now)
        deadline += offset
        ctx.enqueue(flow, rank=deadline, send_time=ALWAYS_ELIGIBLE)


class LeastSlackTimeFirst(SchedulingAlgorithm):
    """LSTF [45], the near-universal algorithm of UPS [27].

    Slack = deadline - now - remaining transmission time; the flow with
    the least slack is served first.  Like UPS's LSTF, this is a priority
    queue at heart, so PIEO expresses it directly.
    """

    name = "lstf"

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        head = flow.head
        offset = flow.state.get("deadline_offset", 1.0)
        deadline = (head.arrival_time if head is not None else ctx.now)
        deadline += offset
        remaining = flow.backlog_bytes * 8 / ctx.link_rate_bps
        slack = deadline - ctx.now - remaining
        ctx.enqueue(flow, rank=slack, send_time=ALWAYS_ELIGIBLE)
