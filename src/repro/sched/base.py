"""Algorithm-facing abstractions of the PIEO programming framework.

Section 3.2.1 defines three generic programming functions — *Pre-Enqueue*,
*Post-Dequeue*, and the *alarm* function/handler — plus two trigger models
(input-triggered and output-triggered).  A scheduling algorithm is written
by overriding those functions; everything else (flow queues, the ordered
list, trigger plumbing) is provided by
:class:`repro.sched.framework.PieoScheduler`.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Tuple

from repro.core.element import ALWAYS_ELIGIBLE, Rank, Time
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.sched.framework import SchedulerContext


class TriggerModel(enum.Enum):
    """When the Pre-Enqueue function runs (Section 3.2.1)."""

    #: Pre-Enqueue runs whenever a packet is enqueued into a flow queue;
    #: rank/predicate are computed per packet, off the critical path.
    INPUT = "input"
    #: Pre-Enqueue runs whenever a packet is dequeued from a flow queue or
    #: enqueued into an empty flow queue; more precise for shaping but on
    #: the critical path of scheduling.
    OUTPUT = "output"


class TimeBase(enum.Enum):
    """What notion of time eligibility predicates are evaluated against."""

    #: Wall-clock time (non-work-conserving shaping: Token Bucket, RCSP).
    WALL = "wall"
    #: The algorithm's virtual time (WF2Q+ and friends).
    VIRTUAL = "virtual"


class SchedulingAlgorithm:
    """Base class implementing the *default* programming functions.

    The defaults are exactly the paper's (Section 3.2.1): every flow gets
    rank 1 and an always-true predicate, Post-Dequeue transmits the head
    packet and re-enqueues the flow if its queue is non-empty.  Subclasses
    override what their policy needs.
    """

    #: Human-readable policy name (reports and benchmarks).
    name = "default"

    #: Time base for eligibility evaluation.
    time_base = TimeBase.WALL

    # ------------------------------------------------------------------
    # Output-triggered programming functions
    # ------------------------------------------------------------------
    def pre_enqueue(self, ctx: "SchedulerContext", flow: FlowQueue) -> None:
        """Assign ``flow`` a rank and predicate and push it into the
        ordered list.  Default: rank 1, always eligible."""
        ctx.enqueue(flow, rank=1, send_time=ALWAYS_ELIGIBLE)

    def post_dequeue(self, ctx: "SchedulerContext", flow: FlowQueue) -> None:
        """Consume the scheduling opportunity ``flow`` just won.

        Default: transmit the head packet, then re-enqueue the flow if its
        queue is still backlogged.
        """
        ctx.transmit_head(flow)
        if not flow.is_empty:
            ctx.reenqueue(flow)

    # ------------------------------------------------------------------
    # Input-triggered programming functions
    # ------------------------------------------------------------------
    def packet_attributes(self, ctx: "SchedulerContext", flow: FlowQueue,
                          packet: Packet) -> Tuple[Rank, Time]:
        """Input-triggered Pre-Enqueue: per-packet rank and send_time,
        computed at packet arrival.  Default: (1, always eligible)."""
        return 1, ALWAYS_ELIGIBLE

    # ------------------------------------------------------------------
    # Alarm function and handler (Section 4.4); disabled by default.
    # ------------------------------------------------------------------
    def alarm_handler(self, ctx: "SchedulerContext",
                      flow: FlowQueue) -> None:
        """Operate on a flow that the alarm function extracted."""

    # ------------------------------------------------------------------
    # Eligibility time base
    # ------------------------------------------------------------------
    def eligibility_time(self, ctx: "SchedulerContext") -> Time:
        """The ``t_current`` fed to predicate evaluation at dequeue."""
        if self.time_base is TimeBase.VIRTUAL:
            return ctx.virtual_time
        return ctx.now
