"""The PIEO scheduler: programming framework plumbing (Fig. 3).

:class:`PieoScheduler` glues together the per-flow FIFO queues, the PIEO
ordered list, and the programming functions of a
:class:`repro.sched.base.SchedulingAlgorithm`:

* the **input-triggered path**: packet arrivals run the Pre-Enqueue
  function (per the selected trigger model) and may push the flow into
  the ordered list;
* the **output-triggered path**: whenever the link is idle the transmit
  engine calls :meth:`PieoScheduler.schedule`, which performs
  ``dequeue()`` on the ordered list (predicate evaluation + smallest
  ranked eligible), then runs the Post-Dequeue function;
* the **asynchronous path**: alarm functions can ``dequeue(f)`` a
  specific flow, mutate its attributes, and re-enqueue it (Section 4.4).
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.core.backends import DEFAULT_BACKEND, make_list
from repro.core.element import ALWAYS_ELIGIBLE, Element, Rank, Time
from repro.core.interfaces import PieoList
from repro.errors import (ConfigurationError, SimulationError,
                          UnknownFlowError)
from repro.obs.scope import NULL_METRICS, NULL_TRACER
from repro.sched.base import SchedulingAlgorithm, TimeBase, TriggerModel
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


class SchedulerContext:
    """The view of the scheduler that programming functions receive.

    One context is created per trigger (arrival, scheduling decision, or
    alarm); packets emitted through :meth:`transmit_head` are collected
    for the transmit engine.
    """

    __slots__ = ("_scheduler", "now", "reason", "sent", "subtree_blocked")

    def __init__(self, scheduler: "PieoScheduler", now: Time,
                 reason: str) -> None:
        self._scheduler = scheduler
        #: Wall-clock time of the trigger.
        self.now = now
        #: Why the programming function is running: "arrival", "requeue",
        #: "dequeue", or "alarm".
        self.reason = reason
        #: Packets handed to the wire by this trigger, in order.
        self.sent: List[Packet] = []
        #: Set when a hierarchical child node was granted a slot but its
        #: subtree had nothing eligible to send (non-work-conserving
        #: inner policy).  Lets the scheduling loop stop retrying a node
        #: that cannot make progress until time advances.
        self.subtree_blocked = False

    # -- global state -----------------------------------------------------
    @property
    def state(self) -> Dict[str, float]:
        """Global scheduling state (Section 3.2: accessible by both the
        control plane and the programming functions)."""
        return self._scheduler.state

    @property
    def virtual_time(self) -> float:
        return self._scheduler.state.get("virtual_time", 0.0)

    @virtual_time.setter
    def virtual_time(self, value: float) -> None:
        self._scheduler.state["virtual_time"] = value

    @property
    def link_rate_bps(self) -> float:
        return self._scheduler.link_rate_bps

    @property
    def flows(self) -> Dict[Hashable, FlowQueue]:
        return self._scheduler.flows

    def backlogged_flows(self) -> List[FlowQueue]:
        """Flows with at least one queued packet (the set F of Fig. 2a)."""
        return [flow for flow in self._scheduler.flows.values()
                if not flow.is_empty]

    # -- ordered-list operations -------------------------------------------
    def enqueue(self, flow: FlowQueue, rank: Rank,
                send_time: Time = ALWAYS_ELIGIBLE) -> None:
        """ordered_list.enqueue(f) with the assigned attributes."""
        self._scheduler._list_enqueue(flow, rank, send_time,
                                      now=self.now)

    def reenqueue(self, flow: FlowQueue) -> None:
        """Re-enqueue a still-backlogged flow after a dequeue, honouring
        the configured trigger model (Section 3.2.1 defaults)."""
        self._scheduler._reenqueue(self, flow)

    def dequeue_specific(self, flow_id: Hashable) -> Optional[Element]:
        """ordered_list.dequeue(f) — the asynchronous extract."""
        return self._scheduler._list_dequeue_flow(flow_id, now=self.now)

    # -- transmission -------------------------------------------------------
    def transmit_head(self, flow: FlowQueue) -> Optional[Packet]:
        """send(f.queue.head): pop the head packet and emit it.

        When ``flow`` is a hierarchical class node
        (:class:`repro.sched.hierarchical.SchedNode`), "transmitting its
        head" means granting one scheduling slot downward: the node's own
        policy picks the descendant packet(s).
        """
        schedule_subtree = getattr(flow, "schedule_subtree", None)
        if schedule_subtree is not None:
            packets = schedule_subtree(self.now)
            self.sent.extend(packets)
            if not packets:
                self.subtree_blocked = True
            return packets[-1] if packets else None
        packet = flow.pop()
        self.sent.append(packet)
        return packet


class PieoScheduler:
    """A programmable packet scheduler built on the PIEO primitive.

    Parameters
    ----------
    algorithm:
        The scheduling policy (programming functions).
    ordered_list:
        An explicit :class:`repro.core.interfaces.PieoList` instance.
        Usually left unset in favour of ``backend``.
    backend:
        Ordered-list backend name resolved through
        :mod:`repro.core.backends` (``"reference"``, ``"hardware"``,
        ``"fast"``, ...).  Defaults to the registry default; mutually
        exclusive with ``ordered_list``.  ``backend_config`` carries
        backend-specific options (e.g. ``{"sublist_size": 8}``).
    trigger:
        Input- or output-triggered Pre-Enqueue (Section 3.2.1).
    link_rate_bps:
        Rate of the attached link; fair-queuing algorithms need it for
        virtual-time arithmetic.
    tracer / metrics:
        Observability hooks (:mod:`repro.obs`): typed ``enqueue`` /
        ``dequeue`` events per ordered-list transition, plus the
        ``sched.queue_depth`` gauge (elements resident in this
        scheduler's ordered list).  Default to the shared null
        observers.
    """

    def __init__(self, algorithm: SchedulingAlgorithm,
                 ordered_list: Optional[PieoList] = None,
                 trigger: TriggerModel = TriggerModel.OUTPUT,
                 link_rate_bps: float = 40e9,
                 backend: Optional[str] = None,
                 backend_config: Optional[Dict] = None,
                 tracer=None, metrics=None) -> None:
        if link_rate_bps <= 0:
            raise ConfigurationError("link_rate_bps must be positive")
        if ordered_list is not None and backend is not None:
            raise ConfigurationError(
                "pass either ordered_list or backend, not both")
        self.algorithm = algorithm
        if ordered_list is None:
            ordered_list = make_list(backend or DEFAULT_BACKEND,
                                     **(backend_config or {}))
        self.ordered_list: PieoList = ordered_list
        self.trigger = trigger
        self.link_rate_bps = link_rate_bps
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        #: True when nothing observes this scheduler; hot paths skip
        #: tracer emission, counters, and residency bookkeeping entirely
        #: (the bookkeeping only feeds trace-based latency attribution).
        self._quiet = (self.tracer is NULL_TRACER
                       and self.metrics is NULL_METRICS)
        #: True when the algorithm keeps the stock eligibility_time, so
        #: the dequeue loop can read the threshold directly instead of
        #: calling through the context per decision.
        self._default_eligibility = (
            type(algorithm).eligibility_time
            is SchedulingAlgorithm.eligibility_time)
        self._g_depth = self.metrics.gauge("sched.queue_depth")
        self._c_enqueues = self.metrics.counter("sched.enqueues")
        self._c_dequeues = self.metrics.counter("sched.dequeues")
        self.flows: Dict[Hashable, FlowQueue] = {}
        #: Residency bookkeeping for eligibility attribution: flow_id ->
        #: (enqueue wall time, eligible at enqueue).  Mirrors ordered-list
        #: membership; consulted when the matching dequeue event is
        #: emitted so offline analysis can split eligibility wait from
        #: queueing wait per element episode.
        self._resident: Dict[Hashable, tuple] = {}
        #: Global scheduling state (virtual_time lives here).
        self.state: Dict[str, float] = {}
        #: Flows administratively paused by network feedback (Section 4.4).
        self.blocked: Dict[Hashable, bool] = {}
        #: Reused "requeue"/"dequeue" contexts (see :meth:`_reenqueue`
        #: and :meth:`schedule`).
        self._requeue_ctx: Optional[SchedulerContext] = None
        self._schedule_ctx: Optional[SchedulerContext] = None
        #: Scheduling decisions taken (dequeue() calls that returned a flow).
        self.decisions = 0

    # ------------------------------------------------------------------
    # Flow management
    # ------------------------------------------------------------------
    def add_flow(self, flow: FlowQueue) -> FlowQueue:
        if flow.flow_id in self.flows:
            raise ConfigurationError(f"flow {flow.flow_id!r} already added")
        self.flows[flow.flow_id] = flow
        return flow

    def get_flow(self, flow_id: Hashable) -> FlowQueue:
        try:
            return self.flows[flow_id]
        except KeyError:
            raise UnknownFlowError(f"unknown flow {flow_id!r}") from None

    # ------------------------------------------------------------------
    # Input-triggered path: packet arrivals
    # ------------------------------------------------------------------
    def on_arrival(self, flow_id: Hashable, packet: Packet,
                   now: Time) -> bool:
        """A packet arrived; returns True if the flow just became
        schedulable (useful as a transmit-engine kick hint)."""
        flow = self.get_flow(flow_id)
        if self.trigger is TriggerModel.INPUT:
            ctx = SchedulerContext(self, now, reason="arrival")
            rank, send_time = self.algorithm.packet_attributes(
                ctx, flow, packet)
            packet.rank = rank
            packet.send_time = send_time
            was_empty = flow.push(packet)
            if was_empty and not self.blocked.get(flow_id):
                self._list_enqueue(flow, packet.rank, packet.send_time,
                                   now=now)
                return True
            return False
        # Output-triggered: Pre-Enqueue fires on enqueue into an *empty*
        # flow queue (and on dequeue from a flow queue, handled in
        # _reenqueue).  The context is built only when the function will
        # run — most arrivals land on already-backlogged flows.
        was_empty = flow.push(packet)
        if was_empty and not self.blocked.get(flow_id):
            ctx = SchedulerContext(self, now, reason="arrival")
            self.algorithm.pre_enqueue(ctx, flow)
            return True
        return False

    # ------------------------------------------------------------------
    # Output-triggered path: link idle
    # ------------------------------------------------------------------
    #: Safety bound on consecutive zero-output decisions (a decision can
    #: legitimately transmit nothing — e.g. a DRR visit that only accrues
    #: deficit — but unbounded streaks indicate a broken policy).
    MAX_ZERO_OUTPUT_DECISIONS = 100_000

    def schedule(self, now: Time) -> List[Packet]:
        """One scheduling opportunity: extract the smallest ranked
        eligible flow and run Post-Dequeue, repeating while decisions
        legitimately produce no packet (e.g. DRR deficit accrual).
        Returns the packets to transmit (empty when no flow is
        eligible)."""
        quiet = self._quiet
        algorithm = self.algorithm
        post_dequeue = algorithm.post_dequeue
        list_dequeue = self.ordered_list.dequeue
        flows = self.flows
        if self._default_eligibility:
            eligibility_time = None
            virtual = algorithm.time_base is TimeBase.VIRTUAL
            state = self.state
        else:
            eligibility_time = algorithm.eligibility_time
        blocked_subtrees = None
        # One "dequeue" context per scheduler, refreshed per call (the
        # sent list must be fresh — it is returned to the caller).
        # schedule() is not reentrant on a single scheduler: hierarchies
        # descend into *different* schedulers per level.
        ctx = self._schedule_ctx
        if ctx is None:
            ctx = SchedulerContext(self, now, reason="dequeue")
            self._schedule_ctx = ctx
        else:
            ctx.now = now
            ctx.sent = []
        for _ in range(self.MAX_ZERO_OUTPUT_DECISIONS):
            # The context is reused across zero-output iterations: its
            # sent list is empty (a non-empty one returns immediately)
            # and subtree_blocked is re-armed here.
            ctx.subtree_blocked = False
            if eligibility_time is None:
                eligibility_now = (state.get("virtual_time", 0.0)
                                   if virtual else now)
            else:
                eligibility_now = eligibility_time(ctx)
            element = list_dequeue(eligibility_now)
            if element is None:
                return []
            if not quiet:
                self.tracer.dequeue(now, element.flow_id, element.rank,
                                    send_time=element.send_time,
                                    eligible_at=self._eligible_at(
                                        element, now))
                self._c_dequeues.inc()
                self._g_depth.dec()
            if (blocked_subtrees is not None
                    and element.flow_id in blocked_subtrees):
                # This child's subtree already proved unable to send at
                # this instant; put the element back untouched and stop
                # (only time or an arrival can unblock it).
                self.ordered_list.enqueue(element)
                if not quiet:
                    eligible = element.send_time <= eligibility_now
                    self._resident[element.flow_id] = (now, eligible)
                    self.tracer.enqueue(now, element.flow_id,
                                        element.rank, element.send_time,
                                        requeue=True, eligible=eligible)
                    self._g_depth.inc()
                return []
            self.decisions += 1
            flow = flows.get(element.flow_id)
            if flow is None:
                raise UnknownFlowError(
                    f"unknown flow {element.flow_id!r}")
            post_dequeue(ctx, flow)
            if ctx.sent:
                return ctx.sent
            if ctx.subtree_blocked:
                if blocked_subtrees is None:
                    blocked_subtrees = set()
                blocked_subtrees.add(element.flow_id)
        raise SimulationError(
            f"{self.MAX_ZERO_OUTPUT_DECISIONS} consecutive scheduling "
            "decisions produced no packet; the policy is not making "
            "progress")

    def next_eligible_time(self, now: Time) -> Time:
        """Earliest wall-clock instant at which a dequeue may newly
        succeed, for transmit-engine retry timers.  ``inf`` means "only a
        new arrival (or virtual-time advance) can help"."""
        if self.algorithm.time_base is not TimeBase.WALL:
            return float("inf")
        return self.ordered_list.min_send_time()

    # ------------------------------------------------------------------
    # Asynchronous path (Section 4.4)
    # ------------------------------------------------------------------
    def run_alarm(self, flow_id: Hashable, now: Time,
                  handler: Optional[Callable[[SchedulerContext, FlowQueue],
                                             None]] = None) -> bool:
        """Alarm function: ``dequeue(f)``, run the handler, which may
        mutate attributes and re-enqueue.  Returns False if the flow was
        not resident in the ordered list."""
        flow = self.get_flow(flow_id)
        element = self._list_dequeue_flow(flow_id, now=now)
        if element is None:
            return False
        ctx = SchedulerContext(self, now, reason="alarm")
        if handler is not None:
            handler(ctx, flow)
        else:
            self.algorithm.alarm_handler(ctx, flow)
        return True

    def pause_flow(self, flow_id: Hashable, now: Time) -> None:
        """Network-feedback quench (e.g. D3 pause, Section 4.4): block the
        flow and extract it from the ordered list."""
        self.get_flow(flow_id)
        self.blocked[flow_id] = True
        self._list_dequeue_flow(flow_id, now=now)

    def resume_flow(self, flow_id: Hashable, now: Time) -> bool:
        """Unblock a flow; re-enqueues it if backlogged.  Returns True if
        the flow became schedulable again."""
        flow = self.get_flow(flow_id)
        self.blocked[flow_id] = False
        if flow.is_empty or flow.flow_id in self.ordered_list:
            return False
        ctx = SchedulerContext(self, now, reason="arrival")
        self.algorithm.pre_enqueue(ctx, flow)
        return True

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _eligibility_threshold(self, now: Time) -> Time:
        """The value eligibility predicates are evaluated against right
        now, in the algorithm's own time base."""
        if self.algorithm.time_base is TimeBase.VIRTUAL:
            return self.state.get("virtual_time", 0.0)
        return now

    def _eligible_at(self, element: Element,
                     now: Time) -> Optional[Time]:
        """Wall-clock instant the departing element's predicate became
        true, for latency attribution (queueing vs eligibility wait).

        ``None`` when the transition is not observable in wall time:
        the element entered ineligible under a *virtual* time base, so
        only the enqueue→dequeue residence bounds the wait.
        """
        entry = self._resident.pop(element.flow_id, None)
        if entry is None:
            return None
        enqueued_at, eligible_on_enqueue = entry
        if eligible_on_enqueue:
            return enqueued_at
        if self.algorithm.time_base is TimeBase.WALL:
            # send_time is a wall-clock instant: the predicate flipped
            # exactly then (clamped into the residence interval).
            return min(max(enqueued_at, element.send_time), now)
        return None

    def _list_enqueue(self, flow: FlowQueue, rank: Rank,
                      send_time: Time, now: Time = 0.0) -> None:
        self.ordered_list.enqueue(Element(
            flow_id=flow.flow_id, rank=rank, send_time=send_time,
            group=flow.group, payload=flow))
        if self._quiet:
            return
        eligible = send_time <= self._eligibility_threshold(now)
        self._resident[flow.flow_id] = (now, eligible)
        self.tracer.enqueue(now, flow.flow_id, rank, send_time,
                            eligible=eligible)
        self._c_enqueues.inc()
        self._g_depth.inc()

    def _list_dequeue_flow(self, flow_id: Hashable,
                           now: Time = 0.0) -> Optional[Element]:
        """ordered_list.dequeue(f) with observability (alarm/pause/
        asynchronous extracts)."""
        element = self.ordered_list.dequeue_flow(flow_id)
        if element is not None and not self._quiet:
            self.tracer.dequeue(now, element.flow_id, element.rank,
                                op="dequeue_flow",
                                send_time=element.send_time,
                                eligible_at=self._eligible_at(
                                    element, now))
            self._c_dequeues.inc()
            self._g_depth.dec()
        return element

    def _reenqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        if self.blocked.get(flow.flow_id):
            return
        if self.trigger is TriggerModel.INPUT:
            head = flow.head
            self._list_enqueue(flow, head.rank, head.send_time,
                               now=ctx.now)
            return
        # One requeue context per scheduler, refreshed per call: this
        # runs once per transmitted packet and pre_enqueue functions do
        # not retain the context beyond the call.
        requeue_ctx = self._requeue_ctx
        if requeue_ctx is None:
            requeue_ctx = SchedulerContext(self, ctx.now, reason="requeue")
            self._requeue_ctx = requeue_ctx
        requeue_ctx.now = ctx.now
        requeue_ctx.sent = ctx.sent
        requeue_ctx.subtree_blocked = False
        self.algorithm.pre_enqueue(requeue_ctx, flow)
