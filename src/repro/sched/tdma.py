"""Time-slotted transmission (Section 1 motivation).

The paper motivates hardware scheduling with protocols that "require
packets to be transmitted at precise times on the wire" — Fastpass [30],
QJump [16], Ethernet TDMA [41], and circuit-switched designs.  All of
them reduce to: each flow owns a slot in a repeating frame and must
transmit exactly at its slot boundary.

On PIEO this is a two-liner: ``send_time = rank = the flow's next slot
boundary``.  The eligibility predicate releases the packet at precisely
its slot; the rank orders simultaneous releases by slot time (earlier
slots first).  A priority-queue primitive (PIFO) cannot defer an
enqueued head packet, so it cannot express this without an external
gating mechanism.
"""

from __future__ import annotations

import math

from repro.errors import ConfigurationError
from repro.sched.base import SchedulingAlgorithm, TimeBase
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue


class TimeSlotted(SchedulingAlgorithm):
    """TDMA-style scheduling: one transmission opportunity per flow per
    frame, at the flow's assigned slot.

    Parameters
    ----------
    slot_seconds:
        Duration of one slot.
    frame_slots:
        Slots per frame.  A flow's slot index is
        ``flow.state["slot"]`` (defaulting to ``flow.group``), so slots
        can be (re)assigned by the control plane at runtime.
    """

    name = "tdma"
    time_base = TimeBase.WALL

    def __init__(self, slot_seconds: float, frame_slots: int) -> None:
        if slot_seconds <= 0:
            raise ConfigurationError("slot duration must be positive")
        if frame_slots < 1:
            raise ConfigurationError("need at least one slot per frame")
        self.slot_seconds = slot_seconds
        self.frame_slots = frame_slots

    @property
    def frame_seconds(self) -> float:
        return self.slot_seconds * self.frame_slots

    def slot_of(self, flow: FlowQueue) -> int:
        slot = int(flow.state.get("slot", flow.group))
        if not 0 <= slot < self.frame_slots:
            raise ConfigurationError(
                f"flow {flow.flow_id!r} slot {slot} outside frame of "
                f"{self.frame_slots}")
        return slot

    def next_slot_time(self, flow: FlowQueue, now: float) -> float:
        """The earliest boundary of this flow's slot at or after ``now``
        that is strictly later than its last grant (one opportunity per
        frame)."""
        slot_offset = self.slot_of(flow) * self.slot_seconds
        frame = self.frame_seconds
        frame_index = max(
            0, math.ceil((now - slot_offset) / frame - 1e-12))
        candidate = frame_index * frame + slot_offset
        last_grant = flow.state.get("last_slot_time")
        # Tolerant comparison: successive grants are a whole frame apart,
        # so anything within half a slot of the last grant is the *same*
        # boundary reached via a different floating-point path.
        while (last_grant is not None
               and candidate - last_grant < 0.5 * self.slot_seconds):
            candidate += frame
        return candidate

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        slot_time = self.next_slot_time(flow, ctx.now)
        flow.state["last_slot_time"] = slot_time
        ctx.enqueue(flow, rank=slot_time, send_time=slot_time)
