"""Weighted Fair Queuing (Section 4.1; Demers, Keshav & Shenker 1989).

WFQ assigns every head packet a virtual finish time and always schedules
the flow whose head packet finishes earliest.  On PIEO: rank = finish
time, predicate always true.

Virtual-time convention.  The paper's pseudo-code writes::

    r = Link_Rate / f.weight
    f.finish_time = max(f.finish_time, virtual_time) + L / r
    virtual_time += L / Link_Rate          # at dequeue

which implicitly assumes the flows' shares sum to the link rate.  To make
weights behave as shares for *any* weight assignment, this implementation
uses the standard bit-by-bit-round-robin normalization: virtual time
advances by ``L / (sum of backlogged weights)`` per ``L`` bits served,
and a flow's finish time advances by ``L / weight`` — so backlogged flows
receive throughput proportional to their weights.  Only the normalization
differs from the paper's listing; the PIEO mapping (rank = finish time,
predicate = true) is identical.
"""

from __future__ import annotations

from repro.core.element import ALWAYS_ELIGIBLE
from repro.sched.base import SchedulingAlgorithm
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue


def flow_rate_bps(ctx: SchedulerContext, flow: FlowQueue) -> float:
    """The reserved rate r for ``flow`` used in finish-time arithmetic
    by the virtual-clock family (WF2Q+): the flow's weight-share of the
    link."""
    return ctx.link_rate_bps * flow.weight


def backlogged_weight(ctx: SchedulerContext) -> float:
    """Sum of weights of currently backlogged flows (>= one flow)."""
    total = sum(flow.weight for flow in ctx.backlogged_flows())
    return total if total > 0 else 1.0


class WeightedFairQueuing(SchedulingAlgorithm):
    """Classic WFQ via virtual finish times (GPS emulation)."""

    name = "wfq"

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        finish = max(flow.state.get("finish_time", 0.0), ctx.virtual_time)
        finish += flow.head_size() * 8 / flow.weight
        flow.state["finish_time"] = finish
        ctx.enqueue(flow, rank=finish, send_time=ALWAYS_ELIGIBLE)

    def post_dequeue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        served_bits = flow.head_size() * 8
        ctx.transmit_head(flow)
        # Advance the GPS virtual clock: L bits of real service equal
        # L / (sum of active weights) rounds of bit-by-bit service.
        ctx.virtual_time += served_bits / backlogged_weight(ctx)
        if not flow.is_empty:
            ctx.reenqueue(flow)
