"""Deficit Round Robin (Section 4.1; Shreedhar & Varghese 1996).

DRR schedules flows in round-robin order; a scheduled flow transmits
packets until its credit (``deficit_counter``) runs out.

Expressed on PIEO exactly as in the paper: the Pre-Enqueue function is the
*default* one (rank 1, always eligible) — the PIEO FIFO tie-break among
equal ranks *is* the round-robin order, because each served flow
re-enqueues behind every other waiting flow.  Only Post-Dequeue is
customised, with the paper's deficit loop.
"""

from __future__ import annotations

from repro.sched.base import SchedulingAlgorithm
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue
from repro.sim.packet import MTU_BYTES


class DeficitRoundRobin(SchedulingAlgorithm):
    """DRR with per-flow quanta of ``quantum_bytes * flow.weight``."""

    name = "drr"

    def __init__(self, quantum_bytes: int = MTU_BYTES) -> None:
        if quantum_bytes <= 0:
            raise ValueError("quantum must be positive")
        self.quantum_bytes = quantum_bytes

    def quanta(self, flow: FlowQueue) -> float:
        return self.quantum_bytes * flow.weight

    def post_dequeue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        deficit = flow.state.get("deficit_counter", 0.0) + self.quanta(flow)
        while not flow.is_empty and deficit >= flow.head_size():
            deficit -= flow.head_size()
            ctx.transmit_head(flow)
        if flow.is_empty:
            flow.state["deficit_counter"] = 0.0
        else:
            flow.state["deficit_counter"] = deficit
            ctx.reenqueue(flow)
