"""FCFS: first-come-first-served across flows.

The degenerate policy every scheduling paper compares against — a
single logical FIFO.  Expressed in the PIEO framework it is one line:
rank = head-packet arrival time, always eligible.  With ranks strictly
ordered by arrival, the ordered list serves flows exactly in the order
their head packets arrived, which is a switch output queue with no
isolation at all.  The :mod:`repro.net` FCT experiment uses it as the
baseline that SFQ/WF2Q+ beat on short-flow tail latency under
incast-heavy heavy-tailed load.
"""

from __future__ import annotations

from repro.core.element import ALWAYS_ELIGIBLE
from repro.sched.base import SchedulingAlgorithm
from repro.sim.flow import FlowQueue


class FirstComeFirstServed(SchedulingAlgorithm):
    """One logical FIFO: flows are ranked by head-packet arrival time."""

    name = "fcfs"

    def pre_enqueue(self, ctx, flow: FlowQueue) -> None:
        head = flow.head
        rank = head.arrival_time if head is not None else ctx.now
        ctx.enqueue(flow, rank=rank, send_time=ALWAYS_ELIGIBLE)

    def post_dequeue(self, ctx, flow: FlowQueue) -> None:
        ctx.transmit_head(flow)
        if not flow.is_empty:
            ctx.reenqueue(flow)
