"""Scheduling-algorithm registry: the Section 4 catalogue by name.

Mirrors the discovery pattern of :mod:`repro.core.backends` (ordered
-list engines) and :mod:`repro.sim.events` (event queues): every
:class:`~repro.sched.base.SchedulingAlgorithm` in :mod:`repro.sched`
is registered under a stable CLI-friendly name, so experiments select
policies with ``--algorithm NAME`` (and enumerate them with
``--list-algorithms``) instead of code edits.

Factories take no required arguments — algorithms whose constructors
need parameters (MLFQ thresholds, TDMA slot plan) register with
documented defaults; construct them directly for custom configs.
:class:`~repro.sched.feedback.FeedbackChannel` is deliberately absent:
it is a control-plane adapter around a scheduler + simulator, not a
standalone algorithm.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.errors import ConfigurationError
from repro.sched.base import SchedulingAlgorithm
from repro.sched.drr import DeficitRoundRobin
from repro.sched.mlfq import MultiLevelFeedbackQueue
from repro.sched.priority import (EarliestDeadlineFirst,
                                  LeastSlackTimeFirst, ShortestJobFirst,
                                  ShortestRemainingTimeFirst,
                                  StrictPriority)
from repro.sched.rcsp import RateControlledStaticPriority
from repro.sched.sfq import StochasticFairnessQueuing
from repro.sched.starvation import AgingStrictPriority
from repro.sched.tdma import TimeSlotted
from repro.sched.token_bucket import TokenBucket
from repro.sched.wf2q import WF2Qplus, WorstCaseFairWeightedFairQueuing
from repro.sched.wfq import WeightedFairQueuing
from repro.sim.packet import MTU_BYTES


class _AlgorithmEntry:
    __slots__ = ("name", "factory", "description")

    def __init__(self, name: str,
                 factory: Callable[[], SchedulingAlgorithm],
                 description: str) -> None:
        self.name = name
        self.factory = factory
        self.description = description


_ALGORITHMS: Dict[str, _AlgorithmEntry] = {}


def register_algorithm(name: str,
                       factory: Callable[[], SchedulingAlgorithm],
                       description: str = "") -> None:
    """Register a no-argument algorithm factory (overwrites)."""
    _ALGORITHMS[name] = _AlgorithmEntry(name, factory, description)


def available_algorithms() -> List[str]:
    """Registered algorithm names, sorted."""
    return sorted(_ALGORITHMS)


def get_algorithm(name: str) -> _AlgorithmEntry:
    entry = _ALGORITHMS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown scheduling algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}")
    return entry


def make_algorithm(name: str) -> SchedulingAlgorithm:
    """Instantiate a registered algorithm with its default config."""
    return get_algorithm(name).factory()


def _mlfq_default() -> MultiLevelFeedbackQueue:
    # Demotion thresholds in served bytes: 3 levels at 16 / 256 MTUs.
    return MultiLevelFeedbackQueue(
        thresholds_bytes=(16 * MTU_BYTES, 256 * MTU_BYTES))


def _tdma_default() -> TimeSlotted:
    # 100 us slots, 8-slot frame (flows map to slots by group).
    return TimeSlotted(slot_seconds=100e-6, frame_slots=8)


register_algorithm(
    "drr", DeficitRoundRobin,
    "deficit round robin (work-conserving, quantum per visit)")
register_algorithm(
    "wfq", WeightedFairQueuing,
    "weighted fair queuing (virtual finish times)")
register_algorithm(
    "wf2q+", WF2Qplus,
    "worst-case fair WFQ+ (eligible virtual start times)")
register_algorithm(
    "wcwfq", WorstCaseFairWeightedFairQueuing,
    "worst-case fair weighted fair queuing")
register_algorithm(
    "sfq", StochasticFairnessQueuing,
    "stochastic fairness queuing (hashed buckets, seeded)")
register_algorithm(
    "token-bucket", TokenBucket,
    "token-bucket rate shaping (non-work-conserving)")
register_algorithm(
    "rcsp", RateControlledStaticPriority,
    "rate-controlled static priority (regulator + priority)")
register_algorithm(
    "mlfq", _mlfq_default,
    "multi-level feedback queue (default 3 levels: 16/256 MTUs)")
register_algorithm(
    "strict-priority", StrictPriority,
    "strict priority by flow priority field")
register_algorithm(
    "aging-priority", AgingStrictPriority,
    "strict priority with starvation-avoiding rank aging")
register_algorithm(
    "sjf", ShortestJobFirst,
    "shortest job first (head packet size as rank)")
register_algorithm(
    "srtf", ShortestRemainingTimeFirst,
    "shortest remaining time first")
register_algorithm(
    "edf", EarliestDeadlineFirst,
    "earliest deadline first (per-packet deadlines)")
register_algorithm(
    "lstf", LeastSlackTimeFirst,
    "least slack time first")
register_algorithm(
    "tdma", _tdma_default,
    "time-slotted frames (default 100us slots, 8-slot frame)")
