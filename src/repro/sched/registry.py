"""Scheduling-algorithm registry: the Section 4 catalogue by name.

Mirrors the discovery pattern of :mod:`repro.core.backends` (ordered
-list engines) and :mod:`repro.sim.events` (event queues): every
:class:`~repro.sched.base.SchedulingAlgorithm` in :mod:`repro.sched`
is registered under a stable CLI-friendly name, so experiments select
policies with ``--algorithm NAME`` (and enumerate them with
``--list-algorithms``) instead of code edits.

Factories take no required arguments — algorithms whose constructors
need parameters (MLFQ thresholds, TDMA slot plan) register with
documented defaults; construct them directly for custom configs.
:class:`~repro.sched.feedback.FeedbackChannel` is deliberately absent:
it is a control-plane adapter around a scheduler + simulator, not a
standalone algorithm.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional

from repro.errors import ConfigurationError
from repro.sched.base import SchedulingAlgorithm
from repro.sched.drr import DeficitRoundRobin
from repro.sched.fcfs import FirstComeFirstServed
from repro.sched.spec import AlgorithmSpec
from repro.sched.mlfq import MultiLevelFeedbackQueue
from repro.sched.priority import (EarliestDeadlineFirst,
                                  LeastSlackTimeFirst, ShortestJobFirst,
                                  ShortestRemainingTimeFirst,
                                  StrictPriority)
from repro.sched.rcsp import RateControlledStaticPriority
from repro.sched.sfq import StochasticFairnessQueuing
from repro.sched.starvation import AgingStrictPriority
from repro.sched.tdma import TimeSlotted
from repro.sched.token_bucket import TokenBucket
from repro.sched.wf2q import WF2Qplus, WorstCaseFairWeightedFairQueuing
from repro.sched.wfq import WeightedFairQueuing
from repro.sim.packet import MTU_BYTES


class _AlgorithmEntry:
    __slots__ = ("name", "factory", "description", "spec")

    def __init__(self, name: str,
                 factory: Callable[[], SchedulingAlgorithm],
                 description: str,
                 spec: AlgorithmSpec) -> None:
        self.name = name
        self.factory = factory
        self.description = description
        self.spec = spec


_ALGORITHMS: Dict[str, _AlgorithmEntry] = {}


def register_algorithm(name: str,
                       factory: Callable[[], SchedulingAlgorithm],
                       description: str = "",
                       spec: Optional[AlgorithmSpec] = None) -> None:
    """Register a no-argument algorithm factory (overwrites).

    ``spec`` carries the algorithm's promised-bound metadata for
    :mod:`repro.conformance`; omitting it promises only the universal
    invariants (conservation, per-flow FIFO, link serialization) plus
    work conservation.
    """
    if spec is None:
        spec = AlgorithmSpec()
    _ALGORITHMS[name] = _AlgorithmEntry(name, factory, description, spec)


def get_spec(name: str) -> AlgorithmSpec:
    """The promised-bound spec of a registered algorithm."""
    return get_algorithm(name).spec


def available_algorithms() -> List[str]:
    """Registered algorithm names, sorted."""
    return sorted(_ALGORITHMS)


def get_algorithm(name: str) -> _AlgorithmEntry:
    entry = _ALGORITHMS.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown scheduling algorithm {name!r}; available: "
            f"{', '.join(available_algorithms())}")
    return entry


def make_algorithm(name: str) -> SchedulingAlgorithm:
    """Instantiate a registered algorithm with its default config."""
    return get_algorithm(name).factory()


def _mlfq_default() -> MultiLevelFeedbackQueue:
    # Demotion thresholds in served bytes: 3 levels at 16 / 256 MTUs.
    return MultiLevelFeedbackQueue(
        thresholds_bytes=(16 * MTU_BYTES, 256 * MTU_BYTES))


def _tdma_default() -> TimeSlotted:
    # 100 us slots, 8-slot frame (flows map to slots by group).
    return TimeSlotted(slot_seconds=100e-6, frame_slots=8)


# The SCFQ-style virtual clock (advanced at dequeue from the served
# packet, Golestani 1994) trades the O(log n) GPS simulation for O(1)
# updates; its delay bound is (F-1) * L_max/R against GPS rather than
# the 1 * L_max/R of reference WFQ.  The waiver pins that deviation;
# tests/conformance/test_waivers.py regression-tests the looser bound.
_WFQ_SCFQ_WAIVER = (
    "SCFQ-style O(1) virtual clock: satisfies the Golestani "
    "(F-1)*L_max/R delay bound against GPS, not the Parekh-Gallager "
    "1*L_max/R WFQ bound (see DESIGN.md section 11; regression test "
    "tests/conformance/test_waivers.py pins the observed bound)")

# WF2Q+ approximates the GPS virtual time with an O(1) packet clock
# (wall-clock advance plus a min-start floor, Fig. 2a).  When the fluid
# system sheds an emptied flow its virtual time speeds up to R/W while
# the packet clock keeps wall rate until the floor catches up, so
# eligibility lags exact-GPS WF2Q and packets can finish up to about
# one extra L_max/R late.  Verified against a brute-force fluid
# integration; see DESIGN.md section 11.
_WF2Q_CLOCK_WAIVER = (
    "O(1) approximate virtual clock (WF2Q+): eligibility lags the "
    "exact GPS clock of WF2Q when the fluid system sheds emptied "
    "flows, exceeding the 1*L_max/R bound by up to about one more "
    "L_max/R (see DESIGN.md section 11; regression test "
    "tests/conformance/test_waivers.py pins the observed 2*L_max/R "
    "envelope)")

register_algorithm(
    "fcfs", FirstComeFirstServed,
    "first-come-first-served (single logical FIFO, no isolation)",
    spec=AlgorithmSpec())
register_algorithm(
    "drr", DeficitRoundRobin,
    "deficit round robin (work-conserving, quantum per visit)",
    spec=AlgorithmSpec(fairness_envelope_mtu=4.0))
register_algorithm(
    "wfq", WeightedFairQueuing,
    "weighted fair queuing (virtual finish times)",
    spec=AlgorithmSpec(gps_delay_slack=1.0, fairness_envelope_mtu=4.0,
                       waivers={"gps-delay-bound": _WFQ_SCFQ_WAIVER}))
register_algorithm(
    "wf2q+", WF2Qplus,
    "worst-case fair WFQ+ (eligible virtual start times)",
    spec=AlgorithmSpec(gps_delay_slack=1.0, fairness_envelope_mtu=4.0,
                       waivers={"gps-delay-bound": _WF2Q_CLOCK_WAIVER}))
register_algorithm(
    "wcwfq", WorstCaseFairWeightedFairQueuing,
    "worst-case fair weighted fair queuing",
    spec=AlgorithmSpec(gps_delay_slack=1.0, fairness_envelope_mtu=4.0,
                       waivers={"gps-delay-bound": _WF2Q_CLOCK_WAIVER}))
register_algorithm(
    "sfq", StochasticFairnessQueuing,
    "stochastic fairness queuing (hashed buckets, seeded)",
    spec=AlgorithmSpec(fairness_envelope_mtu=4.0,
                       fairness_unit="packets"))
register_algorithm(
    "token-bucket", TokenBucket,
    "token-bucket rate shaping (non-work-conserving)",
    spec=AlgorithmSpec(work_conserving=False, shaped=True,
                       token_bucket=True, scenario="shaped"))
register_algorithm(
    "rcsp", RateControlledStaticPriority,
    "rate-controlled static priority (regulator + priority)",
    spec=AlgorithmSpec(work_conserving=False, shaped=True,
                       regulated=True, priority_ordered=True,
                       scenario="shaped"))
register_algorithm(
    "mlfq", _mlfq_default,
    "multi-level feedback queue (default 3 levels: 16/256 MTUs)",
    spec=AlgorithmSpec(scenario="poisson"))
register_algorithm(
    "strict-priority", StrictPriority,
    "strict priority by flow priority field",
    spec=AlgorithmSpec(priority_ordered=True, scenario="priority"))
register_algorithm(
    "aging-priority", AgingStrictPriority,
    "strict priority with starvation-avoiding rank aging",
    spec=AlgorithmSpec(priority_ordered=True, scenario="priority"))
register_algorithm(
    "sjf", ShortestJobFirst,
    "shortest job first (head packet size as rank)",
    spec=AlgorithmSpec(scenario="poisson"))
register_algorithm(
    "srtf", ShortestRemainingTimeFirst,
    "shortest remaining time first",
    spec=AlgorithmSpec(scenario="poisson"))
register_algorithm(
    "edf", EarliestDeadlineFirst,
    "earliest deadline first (per-packet deadlines)",
    spec=AlgorithmSpec(scenario="poisson"))
register_algorithm(
    "lstf", LeastSlackTimeFirst,
    "least slack time first",
    spec=AlgorithmSpec(scenario="poisson"))
register_algorithm(
    "tdma", _tdma_default,
    "time-slotted frames (default 100us slots, 8-slot frame)",
    spec=AlgorithmSpec(work_conserving=False, shaped=True, slotted=True,
                       scenario="slotted"))
