"""Hierarchical packet scheduling (Section 4.3, Fig. 4).

Flows are grouped into a tree: leaves are flow queues, non-leaf nodes are
classes (e.g. VMs), and every non-leaf node schedules *its own children*
with its own policy.  A single PIEO cannot express this, but several can:

* all nodes at the same depth share one **physical PIEO** (one per level);
* each non-leaf node owns a **logical PIEO** — the slice of its
  children's elements, extracted from the physical PIEO with the
  group-range eligibility predicate ``p.start <= f.index <= p.end``.
  This implementation gives every non-leaf node a unique integer group id
  and tags children with it, which is the same predicate with a
  one-element range;
* enqueue at each level is triggered independently (a queue becoming
  non-empty activates its element in the parent's logical PIEO);
* dequeue starts at the root PIEO and propagates down through the levels
  until a leaf flow transmits.  The hardware pipelines the levels through
  FIFOs; this model propagates synchronously, which reaches the same
  scheduling decisions (the FIFOs only add fixed pipeline latency).

The paper's evaluation (Section 6.3) uses exactly this machinery: Token
Bucket rate limits at level 2 and WF2Q+ fair queuing within each node at
level 1.  Inner (descendant) policies should be work conserving within
their parent's grants — as in the paper's evaluation — because a parent's
policy state is charged when it grants a slot downward.
"""

from __future__ import annotations

import itertools
import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.backends import DEFAULT_BACKEND, make_factory
from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.errors import ConfigurationError
from repro.sched.base import SchedulingAlgorithm, TimeBase
from repro.sched.framework import PieoScheduler, SchedulerContext
from repro.sim.flow import FlowQueue
from repro.sim.packet import MTU_BYTES, Packet


class LogicalPieoView(PieoList):
    """A node's logical PIEO: the group-filtered view of a shared
    physical PIEO (Fig. 4, "node 2's logical PIEO extracted using
    predicate")."""

    def __init__(self, physical: PieoList, group_id: int) -> None:
        self._physical = physical
        self._group_id = group_id

    @property
    def capacity(self) -> int:
        return self._physical.capacity

    def __len__(self) -> int:
        return sum(1 for element in self._physical.snapshot()
                   if element.group == self._group_id)

    def snapshot(self) -> List[Element]:
        return [element for element in self._physical.snapshot()
                if element.group == self._group_id]

    def __contains__(self, flow_id: Hashable) -> bool:
        element = self._physical.find(flow_id)
        return element is not None and element.group == self._group_id

    def enqueue(self, element: Element) -> None:
        element.group = self._group_id
        self._physical.enqueue(element)

    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        if group_range is not None:
            raise ConfigurationError(
                "logical PIEO views fix their own group range")
        return self._physical.dequeue(
            now, group_range=(self._group_id, self._group_id))

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        return self._physical.peek(
            now, group_range=(self._group_id, self._group_id))

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        element = self._physical.find(flow_id)
        if element is None or element.group != self._group_id:
            return None
        return self._physical.dequeue_flow(flow_id)

    def min_send_time(self) -> Time:
        times = [element.send_time for element in self.snapshot()]
        return min(times) if times else math.inf


class SchedNode:
    """A non-leaf class node.  Quacks like a :class:`FlowQueue` for its
    *parent's* scheduling algorithm, while internally running its own
    policy over its children."""

    def __init__(self, node_id: Hashable, algorithm: SchedulingAlgorithm,
                 weight: float = 1.0, rate_bps: float = 0.0,
                 priority: int = 0) -> None:
        self.flow_id = node_id
        self.algorithm = algorithm
        self.weight = weight
        self.rate_bps = rate_bps
        self.priority = priority
        self.group = 0            # set when attached to a parent
        self.state: Dict[str, float] = {}
        self.parent: Optional["SchedNode"] = None
        self.children: Dict[Hashable, object] = {}
        self.scheduler: Optional[PieoScheduler] = None  # set by the tree
        self.depth = 0
        self._peek_ctx: Optional[SchedulerContext] = None

    # -- tree construction -------------------------------------------------
    def add_child(self, child) -> None:
        if child.flow_id in self.children:
            raise ConfigurationError(
                f"duplicate child id {child.flow_id!r}")
        self.children[child.flow_id] = child
        if isinstance(child, SchedNode):
            child.parent = self

    # -- FlowQueue duck interface used by the parent's algorithm -----------
    @property
    def queue(self) -> bool:
        """Truthy iff the subtree holds packets (mirrors the truthiness
        of :attr:`FlowQueue.queue`, which algorithms use as a fast
        backlog test)."""
        return not self.is_empty

    @property
    def is_empty(self) -> bool:
        """True when no descendant flow queue holds a packet."""
        for child in self.children.values():
            if not child.is_empty:
                return False
        return True

    def head_size(self) -> int:
        """Size of the packet this subtree would transmit next.

        Resolved by peeking down the logical PIEOs; falls back to MTU
        when the inner pick cannot be predicted (e.g. an ineligible
        inner flow).  Exact for the paper's MTU-granularity workloads.
        """
        child = self._peek_child()
        if child is None:
            return MTU_BYTES
        return child.head_size() or MTU_BYTES

    @property
    def backlog_bytes(self) -> int:
        return sum(child.backlog_bytes for child in self.children.values())

    @property
    def head(self):
        child = self._peek_child()
        return child.head if child is not None else None

    def _peek_child(self):
        scheduler = self.scheduler
        if scheduler is None:
            return None
        # The peek context is stateless for eligibility_time (it only
        # reads now/virtual_time), so one cached instance serves every
        # peek instead of an allocation per head_size() probe.
        ctx = self._peek_ctx
        if ctx is None:
            ctx = self._peek_ctx = SchedulerContext(scheduler, 0.0,
                                                    reason="peek")
        element = scheduler.ordered_list.peek(
            self.algorithm.eligibility_time(ctx))
        if element is None:
            return None
        return self.children.get(element.flow_id)

    # -- downward propagation ------------------------------------------------
    def schedule_subtree(self, now: Time) -> List[Packet]:
        """One scheduling step inside this node: dequeue the smallest
        ranked eligible child from the logical PIEO and run this node's
        Post-Dequeue function on it."""
        return self.scheduler.schedule(now)


class HierarchicalScheduler:
    """An n-level hierarchical scheduler built from logical PIEOs.

    Parameters
    ----------
    root:
        Root :class:`SchedNode`; its policy schedules the level-1 nodes.
    link_rate_bps:
        Output link rate.
    list_factory:
        Callable ``(capacity) -> PieoList`` used for each level's physical
        PIEO.  Usually left unset in favour of ``backend``.
    backend:
        Ordered-list backend name resolved through
        :mod:`repro.core.backends` (``"reference"``, ``"hardware"``,
        ``"fast"``, ...), with backend-specific options in
        ``backend_config``.  Mutually exclusive with ``list_factory``;
        defaults to the registry default.

    Exposes the same interface as
    :class:`~repro.sched.framework.PieoScheduler` (``on_arrival`` /
    ``schedule`` / ``next_eligible_time``) so the transmit engine is
    oblivious to hierarchy.
    """

    def __init__(self, root: SchedNode, link_rate_bps: float = 40e9,
                 list_factory=None, backend: Optional[str] = None,
                 backend_config: Optional[Dict] = None,
                 tracer=None, metrics=None) -> None:
        if list_factory is not None and backend is not None:
            raise ConfigurationError(
                "pass either list_factory or backend, not both")
        self.root = root
        self.link_rate_bps = link_rate_bps
        #: Shared observability hooks, threaded into every node's
        #: per-level scheduler (events carry node/flow ids, so one tracer
        #: sees the whole tree; the ``sched.queue_depth`` gauge counts
        #: elements resident across *all* levels).
        self.tracer = tracer
        self.metrics = metrics
        self._list_factory = list_factory or make_factory(
            backend or DEFAULT_BACKEND, **(backend_config or {}))
        self._group_ids = itertools.count()
        #: One shared physical PIEO per non-leaf level (index = depth).
        self.level_lists: List[PieoList] = []
        self.leaf_parent: Dict[Hashable, SchedNode] = {}
        self.flows: Dict[Hashable, FlowQueue] = {}
        self.decisions = 0
        self._wire(root, depth=0)
        #: Static (physical list, group id) pairs for the wall-time-based
        #: nodes, precomputed so the retry-timer scan in
        #: :meth:`next_eligible_time` avoids re-walking the tree and
        #: building per-node filtered snapshots.
        self._wall_scans: List[Tuple[PieoList, int]] = [
            (node.scheduler.ordered_list._physical,
             node.scheduler.ordered_list._group_id)
            for node in self._all_nodes(root)
            if node.algorithm.time_base is TimeBase.WALL]

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _physical_list(self, depth: int) -> PieoList:
        while len(self.level_lists) <= depth:
            self.level_lists.append(self._list_factory(None))
        return self.level_lists[depth]

    def _wire(self, node: SchedNode, depth: int) -> None:
        node.depth = depth
        group_id = next(self._group_ids)
        physical = self._physical_list(depth)
        view = LogicalPieoView(physical, group_id)
        rate = node.rate_bps if node.rate_bps > 0 else self.link_rate_bps
        node.scheduler = PieoScheduler(
            node.algorithm, ordered_list=view, link_rate_bps=rate,
            tracer=self.tracer, metrics=self.metrics)
        for child in node.children.values():
            child.group = group_id
            node.scheduler.flows[child.flow_id] = child
            if isinstance(child, SchedNode):
                self._wire(child, depth + 1)
            else:
                if child.flow_id in self.flows:
                    raise ConfigurationError(
                        f"duplicate flow id {child.flow_id!r}")
                self.flows[child.flow_id] = child
                self.leaf_parent[child.flow_id] = node

    # ------------------------------------------------------------------
    # PieoScheduler-compatible interface
    # ------------------------------------------------------------------
    def on_arrival(self, flow_id: Hashable, packet: Packet,
                   now: Time) -> bool:
        """Packet arrival at a leaf flow; activates ancestors whose
        subtrees just became backlogged (independent per-level enqueue,
        Fig. 4 steps 1a-1c)."""
        flow = self.flows[flow_id]
        parent = self.leaf_parent[flow_id]
        was_empty = flow.push(packet)
        activated = False
        if was_empty:
            self._activate(parent, flow, now)
            activated = True
        node = parent
        while node.parent is not None:
            if node.flow_id not in node.parent.scheduler.ordered_list:
                self._activate(node.parent, node, now)
                activated = True
            node = node.parent
        return activated

    def schedule(self, now: Time) -> List[Packet]:
        """One end-to-end scheduling decision, root PIEO downward
        (Fig. 4 steps 2a-2e)."""
        packets = self.root.schedule_subtree(now)
        if packets:
            self.decisions += 1
        return packets

    def next_eligible_time(self, now: Time) -> Time:
        """Earliest *future* wall-clock instant at which any wall-based
        level may newly become schedulable.

        Instants <= now are skipped: an element eligible right now that
        still did not transmit is blocked by an ancestor level, and that
        ancestor's own (future) send time is the real wake-up point.
        """
        earliest = math.inf
        for physical, group_id in self._wall_scans:
            for element in physical.snapshot():
                if element.group == group_id:
                    send_time = element.send_time
                    if now < send_time < earliest:
                        earliest = send_time
        return earliest

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _activate(self, parent: SchedNode, child, now: Time) -> None:
        ctx = SchedulerContext(parent.scheduler, now, reason="arrival")
        parent.algorithm.pre_enqueue(ctx, child)

    def _all_nodes(self, node: SchedNode):
        yield node
        for child in node.children.values():
            if isinstance(child, SchedNode):
                yield from self._all_nodes(child)


def two_level_tree(root_algorithm: SchedulingAlgorithm,
                   node_algorithms: List[SchedulingAlgorithm],
                   flows_per_node: int,
                   node_rate_bps: Optional[List[float]] = None,
                   flow_weights: Optional[List[float]] = None,
                   ) -> Tuple[SchedNode, List[FlowQueue]]:
    """Build the evaluation topology of Section 6.3: level-2 nodes under
    a root, each with ``flows_per_node`` leaf flows.

    Returns the root node and the flat list of leaf flows (ids
    ``"n{i}.f{j}"``).
    """
    root = SchedNode("root", root_algorithm)
    leaves: List[FlowQueue] = []
    for node_index, algorithm in enumerate(node_algorithms):
        rate = (node_rate_bps[node_index]
                if node_rate_bps is not None else 0.0)
        node = SchedNode(f"n{node_index}", algorithm, rate_bps=rate)
        root.add_child(node)
        for flow_index in range(flows_per_node):
            weight = 1.0
            if flow_weights is not None:
                weight = flow_weights[flow_index % len(flow_weights)]
            flow = FlowQueue(f"n{node_index}.f{flow_index}", weight=weight)
            node.add_child(flow)
            leaves.append(flow)
    return root, leaves
