"""Worst-case Fair Weighted Fair Queuing, WF2Q+ (Sections 2.3 & 4.1).

WF2Q+ [Bennett & Zhang 1996] is the paper's motivating algorithm: it needs
*both* decisions — when a flow becomes eligible (virtual start time) and
in what order to serve eligible flows (virtual finish time) — so it cannot
be expressed on a single PIFO (Fig. 2).  On PIEO it is four lines:

* rank          = virtual finish time,
* send_time     = virtual start time,
* eligibility   = (virtual_time >= start_time),
* at dequeue the smallest-finish-time flow among eligible flows wins.

Virtual time (Fig. 2a)::

    f.start_time  = max(f.finish_time, virtual_time)  # arrival, empty queue
                  = f.finish_time                     # re-enqueue on dequeue
    f.finish_time = f.start_time + L / r
    virtual_time(t + x) = max(virtual_time(t) + x,
                              min over backlogged f of f.start_time)

where ``L`` is the head packet's length, ``r`` the flow's rate, and ``x``
the transmission time of the departing packet.
"""

from __future__ import annotations

from repro.sched.base import SchedulingAlgorithm, TimeBase
from repro.sched.framework import SchedulerContext
from repro.sim.flow import FlowQueue


class WorstCaseFairWeightedFairQueuing(SchedulingAlgorithm):
    """WF2Q+ on the PIEO primitive."""

    name = "wf2q+"
    time_base = TimeBase.VIRTUAL

    def pre_enqueue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        finish = flow.state.get("finish_time", 0.0)
        if ctx.reason == "requeue":
            # Fig. 2a: if dequeue from flow queue, start = finish.
            start = finish
        else:
            # Fig. 2a: if enqueue into empty flow queue.
            start = max(finish, ctx.virtual_time)
        # flow_rate_bps(ctx, flow), inlined: this runs once per
        # transmitted packet.
        finish = start + (flow.head_size() * 8
                          / (ctx.link_rate_bps * flow.weight))
        flow.state["start_time"] = start
        flow.state["finish_time"] = finish
        ctx.enqueue(flow, rank=finish, send_time=start)

    def post_dequeue(self, ctx: SchedulerContext, flow: FlowQueue) -> None:
        transmission = flow.head_size() * 8 / ctx.link_rate_bps
        ctx.transmit_head(flow)
        if not flow.is_empty:
            ctx.reenqueue(flow)
        # Fig. 2a virtual-time update, with the served flow's start time
        # already advanced (Bennett & Zhang's B(t) is evaluated after the
        # departure).  Single pass over the flows: vt = max(vt + x,
        # min start time over backlogged flows), no intermediate lists.
        virtual_time = ctx.virtual_time + transmission
        min_start = None
        for other in ctx.flows.values():
            # ``queue`` truthiness == backlogged; a plain attribute on
            # FlowQueue, so this pass skips the is_empty property call.
            if other.queue:
                start = other.state.get("start_time", 0.0)
                if min_start is None or start < min_start:
                    min_start = start
        if min_start is not None and min_start > virtual_time:
            virtual_time = min_start
        ctx.virtual_time = virtual_time


#: Short alias used throughout tests and benchmarks.
WF2Qplus = WorstCaseFairWeightedFairQueuing
