"""Host: a fabric endpoint with a NIC queue.

A host is where flows are born and die.  Sending is *open-loop*: when a
flow opens, all its packets enter the NIC at once (no congestion
control — the PIFO/SP-PIFO evaluation convention, which isolates the
*scheduling* policy's effect on FCT from transport dynamics), and the
NIC serializes them onto the uplink at line rate.  The NIC is a real
single-port :class:`~repro.sim.dataplane.Dataplane` running its own
PIEO scheduler, so concurrent flows at one host share the uplink under
the same policy family as the switches (default DRR: per-flow fair
share, the closest open-loop stand-in for per-connection pacing).

Trace events from the NIC carry ``switch=<host>`` and
``port=<uplink>`` labels — a host hop is analyzed exactly like a
one-port switch.
"""

from __future__ import annotations

from typing import Callable, Hashable, List, Optional

from repro.errors import ConfigurationError
from repro.net.topology import Topology
from repro.obs.metrics import scoped
from repro.obs.trace import labelled
from repro.sched.framework import PieoScheduler
from repro.sched.registry import make_algorithm
from repro.sim.dataplane import Dataplane
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.packet import MTU_BYTES, Packet

#: Default hop budget stamped on routed packets (standard IP default;
#: far above any fabric diameter here, so it only fires when a test
#: forces it).
DEFAULT_TTL = 64


class Host:
    """One endpoint: NIC dataplane + flow packetization + receive."""

    def __init__(self, name: str, sim: Simulator, topology: Topology,
                 forward: Callable[[str, Packet], None],
                 algorithm: str = "drr",
                 backend: Optional[str] = None,
                 tracer=None, metrics=None,
                 label: bool = True) -> None:
        neighbors = topology.neighbors(name)
        if len(neighbors) != 1:
            raise ConfigurationError(
                f"host {name!r} needs exactly one uplink, has "
                f"{len(neighbors)}")
        self.name = name
        self.sim = sim
        self.uplink = neighbors[0]
        self.received_pkts = 0
        self.received_bytes = 0
        link = topology.link(name, self.uplink)
        host_tracer = labelled(tracer, switch=name) if label else tracer
        host_metrics = (scoped(metrics, f"host.{name}")
                        if label and metrics is not None else metrics)
        self.dataplane = Dataplane(sim, tracer=host_tracer,
                                   metrics=host_metrics)

        def make_scheduler(port_tracer, port_metrics):
            return PieoScheduler(make_algorithm(algorithm),
                                 link_rate_bps=link.rate_bps,
                                 backend=backend,
                                 tracer=port_tracer,
                                 metrics=port_metrics)

        self.port = self.dataplane.add_port(
            self.uplink, make_scheduler=make_scheduler,
            link_rate_bps=link.rate_bps,
            on_departure=lambda packet: forward(self.uplink, packet))

    # -- sending --------------------------------------------------------
    def inject(self, packet: Packet) -> None:
        """One routed packet into the NIC queue (flow lazily
        registered)."""
        flow_id = packet.flow_id
        if self.port.flow_queue(flow_id) is None:
            self.port.scheduler.add_flow(FlowQueue(flow_id))
        self.dataplane.arrival_sink(flow_id, packet)

    def send_flow(self, flow_id: Hashable, dst: str, size_bytes: int,
                  ttl: int = DEFAULT_TTL,
                  record_path: bool = False) -> int:
        """Packetize a whole flow into the NIC now (open loop).
        Returns the packet count."""
        if size_bytes <= 0:
            raise ConfigurationError("flow size must be positive")
        now = self.sim.now
        count = 0
        remaining = size_bytes
        while remaining > 0:
            size = min(MTU_BYTES, remaining)
            path: Optional[List[str]] = [self.name] if record_path \
                else None
            self.inject(Packet(flow_id, size_bytes=size,
                               arrival_time=now, dst=dst, ttl=ttl,
                               path=path))
            remaining -= size
            count += 1
        return count

    def flow_sink(self, flow_id: Hashable, dst: str,
                  ttl: int = DEFAULT_TTL,
                  record_path: bool = False):
        """An :data:`~repro.sim.generators.ArrivalSink` that routes a
        generator's packets to ``dst`` — lets any existing packet
        generator (CBR, Poisson, on/off) drive the fabric."""

        def sink(sink_flow_id: Hashable, packet: Packet) -> None:
            packet.dst = dst
            packet.ttl = ttl
            if record_path:
                packet.path = [self.name]
            self.inject(packet)

        return sink

    # -- receiving ------------------------------------------------------
    def receive(self, packet: Packet) -> None:
        self.received_pkts += 1
        self.received_bytes += packet.size_bytes

    def conservation(self):
        return self.dataplane.conservation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Host({self.name!r})"
