"""Network topology: hosts, switches, directed links.

A :class:`Topology` is a directed graph whose nodes are *hosts*
(endpoints: generate and absorb flows) and *switches* (forwarding
elements: one :class:`~repro.sim.dataplane.Dataplane` each).  Every
edge is a :class:`NetLink` with a rate and a propagation delay;
``add_link`` adds both directions by default, each direction an
independent wire (full duplex).

Builders cover the canonical evaluation fabrics:

* :func:`dumbbell` — two access switches joined by one core link, the
  classic congestion funnel;
* :func:`leaf_spine` — every leaf connects to every spine (2-tier Clos),
  the standard datacenter FCT topology;
* :func:`fat_tree` — the k-ary 3-tier fat-tree (Al-Fahad et al.):
  k pods of k/2 edge + k/2 aggregation switches and (k/2)^2 cores,
  k^3/4 hosts.

Node naming is deliberately boring and sorted-stable (``h0``, ``l0``,
``s0``…) because routing breaks ties lexicographically — the names ARE
part of the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from repro.errors import ConfigurationError
from repro.sim.link import gbps

#: Default propagation delay per link: 1 us (a few hundred meters of
#: fiber, the usual intra-datacenter figure).
DEFAULT_DELAY_S = 1e-6


@dataclass(frozen=True)
class NetLink:
    """One directed wire: ``src -> dst`` at ``rate_bps`` with
    ``delay_s`` propagation."""

    src: str
    dst: str
    rate_bps: float
    delay_s: float = DEFAULT_DELAY_S

    def __post_init__(self) -> None:
        if self.rate_bps <= 0:
            raise ConfigurationError("link rate must be positive")
        if self.delay_s < 0:
            raise ConfigurationError("propagation delay must be >= 0")


class Topology:
    """Directed graph of hosts and switches."""

    def __init__(self) -> None:
        self.hosts: List[str] = []
        self.switches: List[str] = []
        self._links: Dict[Tuple[str, str], NetLink] = {}
        self._neighbors: Dict[str, List[str]] = {}

    # -- construction --------------------------------------------------
    def add_host(self, name: str) -> str:
        self._add_node(name)
        self.hosts.append(name)
        return name

    def add_switch(self, name: str) -> str:
        self._add_node(name)
        self.switches.append(name)
        return name

    def _add_node(self, name: str) -> None:
        if name in self._neighbors:
            raise ConfigurationError(f"duplicate node name {name!r}")
        self._neighbors[name] = []

    def add_link(self, a: str, b: str, rate_bps: float,
                 delay_s: float = DEFAULT_DELAY_S,
                 bidirectional: bool = True) -> None:
        """Connect ``a -> b`` (and ``b -> a`` unless told otherwise)."""
        for node in (a, b):
            if node not in self._neighbors:
                raise ConfigurationError(f"unknown node {node!r}")
        pairs = [(a, b), (b, a)] if bidirectional else [(a, b)]
        for src, dst in pairs:
            if (src, dst) in self._links:
                raise ConfigurationError(
                    f"duplicate link {src!r} -> {dst!r}")
            self._links[(src, dst)] = NetLink(src, dst, rate_bps,
                                              delay_s)
            self._neighbors[src].append(dst)
            self._neighbors[src].sort()

    # -- queries --------------------------------------------------------
    def nodes(self) -> List[str]:
        return sorted(self._neighbors)

    def is_host(self, name: str) -> bool:
        return name in set(self.hosts)

    def is_switch(self, name: str) -> bool:
        return name in set(self.switches)

    def neighbors(self, name: str) -> List[str]:
        """Out-neighbors, sorted (the sort is load-bearing: routing
        tie-breaks follow it)."""
        try:
            return list(self._neighbors[name])
        except KeyError:
            raise ConfigurationError(f"unknown node {name!r}") from None

    def link(self, src: str, dst: str) -> NetLink:
        try:
            return self._links[(src, dst)]
        except KeyError:
            raise ConfigurationError(
                f"no link {src!r} -> {dst!r}") from None

    def links(self) -> Iterable[NetLink]:
        return [self._links[key] for key in sorted(self._links)]

    def validate(self) -> None:
        """Every host needs at least one attached link; a host with
        more than one is fine (multihoming) but unusual."""
        for host in self.hosts:
            if not self._neighbors[host]:
                raise ConfigurationError(
                    f"host {host!r} has no attached link")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Topology({len(self.hosts)} hosts, "
                f"{len(self.switches)} switches, "
                f"{len(self._links)} directed links)")


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------
def dumbbell(hosts_per_side: int = 4, access_gbps: float = 10.0,
             core_gbps: float = 40.0,
             delay_s: float = DEFAULT_DELAY_S) -> Topology:
    """Two access switches ``s0``/``s1`` joined by one core link;
    hosts ``h0..h{n-1}`` hang off ``s0``, ``h{n}..h{2n-1}`` off
    ``s1``."""
    if hosts_per_side < 1:
        raise ConfigurationError("need at least one host per side")
    topo = Topology()
    topo.add_switch("s0")
    topo.add_switch("s1")
    for index in range(2 * hosts_per_side):
        host = topo.add_host(f"h{index}")
        switch = "s0" if index < hosts_per_side else "s1"
        topo.add_link(host, switch, gbps(access_gbps), delay_s)
    topo.add_link("s0", "s1", gbps(core_gbps), delay_s)
    return topo


def leaf_spine(leaves: int = 2, spines: int = 2,
               hosts_per_leaf: int = 2, host_gbps: float = 10.0,
               fabric_gbps: float = 20.0,
               delay_s: float = DEFAULT_DELAY_S) -> Topology:
    """2-tier Clos: every leaf ``l<i>`` connects to every spine
    ``sp<j>``; host ``h<k>`` attaches to leaf ``l<k //
    hosts_per_leaf>``.  Cross-leaf paths are host -> leaf -> spine ->
    leaf -> host, giving ``spines`` equal-cost paths for ECMP."""
    if leaves < 1 or spines < 1 or hosts_per_leaf < 1:
        raise ConfigurationError(
            "leaves, spines, and hosts_per_leaf must all be >= 1")
    topo = Topology()
    for leaf in range(leaves):
        topo.add_switch(f"l{leaf}")
    for spine in range(spines):
        topo.add_switch(f"sp{spine}")
    for index in range(leaves * hosts_per_leaf):
        host = topo.add_host(f"h{index}")
        topo.add_link(host, f"l{index // hosts_per_leaf}",
                      gbps(host_gbps), delay_s)
    for leaf in range(leaves):
        for spine in range(spines):
            topo.add_link(f"l{leaf}", f"sp{spine}",
                          gbps(fabric_gbps), delay_s)
    return topo


def fat_tree(k: int = 4, host_gbps: float = 10.0,
             fabric_gbps: float = 10.0,
             delay_s: float = DEFAULT_DELAY_S) -> Topology:
    """The k-ary fat-tree: ``k`` pods, each with ``k/2`` edge and
    ``k/2`` aggregation switches; ``(k/2)^2`` cores; ``k^3/4`` hosts.

    Names: host ``h<n>``, edge ``e<pod>_<i>``, aggregation
    ``a<pod>_<i>``, core ``c<i>``.  Core ``c<i*(k/2)+j>`` connects to
    aggregation switch ``a<pod>_<i>`` in every pod (the standard
    striping), so any two cross-pod hosts see ``(k/2)^2`` equal-cost
    paths.
    """
    if k < 2 or k % 2:
        raise ConfigurationError("fat-tree k must be even and >= 2")
    half = k // 2
    topo = Topology()
    for core in range(half * half):
        topo.add_switch(f"c{core}")
    host_index = 0
    for pod in range(k):
        for i in range(half):
            topo.add_switch(f"e{pod}_{i}")
            topo.add_switch(f"a{pod}_{i}")
        for i in range(half):
            for j in range(half):
                topo.add_link(f"e{pod}_{i}", f"a{pod}_{j}",
                              gbps(fabric_gbps), delay_s)
            for j in range(half):
                topo.add_link(f"a{pod}_{i}", f"c{i * half + j}",
                              gbps(fabric_gbps), delay_s)
        for i in range(half):
            for _ in range(half):
                host = topo.add_host(f"h{host_index}")
                topo.add_link(host, f"e{pod}_{i}", gbps(host_gbps),
                              delay_s)
                host_index += 1
    return topo
