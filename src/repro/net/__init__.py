"""Multi-switch network fabric built on the single-switch dataplane.

The paper evaluates one PIEO scheduler block per output link; a
datacenter judges scheduling policy by what it buys *applications*
across a fabric of such switches (flow completion time under realistic
heavy-tailed workloads — the standard PIFO/SP-PIFO evaluation).  This
package composes the existing layers into that setting:

* :class:`~repro.net.topology.Topology` — hosts, switches, directed
  links with rate and propagation delay, plus the canonical builders
  (:func:`~repro.net.topology.dumbbell`,
  :func:`~repro.net.topology.leaf_spine`,
  :func:`~repro.net.topology.fat_tree`);
* :mod:`~repro.net.routing` — static shortest-path next-hop tables with
  seeded, process-stable ECMP 5-tuple hashing;
* :class:`~repro.net.switch.FabricSwitch` — one
  :class:`~repro.sim.dataplane.Dataplane` per switch (one port per
  outgoing link, shared buffer, per-port PIEO scheduler) with TTL /
  hop-count / path-provenance handling;
* :class:`~repro.net.host.Host` — endpoints that generate *flows*
  (open-loop Poisson arrivals, sizes from the seeded samplers in
  :mod:`repro.sim.generators`) and serialize them through a NIC port;
* :class:`~repro.net.fct.FctCollector` — per-flow completion time,
  slowdown against the ideal (empty-fabric) FCT, per-hop residence;
* :class:`~repro.net.fabric.Fabric` — the orchestration: every node on
  ONE shared :class:`~repro.sim.events.Simulator`, per-node
  ``switch=``-labelled tracer views, deterministic end to end.

Everything is deterministic by construction: routing ties break on
sorted names, ECMP hashes with CRC32 (process-stable), workloads draw
from per-host seeded RNGs, and all nodes share one simulator clock —
so fabric sweeps shard across processes byte-identically.
"""

from repro.net.fabric import Fabric
from repro.net.fct import FctCollector, FlowRecord
from repro.net.host import Host
from repro.net.routing import RoutingTable, build_routes, ecmp_next_hop
from repro.net.switch import FabricSwitch
from repro.net.topology import (Topology, dumbbell, fat_tree,
                                leaf_spine)
from repro.net.workload import (DATA_MINING_CDF, WEB_SEARCH_CDF,
                                OpenLoopWorkload, make_size_sampler)

__all__ = [
    "Topology", "dumbbell", "leaf_spine", "fat_tree",
    "RoutingTable", "build_routes", "ecmp_next_hop",
    "FabricSwitch", "Host", "Fabric",
    "FctCollector", "FlowRecord",
    "WEB_SEARCH_CDF", "DATA_MINING_CDF", "OpenLoopWorkload",
    "make_size_sampler",
]
