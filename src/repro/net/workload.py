"""Heavy-tailed datacenter workloads for the fabric.

The two empirical flow-size distributions the FCT literature evaluates
against (both in the pFabric/PIAS/SP-PIFO lineage, sizes here in bytes
at 1460-byte segments):

* **web-search** (the DCTCP production cluster trace): mean ~1.6 MB,
  ~60% of *flows* under 50 KB but ~95% of *bytes* in flows over 1 MB;
* **data-mining** (the VL2 cluster trace): even heavier tail — half of
  all flows are a single packet while the top 1% exceed 100 MB.

Plus a bounded **Pareto** (alpha 1.5) for parameterized tests and quick
runs where the real traces' multi-megabyte tails would dwarf a short
simulated duration.

:class:`OpenLoopWorkload` drives one host: flow arrivals are Poisson
with rate ``load x uplink_rate / mean_flow_size`` (so ``load`` is the
long-run fraction of the host's uplink capacity offered), destinations
uniform over the other hosts, sizes from the sampler — every draw from
per-host seeded RNGs, so a sharded sweep point regenerates the exact
same traffic in any process.
"""

from __future__ import annotations

import random
import zlib
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.fabric import Fabric
from repro.sim.generators import EmpiricalCdfSampler, ParetoSampler

#: Segment size the published CDFs are quoted in (1460-byte MSS).
SEGMENT_BYTES = 1460

#: Web-search (DCTCP) flow sizes: (bytes, cumulative probability).
WEB_SEARCH_CDF: Tuple[Tuple[float, float], ...] = tuple(
    (packets * SEGMENT_BYTES, probability) for packets, probability in (
        (1, 0.0001), (6, 0.15), (13, 0.30), (19, 0.45), (33, 0.60),
        (53, 0.70), (133, 0.80), (667, 0.90), (1467, 0.95),
        (2107, 0.98), (6667, 1.0)))

#: Data-mining (VL2) flow sizes: (bytes, cumulative probability).
DATA_MINING_CDF: Tuple[Tuple[float, float], ...] = tuple(
    (packets * SEGMENT_BYTES, probability) for packets, probability in (
        (1, 0.50), (2, 0.60), (3, 0.70), (7, 0.80), (267, 0.90),
        (2107, 0.95), (66667, 0.99), (666667, 1.0)))

#: Registered workload names for ``--workload``.
WORKLOADS = ("web-search", "data-mining", "pareto")


def make_size_sampler(name: str, rng: Optional[random.Random] = None):
    """A seeded flow-size sampler by workload name."""
    if name == "web-search":
        return EmpiricalCdfSampler(WEB_SEARCH_CDF, rng=rng)
    if name == "data-mining":
        return EmpiricalCdfSampler(DATA_MINING_CDF, rng=rng)
    if name == "pareto":
        # Mean ~ 9.5 KB: small enough that millisecond-scale runs
        # complete thousands of flows, tail capped at 1 MB.
        return ParetoSampler(alpha=1.5, scale_bytes=3000.0,
                             cap_bytes=1e6, rng=rng)
    raise ConfigurationError(
        f"unknown workload {name!r}; available: "
        f"{', '.join(WORKLOADS)}")


def host_seed(seed: int, host: str) -> int:
    """Process-stable per-host RNG seed (CRC32, not builtin hash)."""
    return zlib.crc32(f"{seed}|{host}".encode())


class OpenLoopWorkload:
    """Poisson open-loop flow arrivals from one host.

    ``load`` is offered load as a fraction of the host's uplink rate;
    the flow arrival rate is ``load * rate / (mean_size * 8)`` per
    second.  All randomness comes from one ``random.Random(host_seed)``
    so the arrival process is a pure function of ``(seed, host)``.
    """

    def __init__(self, fabric: Fabric, host: str, load: float,
                 sampler, end_time: float,
                 dsts: Optional[Sequence[str]] = None,
                 seed: int = 0) -> None:
        if not 0 < load:
            raise ConfigurationError("load must be positive")
        self.fabric = fabric
        self.host = host
        self.sampler = sampler
        self.end_time = end_time
        self.rng = random.Random(host_seed(seed, host))
        uplink_rate = fabric.topology.link(
            host, fabric.hosts[host].uplink).rate_bps
        self.mean_interarrival_s = (sampler.mean_bytes * 8
                                    / (load * uplink_rate))
        self.dsts: List[str] = sorted(
            dsts if dsts is not None else
            [name for name in fabric.topology.hosts if name != host])
        if not self.dsts:
            raise ConfigurationError(
                f"host {host!r} has no destinations to send to")
        self.flows_started = 0

    def start(self, at: Optional[float] = None) -> None:
        first = (self.fabric.sim.now if at is None else at) \
            + self.rng.expovariate(1.0 / self.mean_interarrival_s)
        self.fabric.sim.schedule(first, self._fire)

    def _fire(self) -> None:
        now = self.fabric.sim.now
        if now >= self.end_time:
            return
        dst = self.dsts[self.rng.randrange(len(self.dsts))]
        size = self.sampler.sample()
        self.fabric.open_flow(
            self.host, dst, size,
            sport=self.rng.randrange(1024, 65536),
            dport=self.rng.randrange(1024, 65536))
        self.flows_started += 1
        gap = self.rng.expovariate(1.0 / self.mean_interarrival_s)
        self.fabric.sim.schedule_in(gap, self._fire)
