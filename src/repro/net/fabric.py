"""Fabric: every node of a topology on one shared simulator.

The orchestration layer.  One :class:`~repro.sim.events.Simulator`
clocks every host NIC and switch port (cross-node event order is
globally deterministic — the multi-engine contract of
:mod:`repro.sim.dataplane` at fabric scale); transmissions hand off to
the next hop through each port's ``on_departure`` hook, with delivery
scheduled one propagation delay after the wire finishes.

Per-switch shared buffers: each switch gets its **own**
:class:`~repro.sim.buffer.BufferManager` (output-queued shared-memory
switches, as in the single-switch incast experiment), so drops are
attributable per node AND per output port.  Hosts are unbuffered —
open-loop sources never drop their own traffic.

Flow identity: :meth:`open_flow` registers a
:class:`~repro.net.routing.FiveTuple` per flow id, pre-walks the ECMP
path (per-flow constant, so the walk is exact), computes the ideal FCT
for the slowdown denominator, and tells the
:class:`~repro.net.fct.FctCollector`.  Flow ids are dot-free
(``h0>h3:n5``) so the analyzer's hierarchy convention never mistakes
them for parent.child nodes.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, Optional

from repro.errors import ConfigurationError
from repro.net.fct import FctCollector
from repro.net.host import DEFAULT_TTL, Host
from repro.net.routing import (FiveTuple, build_routes, flow_path,
                               ideal_fct_seconds)
from repro.net.switch import FabricSwitch
from repro.net.topology import Topology
from repro.obs.trace import labelled
from repro.sim.buffer import BufferManager
from repro.sim.events import Simulator
from repro.sim.packet import MTU_BYTES, Packet


class Fabric:
    """A running multi-switch network."""

    def __init__(self, topology: Topology,
                 sim: Optional[Simulator] = None, *,
                 algorithm: str = "drr",
                 host_algorithm: Optional[str] = None,
                 backend: Optional[str] = None,
                 event_queue: str = "reference",
                 buffer_bytes: Optional[int] = None,
                 drop_policy: str = "tail-drop",
                 seed: int = 0, ttl: int = DEFAULT_TTL,
                 record_path: bool = False,
                 collector: Optional[FctCollector] = None,
                 tracer=None, metrics=None,
                 label: bool = True) -> None:
        topology.validate()
        self.topology = topology
        self.sim = sim if sim is not None else Simulator(
            tracer=tracer, metrics=metrics, queue=event_queue)
        self.routes = build_routes(topology)
        self.collector = collector if collector is not None \
            else FctCollector()
        self.seed = seed
        self.ttl = ttl
        self.record_path = record_path
        self.flow_table: Dict[Hashable, FiveTuple] = {}
        self._flow_seq = 0
        self.switches: Dict[str, FabricSwitch] = {}
        self.hosts: Dict[str, Host] = {}
        for name in topology.switches:
            buffer = None
            if buffer_bytes is not None:
                buffer = BufferManager(
                    capacity_bytes=buffer_bytes, policy=drop_policy,
                    tracer=(labelled(tracer, switch=name)
                            if label else tracer),
                    metrics=metrics)
            self.switches[name] = FabricSwitch(
                name, self.sim, topology, self.routes,
                self._five_tuple_of,
                forward=lambda hop, packet, node=name:
                    self._forward(node, hop, packet),
                algorithm=algorithm, backend=backend, buffer=buffer,
                seed=seed, tracer=tracer, metrics=metrics,
                label=label, record_path=record_path)
        for name in topology.hosts:
            self.hosts[name] = Host(
                name, self.sim, topology,
                forward=lambda hop, packet, node=name:
                    self._forward(node, hop, packet),
                algorithm=(host_algorithm if host_algorithm is not None
                           else algorithm),
                backend=backend, tracer=tracer, metrics=metrics,
                label=label)

    # -- flow identity --------------------------------------------------
    def _five_tuple_of(self, flow_id: Hashable) -> FiveTuple:
        five = self.flow_table.get(flow_id)
        if five is None:
            raise ConfigurationError(
                f"flow {flow_id!r} has no registered 5-tuple; open it "
                "via Fabric.open_flow / Fabric.stream")
        return five

    def _register(self, src: str, dst: str, sport: int, dport: int,
                  proto: str,
                  flow_id: Optional[Hashable]) -> Hashable:
        if src == dst:
            raise ConfigurationError(
                f"flow source and destination are both {src!r}")
        for endpoint in (src, dst):
            if endpoint not in self.hosts:
                raise ConfigurationError(
                    f"flow endpoint {endpoint!r} is not a host")
        if flow_id is None:
            flow_id = f"{src}>{dst}:n{self._flow_seq}"
        self._flow_seq += 1
        if flow_id in self.flow_table:
            raise ConfigurationError(f"duplicate flow id {flow_id!r}")
        self.flow_table[flow_id] = FiveTuple(src=src, dst=dst,
                                             sport=sport, dport=dport,
                                             proto=proto)
        return flow_id

    # -- traffic --------------------------------------------------------
    def open_flow(self, src: str, dst: str, size_bytes: int,
                  sport: int = 0, dport: int = 0, proto: str = "tcp",
                  flow_id: Optional[Hashable] = None) -> Hashable:
        """Register a sized flow, record its routed path + ideal FCT
        with the collector, and packetize it into the source NIC."""
        flow_id = self._register(src, dst, sport, dport, proto, flow_id)
        path = flow_path(self.topology, self.routes,
                         self.flow_table[flow_id], seed=self.seed)
        ideal = ideal_fct_seconds(self.topology, path, size_bytes,
                                  MTU_BYTES)
        self.collector.flow_started(
            flow_id, src, dst, size_bytes, self.sim.now, ideal,
            path=path, packets=math.ceil(size_bytes / MTU_BYTES))
        self.hosts[src].send_flow(flow_id, dst, size_bytes,
                                  ttl=self.ttl,
                                  record_path=self.record_path)
        return flow_id

    def stream(self, src: str, dst: str, sport: int = 0,
               dport: int = 0, proto: str = "udp",
               flow_id: Optional[Hashable] = None):
        """Register an unsized (generator-driven) flow; returns
        ``(flow_id, sink)`` where ``sink`` plugs into any
        :class:`~repro.sim.generators.PacketGenerator`."""
        flow_id = self._register(src, dst, sport, dport, proto, flow_id)
        sink = self.hosts[src].flow_sink(flow_id, dst, ttl=self.ttl,
                                         record_path=self.record_path)
        return flow_id, sink

    # -- packet movement ------------------------------------------------
    def _forward(self, node: str, next_node: str,
                 packet: Packet) -> None:
        """A packet finished serializing out of ``node`` toward
        ``next_node``: account residence, then deliver one propagation
        delay later."""
        finish = packet.departure_time
        self.collector.note_residence(node, finish - packet.arrival_time)
        delay = self.topology.link(node, next_node).delay_s
        self.sim.schedule(finish + delay,
                          lambda: self._deliver(next_node, packet))

    def _deliver(self, node: str, packet: Packet) -> None:
        switch = self.switches.get(node)
        if switch is not None:
            switch.ingest(packet)
            return
        if packet.dst != node:
            raise ConfigurationError(
                f"packet for {packet.dst!r} delivered to host "
                f"{node!r}: routing is broken")
        if self.record_path and packet.path is not None:
            packet.path.append(node)
        self.hosts[node].receive(packet)
        self.collector.packet_delivered(packet, self.sim.now)

    # -- running / reporting -------------------------------------------
    def run_until(self, end_time: float) -> None:
        self.sim.run_until(end_time)

    def ttl_drops(self) -> int:
        return sum(switch.ttl_drops
                   for switch in self.switches.values())

    def conservation(self) -> Dict[str, object]:
        """Fabric-wide per-hop conservation: summed over every node's
        dataplane (a packet is counted once per hop it enters), plus
        TTL drops.  ``balanced`` requires every node to balance."""
        totals = {"arrivals": 0, "departures": 0, "drops": 0,
                  "residue": 0}
        balanced = True
        nodes: Dict[str, Dict[str, int]] = {}
        everything = list(self.hosts.items()) \
            + list(self.switches.items())
        for name, node in everything:
            snapshot = node.conservation()
            nodes[name] = snapshot
            for key in totals:
                totals[key] += snapshot[key]
            balanced = balanced and snapshot["balanced"]
        totals["ttl_drops"] = self.ttl_drops()
        totals["balanced"] = balanced
        totals["nodes"] = nodes
        return totals
