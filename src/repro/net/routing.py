"""Static shortest-path routing with deterministic ECMP.

Control plane of the fabric, computed once before the simulation
starts (datacenter fabrics converge routing long before any flow the
experiment cares about):

* :func:`build_routes` BFSes from every destination over the reversed
  graph and records, per ``(node, dst)``, the **sorted tuple of
  equal-cost next hops** (all neighbors one hop closer to ``dst``).
  Neighbor expansion follows :meth:`Topology.neighbors`'s sorted order,
  so the table is a pure function of the topology — no set/dict
  iteration order leaks in.
* :func:`ecmp_next_hop` picks one next hop per flow by hashing the
  5-tuple **plus the switch name** with CRC32.  CRC32 because builtin
  ``hash`` is salted per process (sharded sweeps would route
  differently per worker); the switch name because hashing identically
  at every hop polarizes ECMP (every switch picks the same index and
  half the fabric goes dark — the classic deployment bug).

The hash is per-flow constant, so a flow's path never changes
mid-flight — which is what lets the per-switch classifier stay a
function of ``flow_id`` alone, and what makes the per-flow end-to-end
FIFO audit meaningful.
"""

from __future__ import annotations

import zlib
from collections import deque
from dataclasses import dataclass
from typing import Dict, Hashable, List, Tuple

from repro.errors import ConfigurationError
from repro.net.topology import Topology


@dataclass(frozen=True)
class FiveTuple:
    """Flow identity for ECMP hashing."""

    src: str
    dst: str
    sport: int = 0
    dport: int = 0
    proto: str = "tcp"


class RoutingTable:
    """``(node, dst) -> sorted tuple of equal-cost next hops``."""

    def __init__(self, next_hops: Dict[Tuple[str, str],
                                       Tuple[str, ...]]) -> None:
        self._next_hops = next_hops

    def next_hops(self, node: str, dst: str) -> Tuple[str, ...]:
        if node == dst:
            return ()
        hops = self._next_hops.get((node, dst))
        if hops is None:
            raise ConfigurationError(
                f"no route from {node!r} to {dst!r}")
        return hops

    def has_route(self, node: str, dst: str) -> bool:
        return node == dst or (node, dst) in self._next_hops


def build_routes(topology: Topology) -> RoutingTable:
    """All-pairs shortest-path next-hop table (hop-count metric).

    One reverse BFS per destination: distance[d] = 0, then any neighbor
    ``n`` of ``v`` with ``distance[n] == distance[v] + 1`` is an
    equal-cost next hop of ``v``.  Hosts are valid destinations AND
    valid transit only as first/last hop (a host never forwards, which
    the BFS encodes by not expanding through hosts).
    """
    table: Dict[Tuple[str, str], Tuple[str, ...]] = {}
    nodes = topology.nodes()
    for dst in nodes:
        distance = {dst: 0}
        frontier = deque([dst])
        while frontier:
            node = frontier.popleft()
            if topology.is_host(node) and node != dst:
                continue  # hosts do not forward transit traffic
            # Reverse edge u -> node exists iff node is u's neighbor.
            for u in nodes:
                if u in distance or node not in topology.neighbors(u):
                    continue
                distance[u] = distance[node] + 1
                frontier.append(u)
        for node in nodes:
            if node == dst or node not in distance:
                continue
            hops = tuple(sorted(
                n for n in topology.neighbors(node)
                if n in distance
                and distance[n] == distance[node] - 1
                and (not topology.is_host(n) or n == dst)))
            if hops:
                table[(node, dst)] = hops
    return RoutingTable(table)


def ecmp_next_hop(candidates: Tuple[str, ...], node: str,
                  flow: FiveTuple, seed: int = 0) -> str:
    """Deterministically pick one of ``candidates`` for ``flow`` at
    ``node`` (CRC32 of seed + switch + 5-tuple)."""
    if not candidates:
        raise ConfigurationError(f"no ECMP candidates at {node!r}")
    if len(candidates) == 1:
        return candidates[0]
    key = (f"{seed}|{node}|{flow.src}|{flow.dst}|{flow.sport}|"
           f"{flow.dport}|{flow.proto}")
    return candidates[zlib.crc32(key.encode()) % len(candidates)]


def flow_path(topology: Topology, routes: RoutingTable,
              flow: FiveTuple, seed: int = 0) -> List[str]:
    """The exact node sequence ``flow`` traverses (src..dst inclusive),
    walking the ECMP choice at every switch.  Used for ideal-FCT
    computation and path-provenance assertions in tests."""
    path = [flow.src]
    node = flow.src
    while node != flow.dst:
        if len(path) > len(topology.nodes()):
            raise ConfigurationError(
                f"routing loop walking {flow.src!r} -> {flow.dst!r}: "
                f"{path}")
        node = ecmp_next_hop(routes.next_hops(node, flow.dst), node,
                             flow, seed=seed)
        path.append(node)
    return path


def path_links(topology: Topology, path: List[str]):
    """The directed links along ``path``."""
    return [topology.link(src, dst)
            for src, dst in zip(path, path[1:])]


def ideal_fct_seconds(topology: Topology, path: List[str],
                      size_bytes: int, mtu_bytes: int) -> float:
    """Empty-fabric flow completion time along ``path``: store-and-
    forward of the first (up to) one-MTU packet across every link, plus
    the remaining bytes streaming at the path's bottleneck rate.  The
    denominator of the slowdown metric."""
    links = path_links(topology, path)
    if not links:
        return 0.0
    head_bytes = min(size_bytes, mtu_bytes)
    ideal = sum(link.delay_s + head_bytes * 8 / link.rate_bps
                for link in links)
    rest = size_bytes - head_bytes
    if rest > 0:
        bottleneck = min(link.rate_bps for link in links)
        ideal += rest * 8 / bottleneck
    return ideal
