"""FabricSwitch: one Dataplane per topology switch.

Reuses the single-switch stack verbatim — one
:class:`~repro.sim.port.Port` (PIEO scheduler + link + transmit
engine) per outgoing topology link, an optional shared
:class:`~repro.sim.buffer.BufferManager`, a classifier for output-port
selection — and adds only what multi-hop needs:

* the classifier is a :class:`NextHopClassifier` answering from the
  routing table (ECMP per flow, cached — the choice is per-flow
  constant, see :mod:`repro.net.routing`);
* :meth:`ingest` decrements TTL (tracing an ``arrival`` + ``drop
  reason="ttl-expired"`` pair on expiry, so per-switch conservation
  still balances), stamps hop-count / path provenance, and lazily
  registers the flow's :class:`~repro.sim.flow.FlowQueue` at the
  chosen output port (hosts open flows at runtime; pre-registering
  every flow at every switch would defeat the point);
* every component sees a ``switch=<name>``-labelled tracer view and a
  ``switch.<name>``-scoped metrics view, so one trace stream carries
  per-switch tracks that :mod:`repro.obs` splits back apart.

The per-port ``on_departure`` hook hands transmitted packets to the
fabric, which schedules delivery at the far end after the link's
propagation delay.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, Optional

from repro.net.routing import (FiveTuple, RoutingTable, ecmp_next_hop)
from repro.net.topology import Topology
from repro.obs.metrics import scoped
from repro.obs.trace import labelled
from repro.sched.framework import PieoScheduler
from repro.sched.registry import make_algorithm
from repro.sim.classifier import Classifier
from repro.sim.dataplane import Dataplane
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


class NextHopClassifier(Classifier):
    """Port-of-flow via the routing table: the output port id IS the
    next-hop node name.  Lazily caches the per-flow ECMP choice (the
    hash is per-flow constant, so the cache is semantics-free)."""

    def __init__(self, node: str, routes: RoutingTable,
                 five_tuple_of: Callable[[Hashable], FiveTuple],
                 seed: int = 0) -> None:
        self.node = node
        self.routes = routes
        self.five_tuple_of = five_tuple_of
        self.seed = seed
        self._cache: Dict[Hashable, str] = {}

    def port_of(self, flow_id: Hashable) -> str:
        port = self._cache.get(flow_id)
        if port is None:
            flow = self.five_tuple_of(flow_id)
            port = ecmp_next_hop(
                self.routes.next_hops(self.node, flow.dst), self.node,
                flow, seed=self.seed)
            self._cache[flow_id] = port
        return port


class FabricSwitch:
    """One switch of a :class:`~repro.net.fabric.Fabric`."""

    def __init__(self, name: str, sim: Simulator,
                 topology: Topology, routes: RoutingTable,
                 five_tuple_of: Callable[[Hashable], FiveTuple],
                 forward: Callable[[str, Packet], None],
                 algorithm: str = "drr",
                 backend: Optional[str] = None,
                 buffer=None, seed: int = 0,
                 tracer=None, metrics=None,
                 label: bool = True,
                 record_path: bool = True) -> None:
        self.name = name
        self.sim = sim
        self.record_path = record_path
        self.ttl_drops = 0
        self.tracer = labelled(tracer, switch=name) if label else tracer
        switch_metrics = (scoped(metrics, f"switch.{name}")
                          if label and metrics is not None else metrics)
        self.classifier = NextHopClassifier(name, routes, five_tuple_of,
                                            seed=seed)
        self.dataplane = Dataplane(sim, classifier=self.classifier,
                                   buffer=buffer, tracer=self.tracer,
                                   metrics=switch_metrics)
        for neighbor in topology.neighbors(name):
            link = topology.link(name, neighbor)

            def make_scheduler(port_tracer, port_metrics,
                               rate=link.rate_bps):
                return PieoScheduler(make_algorithm(algorithm),
                                     link_rate_bps=rate,
                                     backend=backend,
                                     tracer=port_tracer,
                                     metrics=port_metrics)

            self.dataplane.add_port(
                neighbor, make_scheduler=make_scheduler,
                link_rate_bps=link.rate_bps,
                on_departure=lambda packet, hop=neighbor:
                    forward(hop, packet))

    # -- traffic entry -------------------------------------------------
    def ingest(self, packet: Packet) -> None:
        """One packet arriving at this switch (from a host NIC or a
        previous hop)."""
        if packet.ttl > 0:
            packet.ttl -= 1
            if packet.ttl == 0:
                # Trace an arrival+drop pair so per-switch conservation
                # (arrivals >= delivered + drops) still balances.
                self.ttl_drops += 1
                now = self.sim.now
                if self.tracer is not None:
                    self.tracer.arrival(now, packet.flow_id,
                                        packet.size_bytes,
                                        packet_id=packet.packet_id)
                    self.tracer.drop(now, packet.flow_id,
                                     reason="ttl-expired",
                                     packet_id=packet.packet_id)
                return
        packet.hops += 1
        if self.record_path and packet.path is not None:
            packet.path.append(self.name)
        flow_id = packet.flow_id
        port = self.dataplane.ports[self.classifier.port_of(flow_id)]
        if port.flow_queue(flow_id) is None:
            port.scheduler.add_flow(FlowQueue(flow_id))
        self.dataplane.arrival_sink(flow_id, packet)

    # -- reporting ------------------------------------------------------
    def conservation(self) -> Dict[str, int]:
        return self.dataplane.conservation()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FabricSwitch({self.name!r})"
