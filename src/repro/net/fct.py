"""Flow-completion-time collection.

The end-to-end figure of merit: for every flow the fabric carries, the
time from the flow *opening* at its source host to its last byte
arriving at the destination, normalized by the ideal (empty-fabric)
completion time along the flow's actual routed path — the *slowdown*
(a.k.a. stretch / normalized FCT) every datacenter scheduling paper
reports.  Slowdown 1.0 means the fabric added nothing on top of
store-and-forward + serialization; the gap between p50 and p99, split
by flow size, is where scheduling policy shows up.

The collector also accumulates per-hop residence (time between a
packet entering a node and its transmission completing there, summed
per node) — the "where did the latency go" view — and counts
end-to-end reordering (a delivered packet with a lower packet id than
its predecessor), which the routing determinism contract says must be
zero.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional

from repro.obs.analyze import exact_quantile
from repro.sim.packet import Packet

#: Flows at or below this many bytes count as "short" in the split
#: tables (the conventional 100 KB datacenter threshold).
SHORT_FLOW_BYTES = 100_000


@dataclass
class FlowRecord:
    """One flow's lifecycle as the collector sees it."""

    flow_id: Hashable
    src: str
    dst: str
    size_bytes: int
    start_t: float
    ideal_s: float
    path: List[str] = field(default_factory=list)
    packets: int = 0
    bytes_delivered: int = 0
    packets_delivered: int = 0
    finish_t: Optional[float] = None
    reordered: int = 0
    _last_packet_id: int = -1

    @property
    def completed(self) -> bool:
        return self.finish_t is not None

    @property
    def fct_s(self) -> Optional[float]:
        if self.finish_t is None:
            return None
        return self.finish_t - self.start_t

    @property
    def slowdown(self) -> Optional[float]:
        fct = self.fct_s
        if fct is None or self.ideal_s <= 0:
            return None
        return fct / self.ideal_s

    @property
    def short(self) -> bool:
        return self.size_bytes <= SHORT_FLOW_BYTES


class FctCollector:
    """Registry of flows + delivery bookkeeping + per-hop residence."""

    def __init__(self) -> None:
        self.flows: Dict[Hashable, FlowRecord] = {}
        #: node -> {"packets", "total_s", "max_s"} residence aggregate.
        self.residence: Dict[str, Dict[str, float]] = {}

    # -- lifecycle ------------------------------------------------------
    def flow_started(self, flow_id: Hashable, src: str, dst: str,
                     size_bytes: int, now: float, ideal_s: float,
                     path: Optional[List[str]] = None,
                     packets: int = 0) -> FlowRecord:
        if flow_id in self.flows:
            raise ValueError(f"duplicate flow id {flow_id!r}")
        record = FlowRecord(flow_id=flow_id, src=src, dst=dst,
                            size_bytes=size_bytes, start_t=now,
                            ideal_s=ideal_s, path=list(path or ()),
                            packets=packets)
        self.flows[flow_id] = record
        return record

    def packet_delivered(self, packet: Packet, now: float) -> None:
        record = self.flows.get(packet.flow_id)
        if record is None:
            return  # un-collected flow (e.g. raw generator traffic)
        record.bytes_delivered += packet.size_bytes
        record.packets_delivered += 1
        if packet.packet_id < record._last_packet_id:
            record.reordered += 1
        record._last_packet_id = max(record._last_packet_id,
                                     packet.packet_id)
        if record.finish_t is None \
                and record.bytes_delivered >= record.size_bytes:
            record.finish_t = now

    def note_residence(self, node: str, seconds: float) -> None:
        entry = self.residence.get(node)
        if entry is None:
            entry = self.residence[node] = {
                "packets": 0, "total_s": 0.0, "max_s": 0.0}
        entry["packets"] += 1
        entry["total_s"] += seconds
        entry["max_s"] = max(entry["max_s"], seconds)

    # -- reporting ------------------------------------------------------
    def completed(self) -> List[FlowRecord]:
        return [record for record in self.flows.values()
                if record.completed]

    def reordered_total(self) -> int:
        return sum(record.reordered for record in self.flows.values())

    def slowdown_stats(self) -> Dict[str, float]:
        """p50/p99 slowdown for all / short / long completed flows."""
        completed = self.completed()
        stats: Dict[str, float] = {
            "flows": len(self.flows),
            "completed": len(completed),
        }
        groups = {
            "all": [r.slowdown for r in completed
                    if r.slowdown is not None],
            "short": [r.slowdown for r in completed
                      if r.short and r.slowdown is not None],
            "long": [r.slowdown for r in completed
                     if not r.short and r.slowdown is not None],
        }
        for name, slowdowns in groups.items():
            slowdowns.sort()
            stats[f"{name}_flows"] = len(slowdowns)
            stats[f"{name}_p50"] = exact_quantile(slowdowns, 0.50)
            stats[f"{name}_p99"] = exact_quantile(slowdowns, 0.99)
        return stats

    def mean_residence_us(self) -> Dict[str, float]:
        """Mean per-packet residence per node, microseconds."""
        return {node: entry["total_s"] / entry["packets"] * 1e6
                for node, entry in sorted(self.residence.items())
                if entry["packets"]}
