"""Scenario execution + verdict assembly for conformance checks.

``run_scenario`` wires one :class:`~repro.conformance.scenarios.Scenario`
through the standard single-link stack (Simulator + Link +
PieoScheduler + TransmitEngine) with an in-memory
:class:`~repro.obs.trace.Tracer`, replays the precomputed arrival
sequence, and returns a :class:`~repro.conformance.checkers.ConformanceRun`
ready for the checker library.  ``check_algorithm`` then runs every
checker the algorithm's :class:`~repro.sched.spec.AlgorithmSpec` makes
applicable and folds waivers into a pass/fail verdict;
``sweep_registry`` does that for the whole catalogue.

Violation *injection* (``inject=``) deliberately corrupts the trace
before checking — used by tests and CI to prove the harness actually
fails (a conformance suite that cannot fail verifies nothing).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.errors import ConfigurationError
from repro.obs.analyze import TraceAnalysis, _as_dicts
from repro.obs.trace import Tracer
from repro.sched.framework import PieoScheduler
from repro.sched.rcsp import RateJitterRegulator
from repro.sched.registry import get_algorithm
from repro.sched.spec import AlgorithmSpec
from repro.sched.tdma import TimeSlotted
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.link import Link
from repro.sim.packet import Packet, reset_packet_ids
from repro.conformance.checkers import (CHECKERS, ConformanceRun,
                                        Violation)
from repro.conformance.scenarios import Scenario, make_scenario

#: Supported trace corruptions for self-tests of the harness.
INJECTIONS = ("reorder", "early")


def run_scenario(scenario: Scenario, algorithm_name: str,
                 backend: Optional[str] = None,
                 event_queue: str = "reference",
                 ) -> ConformanceRun:
    """Execute one scenario under one algorithm and trace it."""
    entry = get_algorithm(algorithm_name)
    spec = entry.spec
    if algorithm_name == "tdma" and scenario.slot_plan is not None:
        # The registry factory has a fixed slot plan; the scenario's
        # (possibly metamorphically rescaled) plan wins.
        algorithm = TimeSlotted(slot_seconds=scenario.slot_plan[0],
                                frame_slots=scenario.slot_plan[1])
    else:
        algorithm = entry.factory()

    reset_packet_ids(0)
    tracer = Tracer()
    sim = Simulator(tracer=tracer, queue=event_queue)
    link = Link(scenario.link_rate_bps, tracer=tracer)
    scheduler = PieoScheduler(algorithm,
                              link_rate_bps=scenario.link_rate_bps,
                              backend=backend, tracer=tracer)
    engine = TransmitEngine(sim, scheduler, link, tracer=tracer)

    flows: Dict[str, FlowQueue] = {}
    for flow_spec in scenario.flows:
        flow = FlowQueue(flow_spec.flow_id, weight=flow_spec.weight,
                         rate_bps=flow_spec.rate_bps,
                         priority=flow_spec.priority,
                         group=flow_spec.group)
        if flow_spec.burst_bytes is not None:
            flow.state["burst_bytes"] = flow_spec.burst_bytes
        scheduler.add_flow(flow)
        flows[flow_spec.flow_id] = flow

    regulator = RateJitterRegulator() if spec.regulated else None

    def deliver(flow_id: str, size_bytes: int) -> None:
        packet = Packet(flow_id, size_bytes=size_bytes)
        if regulator is not None:
            # RCSP's rate controller stamps eligibility at arrival,
            # before the static-priority stage sees the packet.
            packet.arrival_time = sim.now
            regulator.regulate(flows[flow_id], packet)
        engine.arrival_sink(flow_id, packet)

    for time, flow_id, size_bytes in scenario.arrivals:
        sim.schedule(time, lambda f=flow_id, s=size_bytes: deliver(f, s))

    sim.run_until(scenario.duration)

    analysis = TraceAnalysis(tracer.events)
    return ConformanceRun(analysis=analysis, spec=spec,
                          algorithm_name=algorithm_name,
                          algorithm=algorithm, scenario=scenario,
                          link_rate_bps=scenario.link_rate_bps,
                          recorder=engine.recorder)


def inject_violation(events: Sequence, kind: str) -> List[dict]:
    """Corrupt a healthy event stream so a checker must fire.

    ``reorder``
        Swap the packet ids of the first and last departures of the
        busiest flow -> a per-flow FIFO violation.
    ``early``
        Pull one departure's start a full serialization earlier ->
        link-overlap (the wire serializes two packets at once).
    """
    records = [dict(record) for record in _as_dicts(events)]
    departures: Dict[object, List[int]] = {}
    for index, record in enumerate(records):
        if record.get("kind") == "departure":
            departures.setdefault(record.get("flow_id"),
                                  []).append(index)
    if kind == "reorder":
        flow_id, indices = max(departures.items(),
                               key=lambda item: len(item[1]))
        if len(indices) < 2:
            raise ConfigurationError(
                "trace too small to inject a reorder")
        first, last = indices[0], indices[-1]
        (records[first]["packet_id"],
         records[last]["packet_id"]) = (records[last]["packet_id"],
                                        records[first]["packet_id"])
    elif kind == "early":
        indices = max(departures.values(), key=len)
        if len(indices) < 2:
            raise ConfigurationError(
                "trace too small to inject an early departure")
        target = records[indices[-1]]
        previous = records[indices[-2]]
        width = target["finish"] - target["t"]
        target["t"] = previous["t"] + 0.25 * width
        target["finish"] = target["t"] + width
    else:
        raise ConfigurationError(
            f"unknown injection {kind!r}; available: "
            f"{', '.join(INJECTIONS)}")
    return records


@dataclass
class CheckOutcome:
    """One checker's result for one run."""

    checker: str
    violations: List[Violation]
    waived: Optional[str] = None  # waiver text when spec waives it

    @property
    def passed(self) -> bool:
        return not self.violations or self.waived is not None


@dataclass
class ConformanceReport:
    """All applicable checker outcomes for one algorithm run."""

    algorithm: str
    scenario: str
    outcomes: List[CheckOutcome] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(outcome.passed for outcome in self.outcomes)

    @property
    def violations(self) -> List[Violation]:
        return [violation for outcome in self.outcomes
                for violation in outcome.violations]

    def verdicts(self) -> Dict[str, bool]:
        """checker -> held (ignoring waivers): the metamorphic harness
        compares these across transformed runs."""
        return {outcome.checker: not outcome.violations
                for outcome in self.outcomes}


def check_run(run: ConformanceRun) -> List[CheckOutcome]:
    """Run every checker the run's spec makes applicable."""
    outcomes = []
    for name in run.spec.checkers():
        outcomes.append(CheckOutcome(
            checker=name, violations=CHECKERS[name](run),
            waived=run.spec.is_waived(name)))
    return outcomes


def check_algorithm(algorithm_name: str,
                    scenario: Optional[Scenario] = None,
                    seed: int = 0,
                    backend: Optional[str] = None,
                    event_queue: str = "reference",
                    inject: Optional[str] = None) -> ConformanceReport:
    """Run one algorithm's conformance scenario and judge it."""
    entry = get_algorithm(algorithm_name)
    if scenario is None:
        scenario = make_scenario(entry.spec.scenario, seed=seed)
    run = run_scenario(scenario, algorithm_name, backend=backend,
                       event_queue=event_queue)
    if inject is not None:
        corrupted = inject_violation(run.analysis.events, inject)
        run = ConformanceRun(analysis=TraceAnalysis(corrupted),
                             spec=run.spec,
                             algorithm_name=run.algorithm_name,
                             algorithm=run.algorithm,
                             scenario=run.scenario,
                             link_rate_bps=run.link_rate_bps,
                             recorder=run.recorder)
    return ConformanceReport(algorithm=algorithm_name,
                             scenario=scenario.name,
                             outcomes=check_run(run))


def sweep_registry(algorithms: Optional[Sequence[str]] = None,
                   seed: int = 0,
                   backend: Optional[str] = None,
                   event_queue: str = "reference",
                   ) -> List[ConformanceReport]:
    """Conformance-check every registered algorithm."""
    from repro.sched.registry import available_algorithms
    names = list(algorithms) if algorithms else available_algorithms()
    return [check_algorithm(name, seed=seed, backend=backend,
                            event_queue=event_queue) for name in names]


def check_trace(path: str) -> List[ConformanceReport]:
    """Trace-only conformance: the universal invariants per run.

    Without the scenario (weights, rates, priorities) only the
    trace-integrity checkers apply; algorithm-specific bounds need
    ``check_algorithm``.  Multi-switch (fabric) traces are audited per
    switch track — each hop must independently satisfy conservation,
    per-flow FIFO, and link non-overlap — with one report per
    ``(run, switch)``.
    """
    from repro.obs.analyze import split_runs, switch_analyses
    from repro.obs.trace import read_jsonl
    from repro.sched.spec import UNIVERSAL_CHECKERS
    reports = []
    for index, segment in enumerate(split_runs(read_jsonl(path))):
        for switch, analysis in switch_analyses(segment.events):
            run = ConformanceRun(analysis=analysis,
                                 spec=AlgorithmSpec())
            outcomes = [CheckOutcome(checker=name,
                                     violations=CHECKERS[name](run))
                        for name in UNIVERSAL_CHECKERS]
            title = (segment.title if switch is None
                     else f"{segment.title} [{switch}]")
            reports.append(ConformanceReport(
                algorithm=title, scenario=f"trace[{index}]",
                outcomes=outcomes))
    return reports
