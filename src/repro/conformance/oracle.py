"""Fluid reference oracles: GPS finish times and token-bucket levels.

**GPS (Generalized Processor Sharing).**  The idealized fluid server
behind the WFQ family (Parekh & Gallager 1993): at every instant the
link capacity ``R`` is divided among the *backlogged* flows in
proportion to their weights.  A packetized WFQ server promises that
every packet finishes no later than its GPS fluid finish time plus
``L_max/R`` (one maximum-size packet at line rate); WF2Q(+) adds a
matching lower bound on service.  The oracle integrates the fluid
system event-by-event over the exact arrival sequence a discrete run
saw, producing a per-packet ideal finish time the checkers compare
wire departures against.

The integration uses the standard virtual-time formulation: virtual
time ``V`` advances at rate ``R / W(t)`` (in bits per unit weight)
where ``W(t)`` is the total weight of backlogged flows.  Packet ``k``
of flow ``i`` gets a start tag ``S = max(F_prev, V(arrival))`` and a
finish tag ``F = S + L_bits / w_i``; the packet's fluid finish is the
wall-clock instant at which ``V`` crosses ``F``.  Between events
(an arrival changing ``W``, or a tag completion) ``V`` is piecewise
linear, so the integration is exact up to float rounding.

**Token bucket.**  For shaped flows the oracle replays departures
against an ``(r, b)`` bucket: tokens accrue at ``r`` bytes/s capped at
``b`` bytes and every departure debits its size at transmission start.
The reconstruction is *conservative* — the bucket starts full and
accrues from the first observable instant — so a reported negative
level is a true over-release, never a false positive.
"""

from __future__ import annotations

import heapq
import math
from collections import deque
from dataclasses import dataclass
from typing import (Deque, Dict, Hashable, List, Mapping, Optional,
                    Sequence, Tuple)

#: Absolute slop on simulated timestamps (seconds) when comparing
#: oracle events against trace events.
TIME_SLOP = 1e-9


@dataclass
class GpsResult:
    """Per-packet GPS fluid schedule for one arrival sequence."""

    #: Fluid finish time per arrival, parallel to the input sequence.
    finish_times: List[float]
    #: Finish *tags* (virtual time units), parallel to the input.
    finish_tags: List[float]
    #: Wall-clock time the fluid system last went empty.
    busy_until: float


def gps_finish_times(
        arrivals: Sequence[Tuple[float, Hashable, int]],
        weights: Mapping[Hashable, float],
        rate_bps: float) -> GpsResult:
    """Integrate the GPS fluid system over an arrival sequence.

    Parameters
    ----------
    arrivals:
        ``(time, flow_id, size_bytes)`` tuples sorted by time
        (simultaneous arrivals keep sequence order).
    weights:
        Flow weight map; missing flows default to weight 1.0.
    rate_bps:
        Link rate in bits per second.

    Returns
    -------
    GpsResult
        Fluid finish times parallel to ``arrivals``.
    """
    if rate_bps <= 0:
        raise ValueError("rate_bps must be positive")
    count = len(arrivals)
    finish: List[Optional[float]] = [None] * count
    tags: List[float] = [0.0] * count
    for index in range(1, count):
        if arrivals[index][0] < arrivals[index - 1][0] - TIME_SLOP:
            raise ValueError("arrivals must be sorted by time")

    last_tag: Dict[Hashable, float] = {}
    queues: Dict[Hashable, Deque[Tuple[float, int]]] = {}
    heap: List[Tuple[float, int, Hashable]] = []  # (head tag, seq, flow)
    backlogged: set = set()
    heap_seq = 0

    def weight_of(flow: Hashable) -> float:
        weight = weights.get(flow, 1.0)
        if weight <= 0:
            raise ValueError(f"flow {flow!r} has non-positive weight")
        return weight

    def total_weight() -> float:
        # Recomputed exactly on every change: flow counts are small and
        # incremental +=/-= would accumulate float drift into V.
        return math.fsum(weight_of(flow) for flow in backlogged)

    def push_head(flow: Hashable) -> None:
        nonlocal heap_seq
        heapq.heappush(heap, (queues[flow][0][0], heap_seq, flow))
        heap_seq += 1

    index = 0
    t = arrivals[0][0] if count else 0.0
    virtual = 0.0
    weight_sum = 0.0

    def admit_until(now: float) -> None:
        nonlocal index, weight_sum
        while index < count and arrivals[index][0] <= now + TIME_SLOP:
            _, flow, size_bytes = arrivals[index]
            start = max(last_tag.get(flow, 0.0), virtual)
            tag = start + size_bytes * 8.0 / weight_of(flow)
            last_tag[flow] = tag
            tags[index] = tag
            queue = queues.setdefault(flow, deque())
            queue.append((tag, index))
            if flow not in backlogged:
                backlogged.add(flow)
                push_head(flow)
            index += 1
        weight_sum = total_weight()

    while index < count or backlogged:
        if not backlogged:
            # Idle: jump to the next arrival; V holds (every tag has
            # completed, so V >= all finish tags and new starts use V).
            t = arrivals[index][0]
            admit_until(t)
            continue
        # Drop stale heap entries (head already completed or changed).
        while heap:
            tag, _, flow = heap[0]
            queue = queues.get(flow)
            if (flow in backlogged and queue and queue[0][0] == tag):
                break
            heapq.heappop(heap)
        tag_min, _, flow_min = heap[0]
        finish_at = t + (tag_min - virtual) * weight_sum / rate_bps
        next_arrival = arrivals[index][0] if index < count else math.inf
        if next_arrival < finish_at - TIME_SLOP:
            # An arrival interrupts the current fluid segment.
            virtual += rate_bps * (next_arrival - t) / weight_sum
            t = next_arrival
            admit_until(t)
            continue
        # The head packet of flow_min completes before the next arrival.
        t = finish_at
        virtual = tag_min
        _, packet_index = queues[flow_min].popleft()
        finish[packet_index] = t
        if queues[flow_min]:
            push_head(flow_min)
        else:
            backlogged.discard(flow_min)
            weight_sum = total_weight()

    return GpsResult(finish_times=[f if f is not None else math.inf
                                   for f in finish],
                     finish_tags=tags, busy_until=t)


@dataclass
class TokenBucketViolation:
    """One departure that over-drew a reconstructed token bucket."""

    flow_id: Hashable
    time: float
    packet_id: Optional[int]
    deficit_bytes: float

    def __str__(self) -> str:
        return (f"flow {self.flow_id!r}: departure at t={self.time:.9f} "
                f"overdraws the token bucket by "
                f"{self.deficit_bytes:.1f} bytes")


def token_bucket_violations(
        departures: Sequence[Tuple[float, int, Optional[int]]],
        rate_bps: float,
        burst_bytes: float,
        start_time: Optional[float] = None,
        tolerance_bytes: float = 1e-3,
) -> List[TokenBucketViolation]:
    """Replay one flow's departures against an ``(r, b)`` bucket.

    Parameters
    ----------
    departures:
        ``(depart_start, size_bytes, packet_id)`` sorted by time.
    rate_bps:
        Token accrual rate in *bits* per second (matching
        ``FlowQueue.rate_bps``).
    burst_bytes:
        Bucket depth in bytes.
    start_time:
        Instant the bucket starts full; defaults to the first
        departure (the most conservative choice — the real bucket
        started accruing no later than its first charge).
    tolerance_bytes:
        Negative levels within this slack are attributed to float
        rounding, not over-release.
    """
    if rate_bps <= 0:
        raise ValueError("rate_bps must be positive")
    rate_bytes = rate_bps / 8.0
    violations: List[TokenBucketViolation] = []
    if not departures:
        return violations
    last_t = departures[0][0] if start_time is None else start_time
    tokens = burst_bytes
    for depart_start, size_bytes, packet_id in departures:
        if depart_start < last_t - TIME_SLOP:
            raise ValueError("departures must be sorted by time")
        elapsed = max(0.0, depart_start - last_t)
        tokens = min(burst_bytes, tokens + elapsed * rate_bytes)
        tokens -= size_bytes
        last_t = depart_start
        if tokens < -tolerance_bytes:
            violations.append(TokenBucketViolation(
                flow_id=None, time=depart_start, packet_id=packet_id,
                deficit_bytes=-tokens))
    return violations
