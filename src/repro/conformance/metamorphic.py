"""Metamorphic transforms: semantics-preserving scenario rewrites.

A conformance verdict should be invariant under symmetries of the
scheduling model: stretching time (and slowing every rate to match),
scaling packet sizes (and every rate with them), renaming flows, and
translating the whole arrival sequence.  Likewise substituting the
ordered-list backend or the simulator's event queue must not change a
single departed byte.  Each transform here rewrites a
:class:`~repro.conformance.scenarios.Scenario` as pure data; the
harness re-runs the checkers and compares verdicts checker-by-checker.

A verdict mismatch after a transform is itself a conformance failure:
either the algorithm breaks a symmetry it promised (e.g. a hidden
absolute-time constant) or a checker over-fits the base scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, Dict, List, Optional, Sequence

from repro.conformance.runner import (ConformanceReport, check_run,
                                      check_algorithm, run_scenario)
from repro.conformance.scenarios import Scenario


def scale_time(scenario: Scenario, factor: float = 2.0) -> Scenario:
    """Stretch time by ``factor``; divide every rate by it.  Byte
    quantities (sizes, bursts, weights) are untouched, so the fluid
    trajectories are the same curves on a rescaled clock."""
    flows = tuple(replace(flow, rate_bps=flow.rate_bps / factor)
                  for flow in scenario.flows)
    arrivals = tuple((time * factor, flow_id, size)
                     for time, flow_id, size in scenario.arrivals)
    slot_plan = scenario.slot_plan
    if slot_plan is not None:
        slot_plan = (slot_plan[0] * factor, slot_plan[1])
    return replace(scenario, name=f"{scenario.name}*t{factor:g}",
                   link_rate_bps=scenario.link_rate_bps / factor,
                   duration=scenario.duration * factor,
                   flows=flows, arrivals=arrivals, slot_plan=slot_plan)


def scale_size(scenario: Scenario, factor: int = 2) -> Scenario:
    """Scale packet sizes and every rate by ``factor``; times are
    untouched (serialization intervals are preserved exactly)."""
    flows = tuple(replace(flow, rate_bps=flow.rate_bps * factor,
                          burst_bytes=(None if flow.burst_bytes is None
                                       else flow.burst_bytes * factor))
                  for flow in scenario.flows)
    arrivals = tuple((time, flow_id, size * factor)
                     for time, flow_id, size in scenario.arrivals)
    return replace(scenario, name=f"{scenario.name}*s{factor:g}",
                   link_rate_bps=scenario.link_rate_bps * factor,
                   flows=flows, arrivals=arrivals)


def permute_flows(scenario: Scenario, rotation: int = 1) -> Scenario:
    """Rename flow ids by a cyclic rotation.  Every per-flow attribute
    (weight, rate, priority, slot) travels with its arrivals, so the
    run is isomorphic up to labels."""
    ids = [flow.flow_id for flow in scenario.flows]
    renamed = {old: ids[(index + rotation) % len(ids)]
               for index, old in enumerate(ids)}
    flows = tuple(replace(flow, flow_id=renamed[flow.flow_id])
                  for flow in scenario.flows)
    arrivals = tuple((time, renamed[flow_id], size)
                     for time, flow_id, size in scenario.arrivals)
    return replace(scenario, name=f"{scenario.name}*perm{rotation}",
                   flows=flows, arrivals=arrivals)


def translate_time(scenario: Scenario,
                   offset: float = 1.3e-3) -> Scenario:
    """Shift every arrival by ``offset``.  Slot-grid algorithms stay
    legal because the grid is absolute; everything else is
    translation-invariant by construction."""
    arrivals = tuple((time + offset, flow_id, size)
                     for time, flow_id, size in scenario.arrivals)
    return replace(scenario, name=f"{scenario.name}+dt",
                   duration=scenario.duration + offset,
                   arrivals=arrivals)


TRANSFORMS: Dict[str, Callable[[Scenario], Scenario]] = {
    "time-scale": scale_time,
    "size-scale": scale_size,
    "flow-permutation": permute_flows,
    "time-translation": translate_time,
}


def apply_transform(name: str, scenario: Scenario) -> Scenario:
    return TRANSFORMS[name](scenario)


@dataclass
class MetamorphicResult:
    """Verdict comparison for one algorithm across all transforms."""

    algorithm: str
    base: ConformanceReport
    transformed: Dict[str, ConformanceReport] = \
        field(default_factory=dict)
    mismatches: List[str] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return not self.mismatches


def metamorphic_verdicts(
        algorithm_name: str,
        scenario: Scenario,
        transforms: Optional[Sequence[str]] = None,
        substitutions: Optional[Sequence[Dict[str, str]]] = None,
) -> MetamorphicResult:
    """Run the base scenario, every transform, and every
    backend/event-queue substitution; collect verdict mismatches.

    ``substitutions`` are ``run_scenario`` keyword dicts (e.g.
    ``{"backend": "fast"}``, ``{"event_queue": "calendar"}``); besides
    preserved verdicts these demand *byte-identical* departures, since
    backends and event queues promise exact semantics, not just
    bound-level equivalence.
    """
    base_run = run_scenario(scenario, algorithm_name)
    base_report = ConformanceReport(algorithm=algorithm_name,
                                    scenario=scenario.name,
                                    outcomes=check_run(base_run))
    result = MetamorphicResult(algorithm=algorithm_name,
                               base=base_report)
    base_verdicts = base_report.verdicts()

    for name in (transforms if transforms is not None
                 else sorted(TRANSFORMS)):
        report = check_algorithm(algorithm_name,
                                 scenario=apply_transform(name,
                                                          scenario))
        result.transformed[name] = report
        if report.verdicts() != base_verdicts:
            changed = {
                checker: (base_verdicts[checker], held)
                for checker, held in report.verdicts().items()
                if held != base_verdicts.get(checker)}
            result.mismatches.append(
                f"{name}: verdicts changed {changed}")

    base_departures = (base_run.recorder.departures
                       if base_run.recorder is not None else None)
    for kwargs in (substitutions or ()):
        label = ",".join(f"{key}={value}"
                         for key, value in sorted(kwargs.items()))
        run = run_scenario(scenario, algorithm_name, **kwargs)
        report = ConformanceReport(algorithm=algorithm_name,
                                   scenario=f"{scenario.name}[{label}]",
                                   outcomes=check_run(run))
        result.transformed[label] = report
        if report.verdicts() != base_verdicts:
            result.mismatches.append(f"{label}: verdicts changed")
        if (base_departures is not None and run.recorder is not None
                and run.recorder.departures != base_departures):
            result.mismatches.append(
                f"{label}: departures not byte-identical")
    return result
