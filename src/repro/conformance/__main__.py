"""CLI: executable conformance checks for the algorithm catalogue.

Usage::

    python -m repro.conformance check --algorithm wf2q+
    python -m repro.conformance check --algorithm drr --seed 3 \\
        --backend fast --event-queue calendar
    python -m repro.conformance check --trace fig11.jsonl
    python -m repro.conformance check --algorithm drr --inject reorder
    python -m repro.conformance sweep
    python -m repro.conformance sweep --metamorphic
    python -m repro.conformance report

``check`` runs one algorithm's scenario (or audits an existing trace
stream) and exits non-zero on any unwaived violation.  ``--inject``
deliberately corrupts the trace first — the harness must then fail,
which CI uses to prove the checkers can fire.  ``sweep`` checks the
whole registry (optionally with the metamorphic transform battery);
``report`` prints each algorithm's promised bounds and documented
waivers without running anything.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.conformance.metamorphic import (TRANSFORMS,
                                           metamorphic_verdicts)
from repro.conformance.runner import (INJECTIONS, ConformanceReport,
                                      check_algorithm, check_trace,
                                      sweep_registry)
from repro.conformance.scenarios import SCENARIOS, make_scenario
from repro.sched.registry import available_algorithms, get_algorithm


def _print_report(report: ConformanceReport, verbose: bool) -> None:
    status = "PASS" if report.passed else "FAIL"
    print(f"{status} {report.algorithm} [{report.scenario}]")
    for outcome in report.outcomes:
        if outcome.violations and outcome.waived:
            flag = "waived"
        elif outcome.violations:
            flag = "FAIL"
        else:
            flag = "ok"
        line = f"  {outcome.checker:<24} {flag}"
        if outcome.violations:
            line += f" ({len(outcome.violations)} violation(s))"
        print(line)
        shown = outcome.violations if verbose \
            else outcome.violations[:3]
        for violation in shown:
            print(f"    - {violation}")
        hidden = len(outcome.violations) - len(shown)
        if hidden > 0:
            print(f"    ... {hidden} more")
        if outcome.violations and outcome.waived:
            print(f"    waiver: {outcome.waived}")


def _cmd_check(args) -> int:
    if args.trace:
        reports = check_trace(args.trace)
        if not reports:
            print(f"no runs found in {args.trace}")
            return 1
        for report in reports:
            _print_report(report, args.verbose)
        return 0 if all(report.passed for report in reports) else 1
    scenario = None
    if args.scenario:
        scenario = make_scenario(args.scenario, seed=args.seed)
    report = check_algorithm(args.algorithm, scenario=scenario,
                             seed=args.seed, backend=args.backend,
                             event_queue=args.event_queue,
                             inject=args.inject)
    _print_report(report, args.verbose)
    return 0 if report.passed else 1


def _cmd_sweep(args) -> int:
    names = args.algorithm or available_algorithms()
    failed: List[str] = []
    for name in names:
        if args.metamorphic:
            spec = get_algorithm(name).spec
            scenario = make_scenario(spec.scenario, seed=args.seed)
            result = metamorphic_verdicts(
                name, scenario,
                substitutions=[{"backend": "fast"},
                               {"event_queue": "calendar"}])
            _print_report(result.base, args.verbose)
            for label in sorted(result.transformed):
                held = result.transformed[label].verdicts()
                agreed = held == result.base.verdicts()
                print(f"  metamorphic {label:<24} "
                      f"{'ok' if agreed else 'MISMATCH'}")
            for mismatch in result.mismatches:
                print(f"    ! {mismatch}")
            if not result.base.passed or not result.passed:
                failed.append(name)
        else:
            report = check_algorithm(name, seed=args.seed,
                                     backend=args.backend,
                                     event_queue=args.event_queue)
            _print_report(report, args.verbose)
            if not report.passed:
                failed.append(name)
    print()
    if failed:
        print(f"FAILED: {', '.join(failed)}")
        return 1
    print(f"all {len(names)} algorithm(s) conform")
    return 0


def _cmd_report(args) -> int:
    from repro.experiments.runner import Table
    table = Table(
        title="Promised bounds per registered algorithm",
        headers=["algorithm", "scenario", "checkers", "waived"])
    for name in available_algorithms():
        spec = get_algorithm(name).spec
        table.add_row(name, spec.scenario,
                      ", ".join(spec.checkers()),
                      ", ".join(sorted(spec.waivers)) or "-")
    print(table.to_text())
    waivers = [(name, checker, text)
               for name in available_algorithms()
               for checker, text in
               sorted(get_algorithm(name).spec.waivers.items())]
    if waivers:
        print("\nDocumented waivers:")
        for name, checker, text in waivers:
            print(f"  {name} / {checker}:\n    {text}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description="executable scheduling-spec conformance checks")
    commands = parser.add_subparsers(dest="command", required=True)

    check = commands.add_parser(
        "check", help="check one algorithm or an existing trace")
    target = check.add_mutually_exclusive_group(required=True)
    target.add_argument("--algorithm",
                        choices=available_algorithms(),
                        help="registered algorithm to scenario-check")
    target.add_argument("--trace",
                        help="JSONL trace stream to audit instead")
    check.add_argument("--scenario", choices=sorted(SCENARIOS),
                       help="override the spec's default scenario")
    check.add_argument("--seed", type=int, default=0)
    check.add_argument("--backend", default=None,
                       help="ordered-list backend override")
    check.add_argument("--event-queue", default="reference",
                       help="simulator event-queue backend")
    check.add_argument("--inject", choices=INJECTIONS,
                       help="corrupt the trace first (harness "
                            "self-test: the check must then fail)")
    check.add_argument("--verbose", action="store_true",
                       help="print every violation")
    check.set_defaults(func=_cmd_check)

    sweep = commands.add_parser(
        "sweep", help="check every registered algorithm")
    sweep.add_argument("--algorithm", action="append",
                       choices=available_algorithms(),
                       help="restrict to specific algorithm(s)")
    sweep.add_argument("--seed", type=int, default=0)
    sweep.add_argument("--backend", default=None)
    sweep.add_argument("--event-queue", default="reference")
    sweep.add_argument("--metamorphic", action="store_true",
                       help=f"also run the transform battery "
                            f"({', '.join(sorted(TRANSFORMS))}) plus "
                            "backend/event-queue substitution")
    sweep.add_argument("--verbose", action="store_true")
    sweep.set_defaults(func=_cmd_sweep)

    report = commands.add_parser(
        "report", help="print promised bounds and waivers")
    report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
