"""Executable scheduling-spec conformance for the Section 4 catalogue.

The repo's differential suites prove backends agree with *each other*;
this package proves the algorithms agree with the *scheduling theory*
they implement.  Three layers:

* :mod:`repro.conformance.oracle` — fluid reference models: an
  event-driven GPS (Generalized Processor Sharing) integrator
  producing per-packet ideal finish times, and a conservative
  token-bucket level reconstruction.
* :mod:`repro.conformance.checkers` — invariant checkers (work
  conservation, per-flow FIFO, GPS-relative delay bounds, fairness
  envelopes, token-bucket conformance, priority-inversion detection,
  idle legality, TDMA slot legality) consuming a Tracer event stream
  and returning structured :class:`~repro.conformance.checkers.Violation`
  records.
* :mod:`repro.conformance.metamorphic` — semantics-preserving scenario
  transforms (rate/size scaling, flow permutation, time translation,
  backend/event-queue substitution) asserting verdicts are preserved.

``python -m repro.conformance`` exposes ``check | sweep | report``;
the applicable checker set per algorithm comes from the
:class:`~repro.sched.spec.AlgorithmSpec` attached to each registry
entry.
"""

from repro.conformance.checkers import (CHECKERS, ConformanceRun,
                                        Violation, run_checker)
from repro.conformance.metamorphic import (TRANSFORMS, apply_transform,
                                           metamorphic_verdicts)
from repro.conformance.oracle import (GpsResult, gps_finish_times,
                                      token_bucket_violations)
from repro.conformance.runner import (CheckOutcome, ConformanceReport,
                                      check_algorithm, check_trace,
                                      run_scenario, sweep_registry)
from repro.conformance.scenarios import (SCENARIOS, FlowSpec, Scenario,
                                         make_scenario)

__all__ = [
    "CHECKERS",
    "CheckOutcome",
    "ConformanceReport",
    "ConformanceRun",
    "FlowSpec",
    "GpsResult",
    "SCENARIOS",
    "Scenario",
    "TRANSFORMS",
    "Violation",
    "apply_transform",
    "check_algorithm",
    "check_trace",
    "gps_finish_times",
    "make_scenario",
    "metamorphic_verdicts",
    "run_checker",
    "run_scenario",
    "sweep_registry",
    "token_bucket_violations",
]
