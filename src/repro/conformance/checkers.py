"""Invariant checkers: one function per promised scheduling bound.

Every checker consumes a :class:`ConformanceRun` — a
:class:`~repro.obs.analyze.TraceAnalysis` over one traced run plus the
:class:`~repro.sched.spec.AlgorithmSpec` and (when the run came from a
conformance scenario) the scenario's flow parameters — and returns a
list of structured :class:`Violation` records.  An empty list means the
invariant held.

The checkers deliberately reuse the analyzer's timeline reconstruction
(episodes, packet timelines, audits) instead of re-parsing events: one
reconstruction, many judgments.

Checker registry (``CHECKERS``):

``conservation`` / ``per-flow-fifo`` / ``link-overlap``
    Universal trace-integrity invariants, delegated to the analyzer's
    audits.
``work-conservation`` / ``idle-legality``
    The link never idles while an *eligible* element is resident.  For
    work-conserving algorithms every resident element is eligible, so
    the same interval computation serves both names.
``no-early-release``
    Wall-clock ``send_time`` gating is never violated: no element is
    dequeued before its send time.
``gps-delay-bound``
    Every delivered packet finishes within
    ``slack * L_max/R`` of its GPS fluid finish time.
``fairness-envelope``
    Normalized service of continuously backlogged flows (or SFQ
    buckets) stays within an envelope of the fair share.
``priority-inversion``
    No departure of a lower-priority flow starts while a
    higher-priority flow holds an eligible resident element.
``token-bucket-conformance``
    Per-flow departures never overdraw the reconstructed bucket.
``tdma-slots``
    Grants align to the slot grid, in the flow's own slot, at most one
    per frame.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import (Any, Callable, Dict, Hashable, List, Optional,
                    Tuple)

from repro.obs.analyze import TraceAnalysis
from repro.sched.base import SchedulingAlgorithm, TimeBase
from repro.sched.spec import AlgorithmSpec
from repro.sched.tdma import TimeSlotted
from repro.conformance.oracle import (gps_finish_times,
                                      token_bucket_violations)
from repro.conformance.scenarios import Scenario

#: Absolute slop (seconds) below which an idle gap / early release is
#: attributed to float rounding rather than a scheduling bug.
TIME_TOLERANCE = 1e-9


@dataclass
class Violation:
    """One structured invariant violation."""

    checker: str
    message: str
    flow_id: Optional[Hashable] = None
    time: Optional[float] = None
    details: Dict[str, Any] = field(default_factory=dict)

    def __str__(self) -> str:
        where = f" flow={self.flow_id!r}" if self.flow_id is not None \
            else ""
        when = f" t={self.time:.9f}" if self.time is not None else ""
        return f"[{self.checker}]{where}{when}: {self.message}"


@dataclass
class ConformanceRun:
    """Everything a checker may consult about one traced run."""

    analysis: TraceAnalysis
    spec: AlgorithmSpec
    algorithm_name: Optional[str] = None
    algorithm: Optional[SchedulingAlgorithm] = None
    scenario: Optional[Scenario] = None
    link_rate_bps: Optional[float] = None
    #: The engine's Recorder (byte-identity comparisons across
    #: backend/event-queue substitutions); absent for trace-only runs.
    recorder: Optional[Any] = None

    # ------------------------------------------------------------------
    # Shared derived views
    # ------------------------------------------------------------------
    @property
    def wall_eligibility(self) -> bool:
        """Whether episode ``send_time`` values are wall-clock times
        (comparable with trace timestamps).  Virtual-base algorithms
        (WF2Q+) store virtual starts there."""
        if self.algorithm is not None:
            return self.algorithm.time_base is TimeBase.WALL
        return not self.spec.work_conserving or self.spec.shaped

    def horizon(self) -> float:
        """Last instant the trace can testify about."""
        t_max = self.analysis.t_max or 0.0
        busy = self.busy_intervals()
        return max(t_max, busy[-1][1]) if busy else t_max

    def busy_intervals(self) -> List[Tuple[float, float]]:
        """Merged link-busy intervals from departure windows."""
        windows = sorted(
            (timeline.depart_start, timeline.depart_end)
            for timeline in self.analysis.timelines
            if timeline.delivered and timeline.depart_start is not None)
        merged: List[Tuple[float, float]] = []
        for start, end in windows:
            if merged and start <= merged[-1][1] + TIME_TOLERANCE:
                merged[-1] = (merged[-1][0], max(merged[-1][1], end))
            else:
                merged.append((start, end))
        return merged

    def eligible_from(self, enqueue_t: float,
                      send_time: Optional[float]) -> float:
        """The wall instant an episode's element became eligible."""
        if self.wall_eligibility and isinstance(send_time, (int, float)):
            return max(enqueue_t, send_time)
        return enqueue_t

    def flow_priorities(self) -> Dict[Hashable, int]:
        if self.scenario is None:
            return {}
        return {flow.flow_id: flow.priority
                for flow in self.scenario.flows}

    def max_packet_bytes(self) -> int:
        sizes = [timeline.size_bytes
                 for timeline in self.analysis.timelines
                 if timeline.size_bytes]
        return max(sizes) if sizes else 0


def _subtract(window: Tuple[float, float],
              intervals: List[Tuple[float, float]],
              ) -> List[Tuple[float, float]]:
    """``window`` minus a sorted, merged interval list."""
    lo, hi = window
    gaps: List[Tuple[float, float]] = []
    cursor = lo
    for start, end in intervals:
        if end <= cursor:
            continue
        if start >= hi:
            break
        if start > cursor:
            gaps.append((cursor, min(start, hi)))
        cursor = max(cursor, end)
        if cursor >= hi:
            break
    if cursor < hi:
        gaps.append((cursor, hi))
    return gaps


def _merge(intervals: List[Tuple[float, float]],
           ) -> List[Tuple[float, float]]:
    merged: List[Tuple[float, float]] = []
    for start, end in sorted(intervals):
        if merged and start <= merged[-1][1] + TIME_TOLERANCE:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return merged


# ----------------------------------------------------------------------
# Universal trace-integrity checkers (delegating to analyzer audits)
# ----------------------------------------------------------------------
def check_conservation(run: ConformanceRun) -> List[Violation]:
    issues = list(run.analysis.issues)
    issues += run.analysis._audit_conservation()
    return [Violation("conservation", issue.message)
            for issue in issues if issue.severity == "error"]


def check_per_flow_fifo(run: ConformanceRun) -> List[Violation]:
    return [Violation("per-flow-fifo", issue.message)
            for issue in run.analysis._audit_flow_ordering()
            if issue.severity == "error"]


def check_link_overlap(run: ConformanceRun) -> List[Violation]:
    return [Violation("link-overlap", issue.message)
            for issue in run.analysis._audit_link_overlap()
            if issue.severity == "error"]


# ----------------------------------------------------------------------
# Work conservation / idle legality
# ----------------------------------------------------------------------
def check_idle_while_eligible(run: ConformanceRun) -> List[Violation]:
    """The link must never idle while an eligible element is resident.

    For work-conserving algorithms every resident element is eligible
    (``send_time`` is the always-true predicate), so this is exactly
    work conservation; for shapers/TDMA the eligibility start is the
    element's wall-clock ``send_time``, making legal idling (everyone
    ineligible) pass and illegal idling (an eligible packet waiting on
    an idle link) fail.
    """
    checker = ("work-conservation" if run.spec.work_conserving
               else "idle-legality")
    horizon = run.horizon()
    eligible: List[Tuple[float, float]] = []
    episodes = list(run.analysis.episodes)
    episodes += list(run.analysis.open_episodes.values())
    for episode in episodes:
        start = run.eligible_from(episode.enqueue_t, episode.send_time)
        end = (episode.dequeue_t if episode.dequeue_t is not None
               else horizon)
        if end > start:
            eligible.append((min(start, horizon), min(end, horizon)))
    busy = run.busy_intervals()
    violations: List[Violation] = []
    for window in _merge(eligible):
        for gap_start, gap_end in _subtract(window, busy):
            if gap_end - gap_start > TIME_TOLERANCE:
                violations.append(Violation(
                    checker,
                    f"link idle for {gap_end - gap_start:.3e}s "
                    f"starting at t={gap_start:.9f} while an eligible "
                    "element was resident",
                    time=gap_start,
                    details={"idle_seconds": gap_end - gap_start}))
    return violations


# ----------------------------------------------------------------------
# Shaping: no early release
# ----------------------------------------------------------------------
def check_no_early_release(run: ConformanceRun) -> List[Violation]:
    if not run.wall_eligibility:
        return []
    violations: List[Violation] = []
    for episode in run.analysis.episodes:
        send_time = episode.send_time
        if not isinstance(send_time, (int, float)):
            continue
        if episode.dequeue_t < send_time - TIME_TOLERANCE:
            violations.append(Violation(
                "no-early-release",
                f"dequeued {send_time - episode.dequeue_t:.3e}s before "
                f"send_time={send_time:.9f}",
                flow_id=episode.flow_id, time=episode.dequeue_t,
                details={"send_time": send_time,
                         "dequeue_t": episode.dequeue_t}))
    return violations


# ----------------------------------------------------------------------
# GPS-relative delay bound (WFQ family)
# ----------------------------------------------------------------------
def check_gps_delay_bound(run: ConformanceRun) -> List[Violation]:
    if (run.spec.gps_delay_slack is None or run.scenario is None
            or run.link_rate_bps is None):
        return []
    weights = {flow.flow_id: flow.weight
               for flow in run.scenario.flows}
    ordered = [timeline for timeline in run.analysis.timelines
               if timeline.arrival_t is not None]
    ordered.sort(key=lambda timeline: timeline.arrival_t)
    arrivals = [(timeline.arrival_t, timeline.flow_id,
                 timeline.size_bytes) for timeline in ordered]
    if not arrivals:
        return []
    gps = gps_finish_times(arrivals, weights, run.link_rate_bps)
    l_max = run.max_packet_bytes()
    unit = l_max * 8.0 / run.link_rate_bps  # one L_max at line rate
    slack = run.spec.gps_delay_slack * unit
    violations: List[Violation] = []
    for timeline, ideal in zip(ordered, gps.finish_times):
        if not timeline.delivered:
            continue
        excess = timeline.depart_end - ideal - slack
        if excess > TIME_TOLERANCE:
            violations.append(Violation(
                "gps-delay-bound",
                f"packet {timeline.packet_id} finished "
                f"{timeline.depart_end - ideal:.3e}s after its GPS "
                f"fluid finish (allowed "
                f"{run.spec.gps_delay_slack:g} * L_max/R = "
                f"{slack:.3e}s)",
                flow_id=timeline.flow_id, time=timeline.depart_end,
                details={"gps_finish": ideal,
                         "excess_seconds": excess,
                         "excess_lmax": ((timeline.depart_end - ideal)
                                         / unit if unit else math.inf)}))
    return violations


# ----------------------------------------------------------------------
# Fairness envelope (DRR / WFQ family / SFQ buckets)
# ----------------------------------------------------------------------
def _backlogged_intervals(arrivals: List[float],
                          departures: List[float],
                          end_of_trace: float,
                          ) -> List[Tuple[float, float]]:
    return TraceAnalysis._backlogged_intervals(
        arrivals, departures, end_of_trace)


def _intersect_two(first: List[Tuple[float, float]],
                   second: List[Tuple[float, float]],
                   ) -> List[Tuple[float, float]]:
    result = []
    i = j = 0
    while i < len(first) and j < len(second):
        lo = max(first[i][0], second[j][0])
        hi = min(first[i][1], second[j][1])
        if hi > lo:
            result.append((lo, hi))
        if first[i][1] < second[j][1]:
            i += 1
        else:
            j += 1
    return result


def check_fairness_envelope(run: ConformanceRun) -> List[Violation]:
    if (run.spec.fairness_envelope_mtu is None or run.scenario is None):
        return []
    # Group flows: per-flow (weighted) by default; per hash bucket for
    # SFQ, whose promise is equal service per *bucket*, not per flow.
    bucket_of = getattr(run.algorithm, "bucket_of", None)
    group_of: Dict[Hashable, Hashable] = {}
    group_weight: Dict[Hashable, float] = {}
    for flow in run.scenario.flows:
        group = (bucket_of(flow.flow_id) if bucket_of is not None
                 else flow.flow_id)
        group_of[flow.flow_id] = group
        group_weight[group] = (1.0 if bucket_of is not None
                               else flow.weight)
    arrivals: Dict[Hashable, List[float]] = {g: [] for g in group_weight}
    departures: Dict[Hashable, List[float]] = \
        {g: [] for g in group_weight}
    served: List[Tuple[float, Hashable, int]] = []
    for timeline in run.analysis.timelines:
        group = group_of.get(timeline.flow_id)
        if group is None:
            continue
        if timeline.arrival_t is not None:
            arrivals[group].append(timeline.arrival_t)
        if timeline.delivered:
            departures[group].append(timeline.depart_start)
            served.append((timeline.depart_start, group,
                           timeline.size_bytes))
    horizon = run.horizon()
    common: Optional[List[Tuple[float, float]]] = None
    for group in group_weight:
        intervals = _backlogged_intervals(
            sorted(arrivals[group]), sorted(departures[group]), horizon)
        common = (intervals if common is None
                  else _intersect_two(common, intervals))
        if not common:
            return []  # never jointly backlogged -> not applicable
    window = max(common, key=lambda pair: pair[1] - pair[0])
    l_max = run.max_packet_bytes()
    if run.link_rate_bps:
        min_span = 20 * l_max * 8.0 / run.link_rate_bps
        if window[1] - window[0] < min_span:
            return []  # window too short to judge fairness
    start, end = window
    by_packets = run.spec.fairness_unit == "packets"
    normalized: Dict[Hashable, float] = {g: 0.0 for g in group_weight}
    for depart_start, group, size_bytes in served:
        if start <= depart_start < end:
            quantum = 1 if by_packets else size_bytes
            normalized[group] += quantum / group_weight[group]
    spread = max(normalized.values()) - min(normalized.values())
    min_weight = min(group_weight.values())
    # Envelope units follow the fairness unit: max-size packets for
    # byte-level promises, packet count for per-visit round robin.
    per_unit = 1 if by_packets else l_max
    envelope = run.spec.fairness_envelope_mtu * per_unit / min_weight
    if spread > envelope:
        laggard = min(normalized, key=normalized.get)
        leader = max(normalized, key=normalized.get)
        unit = "packets" if by_packets else "bytes"
        return [Violation(
            "fairness-envelope",
            f"normalized service spread {spread:.0f} {unit} between "
            f"{leader!r} and {laggard!r} over jointly-backlogged "
            f"window [{start:.6f}, {end:.6f}] exceeds envelope "
            f"{envelope:.0f} {unit}",
            time=start,
            details={"spread_bytes": spread,
                     "envelope_bytes": envelope,
                     "window": (start, end),
                     "normalized": dict(normalized)})]
    return []


# ----------------------------------------------------------------------
# Strict-priority inversion
# ----------------------------------------------------------------------
def check_priority_inversion(run: ConformanceRun) -> List[Violation]:
    priorities = run.flow_priorities()
    if not priorities:
        return []
    horizon = run.horizon()
    # Eligible-resident intervals per flow.
    resident: Dict[Hashable, List[Tuple[float, float]]] = {}
    episodes = list(run.analysis.episodes)
    episodes += list(run.analysis.open_episodes.values())
    for episode in episodes:
        start = run.eligible_from(episode.enqueue_t, episode.send_time)
        end = (episode.dequeue_t if episode.dequeue_t is not None
               else horizon)
        if end > start:
            resident.setdefault(episode.flow_id, []).append((start, end))
    for intervals in resident.values():
        intervals.sort()
    violations: List[Violation] = []
    for timeline in run.analysis.timelines:
        if not timeline.delivered:
            continue
        decision_t = timeline.depart_start
        own = priorities.get(timeline.flow_id)
        if own is None:
            continue
        for other, priority in priorities.items():
            if priority >= own or other == timeline.flow_id:
                continue
            for start, end in resident.get(other, ()):
                if (start < decision_t - TIME_TOLERANCE
                        and end > decision_t + TIME_TOLERANCE):
                    violations.append(Violation(
                        "priority-inversion",
                        f"flow {timeline.flow_id!r} (priority {own}) "
                        f"started service while flow {other!r} "
                        f"(priority {priority}) had an eligible "
                        "element resident",
                        flow_id=timeline.flow_id, time=decision_t,
                        details={"inverted_with": other}))
                    break
                if start > decision_t:
                    break
    return violations


# ----------------------------------------------------------------------
# Token-bucket conformance
# ----------------------------------------------------------------------
def check_token_bucket(run: ConformanceRun) -> List[Violation]:
    """Per-flow ``(rate, burst)`` conformance of the *release* process.

    The shaper's promise is about when it **releases** packets (the
    element's ``send_time``), not when the shared link got around to
    serializing them: multiplexing delays packets behind other flows
    and then burst-compresses their spacing, so a conformant release
    schedule can legitimately exceed the envelope on the wire.  The
    checker therefore debits the reconstructed bucket at each packet's
    release instant; the complementary ``no-early-release`` checker
    pins the wire to never *precede* a release, so together they bound
    the output process.
    """
    if run.scenario is None:
        return []
    default_burst = getattr(run.algorithm, "default_burst_bytes",
                            None) or 3000.0
    # Release instant per delivered packet: the send_time of the
    # episode whose dequeue produced the departure (OUTPUT trigger:
    # dequeue_t == depart_start).  Fall back to depart_start for
    # packets without a matched episode (e.g. trace-audit mode).
    release_at: Dict[Tuple[Hashable, float], float] = {}
    for episode in run.analysis.episodes:
        if episode.dequeue_t is not None and episode.send_time is not None:
            release_at[(episode.flow_id, episode.dequeue_t)] = \
                episode.send_time
    violations: List[Violation] = []
    for flow in run.scenario.flows:
        if flow.rate_bps <= 0:
            continue
        burst = (flow.burst_bytes if flow.burst_bytes is not None
                 else default_burst)
        releases = []
        for timeline in run.analysis.timelines:
            if timeline.flow_id != flow.flow_id or not timeline.delivered:
                continue
            release = release_at.get(
                (flow.flow_id, timeline.depart_start),
                timeline.depart_start)
            release = min(release, timeline.depart_start)
            if timeline.arrival_t is not None:
                release = max(release, timeline.arrival_t)
            releases.append((release, timeline.size_bytes,
                             timeline.packet_id))
        releases.sort()
        first_arrival = min(
            (timeline.arrival_t for timeline in run.analysis.timelines
             if timeline.flow_id == flow.flow_id
             and timeline.arrival_t is not None), default=None)
        for finding in token_bucket_violations(
                releases, flow.rate_bps, burst,
                start_time=first_arrival):
            violations.append(Violation(
                "token-bucket-conformance",
                f"release overdraws the ({flow.rate_bps:.0f} bps, "
                f"{burst:.0f} B) bucket by "
                f"{finding.deficit_bytes:.1f} bytes",
                flow_id=flow.flow_id, time=finding.time,
                details={"deficit_bytes": finding.deficit_bytes,
                         "packet_id": finding.packet_id}))
    return violations


# ----------------------------------------------------------------------
# TDMA slot legality
# ----------------------------------------------------------------------
def check_tdma_slots(run: ConformanceRun) -> List[Violation]:
    algorithm = run.algorithm
    if not isinstance(algorithm, TimeSlotted):
        return []
    slot = algorithm.slot_seconds
    frame = algorithm.frame_seconds
    slots_of: Dict[Hashable, int] = {}
    if run.scenario is not None:
        slots_of = {flow.flow_id: flow.group
                    for flow in run.scenario.flows}
    violations: List[Violation] = []
    grants: Dict[Hashable, List[float]] = {}
    for episode in run.analysis.episodes:
        send_time = episode.send_time
        if not isinstance(send_time, (int, float)):
            continue
        grants.setdefault(episode.flow_id, []).append(send_time)
        boundaries = send_time / slot
        deviation = abs(boundaries - round(boundaries)) * slot
        if deviation > TIME_TOLERANCE:
            violations.append(Violation(
                "tdma-slots",
                f"grant at t={send_time:.9f} is {deviation:.3e}s off "
                "the slot grid",
                flow_id=episode.flow_id, time=send_time))
            continue
        expected = slots_of.get(episode.flow_id)
        if expected is not None:
            index = round(send_time / slot) % algorithm.frame_slots
            if index != expected:
                violations.append(Violation(
                    "tdma-slots",
                    f"grant at t={send_time:.9f} lands in slot "
                    f"{index}, but the flow owns slot {expected}",
                    flow_id=episode.flow_id, time=send_time))
    for flow_id, times in grants.items():
        times.sort()
        for before, after in zip(times, times[1:]):
            if after - before < frame - TIME_TOLERANCE:
                violations.append(Violation(
                    "tdma-slots",
                    f"grants at t={before:.9f} and t={after:.9f} are "
                    f"{after - before:.6f}s apart (< one "
                    f"{frame:.6f}s frame)",
                    flow_id=flow_id, time=after))
    return violations


CHECKERS: Dict[str, Callable[[ConformanceRun], List[Violation]]] = {
    "conservation": check_conservation,
    "per-flow-fifo": check_per_flow_fifo,
    "link-overlap": check_link_overlap,
    "work-conservation": check_idle_while_eligible,
    "idle-legality": check_idle_while_eligible,
    "no-early-release": check_no_early_release,
    "gps-delay-bound": check_gps_delay_bound,
    "fairness-envelope": check_fairness_envelope,
    "priority-inversion": check_priority_inversion,
    "token-bucket-conformance": check_token_bucket,
    "tdma-slots": check_tdma_slots,
}


def run_checker(name: str, run: ConformanceRun) -> List[Violation]:
    """Run one named checker against a run."""
    return CHECKERS[name](run)
