"""Deterministic conformance scenarios: pure-data workloads.

A :class:`Scenario` is a fully materialized workload — flow parameters
plus a precomputed ``(time, flow_id, size_bytes)`` arrival list — so
the metamorphic transforms in :mod:`repro.conformance.metamorphic` can
rewrite it as plain data (scale times, permute flow ids) with no
generator state to re-seed.  Arrival sequences are produced once from
a seeded :class:`random.Random`, mirroring the distributions of
:mod:`repro.sim.generators` without coupling the transforms to
generator objects.

Builders (registered in ``SCENARIOS``):

``backlogged``
    Mixed-size CBR overload (2x link rate) across 6 weighted flows for
    the fairness/GPS checks, with an arrival cutoff at 60% of the run
    so the drain exercises work conservation on the way down.
``poisson``
    Moderate-load (0.7) Poisson mix: idle gaps make the
    work-conservation checker bite for the rank-by-state algorithms.
``priority``
    Four flows at distinct priorities under 0.9 load for the
    inversion detector.
``shaped``
    Per-flow token rates at an aggregate half the link with bursty
    arrivals: legal idling plus real shaping delays (token bucket /
    RCSP).
``slotted``
    One flow per TDMA slot, about one packet per frame.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import (Callable, Dict, Hashable, List, Optional, Tuple)

#: Slot plan matching the registry's TDMA default (100us slots, 8-slot
#: frame); carried on the scenario so metamorphic time scaling can
#: rescale the algorithm consistently with the workload.
DEFAULT_SLOT_PLAN: Tuple[float, int] = (100e-6, 8)


@dataclass(frozen=True)
class FlowSpec:
    """Static parameters of one scenario flow (mirrors
    :class:`repro.sim.flow.FlowQueue` construction arguments)."""

    flow_id: str
    weight: float = 1.0
    rate_bps: float = 0.0
    priority: int = 0
    group: int = 0
    burst_bytes: Optional[float] = None


@dataclass(frozen=True)
class Scenario:
    """One fully materialized conformance workload."""

    name: str
    link_rate_bps: float
    duration: float
    flows: Tuple[FlowSpec, ...]
    #: ``(time, flow_id, size_bytes)`` sorted by time.
    arrivals: Tuple[Tuple[float, str, int], ...]
    #: ``(slot_seconds, frame_slots)`` for slotted runs, else None.
    slot_plan: Optional[Tuple[float, int]] = None
    description: str = ""

    def weights(self) -> Dict[Hashable, float]:
        return {flow.flow_id: flow.weight for flow in self.flows}

    def max_size_bytes(self) -> int:
        return max((size for _, _, size in self.arrivals), default=0)

    def with_arrivals(self, arrivals) -> "Scenario":
        return replace(self, arrivals=tuple(arrivals))


_SIZES = (500, 1000, 1500)


def _finish(name: str, link_rate_bps: float, duration: float,
            flows: List[FlowSpec],
            per_flow: Dict[str, List[Tuple[float, int]]],
            slot_plan: Optional[Tuple[float, int]] = None,
            description: str = "") -> Scenario:
    """Merge per-flow ``(time, size)`` lists into one sorted arrival
    sequence (ties broken by flow order, deterministically)."""
    merged: List[Tuple[float, int, str, int]] = []
    for order, flow in enumerate(flows):
        for time, size in per_flow.get(flow.flow_id, []):
            merged.append((time, order, flow.flow_id, size))
    merged.sort(key=lambda item: (item[0], item[1]))
    arrivals = tuple((time, flow_id, size)
                     for time, _, flow_id, size in merged)
    return Scenario(name=name, link_rate_bps=link_rate_bps,
                    duration=duration, flows=tuple(flows),
                    arrivals=arrivals, slot_plan=slot_plan,
                    description=description)


def _normalized_weights(flow_count: int) -> List[float]:
    """Weights in ratio 1:2:3, normalized so they sum to 1.  WF2Q+
    (and the delay bounds of the WFQ family generally) assume admission
    control: weights are *fractions of the link rate* summing to at
    most one — virtual time advances at wall-clock rate, so
    oversubscribed weights would outrun the tag frontier and void the
    bounds.  Scale-invariant algorithms (WFQ's SCFQ clock, DRR's
    weighted quantum) are unaffected by the normalization."""
    raw = [float(1 + index % 3) for index in range(flow_count)]
    total = sum(raw)
    return [value / total for value in raw]


def backlogged_scenario(seed: int = 0, flow_count: int = 6,
                        link_rate_bps: float = 1e9,
                        duration: float = 4e-3) -> Scenario:
    rng = random.Random(seed)
    weights = _normalized_weights(flow_count)
    flows = [FlowSpec(flow_id=f"f{index}",
                      weight=weights[index],
                      rate_bps=link_rate_bps / (2 * flow_count),
                      priority=index % 4)
             for index in range(flow_count)]
    cutoff = 0.6 * duration
    per_flow: Dict[str, List[Tuple[float, int]]] = {}
    # Each flow offers 2R/F bits/s until the cutoff: joint overload for
    # the fairness window, then a drain for work conservation.
    offered = 2.0 * link_rate_bps / flow_count
    for flow in flows:
        t = 0.0
        sequence: List[Tuple[float, int]] = []
        while t < cutoff:
            size = _SIZES[rng.randrange(len(_SIZES))]
            sequence.append((t, size))
            t += size * 8.0 / offered
        per_flow[flow.flow_id] = sequence
    return _finish("backlogged", link_rate_bps, duration, flows,
                   per_flow,
                   description="2x CBR overload, 6 weighted flows, "
                               "arrivals stop at 60% of the run")


def poisson_scenario(seed: int = 0, flow_count: int = 6,
                     link_rate_bps: float = 1e9,
                     duration: float = 4e-3) -> Scenario:
    rng = random.Random(seed)
    weights = _normalized_weights(flow_count)
    flows = [FlowSpec(flow_id=f"f{index}",
                      weight=weights[index],
                      rate_bps=link_rate_bps / (2 * flow_count),
                      priority=index % 4)
             for index in range(flow_count)]
    per_flow: Dict[str, List[Tuple[float, int]]] = {}
    offered = 0.7 * link_rate_bps / flow_count
    for flow in flows:
        t = 0.0
        sequence: List[Tuple[float, int]] = []
        while True:
            size = _SIZES[rng.randrange(len(_SIZES))]
            mean_gap = size * 8.0 / offered
            t += rng.expovariate(1.0 / mean_gap)
            if t >= duration * 0.9:
                break
            sequence.append((t, size))
        per_flow[flow.flow_id] = sequence
    return _finish("poisson", link_rate_bps, duration, flows, per_flow,
                   description="0.7-load Poisson mix with idle gaps")


def priority_scenario(seed: int = 0, link_rate_bps: float = 1e9,
                      duration: float = 4e-3) -> Scenario:
    rng = random.Random(seed)
    flows = [FlowSpec(flow_id=f"f{index}", priority=index,
                      rate_bps=link_rate_bps / 8)
             for index in range(4)]
    per_flow: Dict[str, List[Tuple[float, int]]] = {}
    offered = 0.9 * link_rate_bps / len(flows)
    for flow in flows:
        t = 0.0
        sequence: List[Tuple[float, int]] = []
        while True:
            size = _SIZES[rng.randrange(len(_SIZES))]
            mean_gap = size * 8.0 / offered
            t += rng.expovariate(1.0 / mean_gap)
            if t >= duration * 0.9:
                break
            sequence.append((t, size))
        per_flow[flow.flow_id] = sequence
    return _finish("priority", link_rate_bps, duration, flows, per_flow,
                   description="4 distinct priorities at 0.9 load")


def shaped_scenario(seed: int = 0, link_rate_bps: float = 1e9,
                    duration: float = 8e-3) -> Scenario:
    rng = random.Random(seed)
    flows = [FlowSpec(flow_id=f"f{index}",
                      rate_bps=link_rate_bps / 8.0,
                      priority=index,
                      burst_bytes=3000.0 * (1 + index % 2))
             for index in range(4)]
    per_flow: Dict[str, List[Tuple[float, int]]] = {}
    for flow in flows:
        # Bursts of 4 packets arriving back-to-back at 60% of the
        # token rate on average: the bucket drains during each burst
        # (real shaping delays) and refills in the gaps (legal idling).
        sequence: List[Tuple[float, int]] = []
        t = 0.0
        burst_packets = 4
        while t < duration * 0.9:
            burst_bytes = 0
            for index in range(burst_packets):
                size = _SIZES[rng.randrange(len(_SIZES))]
                sequence.append((t + index * 1e-9, size))
                burst_bytes += size
            t += burst_bytes * 8.0 / (0.6 * flow.rate_bps)
        per_flow[flow.flow_id] = sequence
    return _finish("shaped", link_rate_bps, duration, flows, per_flow,
                   description="bursty arrivals against per-flow "
                               "token rates at half the link")


def slotted_scenario(seed: int = 0, link_rate_bps: float = 1e9,
                     duration: float = 8e-3) -> Scenario:
    rng = random.Random(seed)
    slot_seconds, frame_slots = DEFAULT_SLOT_PLAN
    frame = slot_seconds * frame_slots
    flows = [FlowSpec(flow_id=f"f{index}", group=index,
                      rate_bps=link_rate_bps / 8)
             for index in range(4)]
    per_flow: Dict[str, List[Tuple[float, int]]] = {}
    for order, flow in enumerate(flows):
        # Roughly one packet per frame with jitter; the first flow
        # slightly oversends so a small backlog forms and the
        # one-grant-per-frame rule is actually exercised.
        gap = frame * (0.8 if order == 0 else 1.1)
        t = rng.uniform(0, frame * 0.5)
        sequence: List[Tuple[float, int]] = []
        while t < duration * 0.9:
            sequence.append((t, 1500))
            t += gap * rng.uniform(0.9, 1.1)
        per_flow[flow.flow_id] = sequence
    return _finish("slotted", link_rate_bps, duration, flows, per_flow,
                   slot_plan=DEFAULT_SLOT_PLAN,
                   description="one flow per TDMA slot, about one "
                               "packet per frame")


SCENARIOS: Dict[str, Callable[..., Scenario]] = {
    "backlogged": backlogged_scenario,
    "poisson": poisson_scenario,
    "priority": priority_scenario,
    "shaped": shaped_scenario,
    "slotted": slotted_scenario,
}


def make_scenario(name: str, seed: int = 0, **kwargs) -> Scenario:
    """Build a registered scenario by name."""
    try:
        builder = SCENARIOS[name]
    except KeyError:
        raise ValueError(
            f"unknown scenario {name!r}; available: "
            f"{', '.join(sorted(SCENARIOS))}") from None
    return builder(seed=seed, **kwargs)
