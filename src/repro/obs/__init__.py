"""Observability layer: tracing + metrics across sim/sched/core.

Zero-dependency event tracing (:mod:`repro.obs.trace`), aggregate
metrics (:mod:`repro.obs.metrics`), span scopes and the null default
path (:mod:`repro.obs.scope`), wall-clock runtime telemetry — phase
timers, the component-attributing sampling profiler, and the sweep
heartbeat (:mod:`repro.obs.runtime`), the ``TracedList`` backend decorator
(:mod:`repro.obs.traced_list`), offline trace analysis with per-packet
latency attribution (:mod:`repro.obs.analyze`), and Prometheus/Perfetto
exporters (:mod:`repro.obs.export`); ``python -m repro.obs`` is the
analysis CLI.

Typical wiring::

    from repro.obs import MetricsRegistry, Tracer

    tracer, metrics = Tracer(), MetricsRegistry()
    sim = Simulator(tracer=tracer)
    link = Link(gbps(40), tracer=tracer)
    scheduler = PieoScheduler(algo, tracer=tracer, metrics=metrics)
    engine = TransmitEngine(sim, scheduler, link,
                            tracer=tracer, metrics=metrics)
    ...
    tracer.write_jsonl("run.jsonl"); metrics.write_json("run.json")

Every instrumented component defaults to the shared null observers, so
the untraced path stays allocation-free.
"""

from repro.obs.analyze import (FlowReport, PacketTimeline, Run,
                               TraceAnalysis, analyze_path, split_runs)
from repro.obs.export import (flow_report_json, perfetto_trace,
                              prometheus_from_snapshot, prometheus_text,
                              write_perfetto, write_prometheus)
from repro.obs.metrics import (BATCH_BUCKETS, Counter, DEPTH_BUCKETS,
                               Gauge, Histogram, LATENCY_BUCKETS_US,
                               LogHistogram, MetricsRegistry,
                               ScopedMetrics, scoped)
from repro.obs.runtime import (NULL_HEARTBEAT, NULL_RUNTIME_PROFILER,
                               NullRuntimeProfiler, NullSweepHeartbeat,
                               PhaseTimer, RuntimeProfiler,
                               RuntimeReport, SamplingProfiler,
                               SweepHeartbeat, attribute_frame,
                               attribute_stack, component_of)
from repro.obs.scope import (NULL_METRICS, NULL_SPAN, NULL_TRACER,
                             NullMetrics, NullSpan, NullTracer, Span)
from repro.obs.trace import (EVENT_KINDS, LabelledTracer, TraceEvent,
                             Tracer, labelled, read_jsonl)
from repro.obs.traced_list import TracedList

__all__ = [
    "BATCH_BUCKETS",
    "Counter",
    "DEPTH_BUCKETS",
    "EVENT_KINDS",
    "FlowReport",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS_US",
    "LabelledTracer",
    "LogHistogram",
    "MetricsRegistry",
    "NULL_HEARTBEAT",
    "NULL_METRICS",
    "NULL_RUNTIME_PROFILER",
    "NULL_SPAN",
    "NULL_TRACER",
    "NullMetrics",
    "NullRuntimeProfiler",
    "NullSpan",
    "NullSweepHeartbeat",
    "NullTracer",
    "PacketTimeline",
    "PhaseTimer",
    "Run",
    "RuntimeProfiler",
    "RuntimeReport",
    "SamplingProfiler",
    "ScopedMetrics",
    "Span",
    "SweepHeartbeat",
    "TraceAnalysis",
    "TraceEvent",
    "TracedList",
    "Tracer",
    "analyze_path",
    "attribute_frame",
    "attribute_stack",
    "component_of",
    "flow_report_json",
    "labelled",
    "perfetto_trace",
    "prometheus_from_snapshot",
    "prometheus_text",
    "read_jsonl",
    "scoped",
    "split_runs",
    "write_perfetto",
    "write_prometheus",
]
