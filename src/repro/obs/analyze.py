"""Offline trace analysis: per-packet timelines, latency attribution,
per-flow reports, and conservation/ordering audits.

PR 3 gave the raw signal — a :class:`repro.obs.trace.Tracer` emitting
typed, sim-time-stamped events — and this module interprets it.  From a
trace (in-process events, or the JSONL export re-read with
:func:`repro.obs.trace.read_jsonl`) it reconstructs every packet's
lifecycle::

    arrival -> enqueue -> eligible -> dequeue -> departure | drop

and attributes each delivered packet's end-to-end latency to three
components that sum exactly:

* **eligibility wait** — the PIEO-specific component: time the packet's
  flow element (or an ancestor node's element, in a hierarchy) sat in an
  ordered list with its predicate still false.  Derived from the
  ``eligible`` flag on ``enqueue`` events and the ``eligible_at`` field
  on ``dequeue`` events; overlapping ineligible intervals along the
  flow's ancestor chain are unioned, never double-counted.
* **serialization** — time on the wire (``finish - t`` of the
  ``departure`` event).
* **queueing wait** — the residual: waiting behind other packets (or
  other flows' grants) while nominally eligible.

Elements that enter *ineligible* under a virtual time base (WF2Q+ and
friends) have no wall-clock transition instant; their whole residence is
conservatively attributed to eligibility wait and the affected packets
are flagged ``eligibility_exact=False``.

On top of the timelines: per-flow reports with exact (sample-sorted)
p50/p90/p99/p999 latency, sliding-window throughput and Jain fairness,
a starvation detector, Recorder-equivalent rate/ordering views derived
from the trace (so :class:`repro.sim.recorder.Recorder` and the tracer
no longer disagree silently), and audits that fail loudly on truncated
or corrupted traces.
"""

from __future__ import annotations

import math
from bisect import bisect_right
from collections import defaultdict
from dataclasses import dataclass
from typing import (Callable, Dict, Hashable, List, Optional, Sequence,
                    Tuple)

from repro.analysis.fairness import jains_index
from repro.sim.recorder import Recorder

#: Sim-time comparisons tolerate this much float noise (seconds).
TIME_EPSILON = 1e-12

#: Kinds stamped at the simulator's current time when emitted.  These
#: must be monotone within one run.  ``departure``/``link_*`` are
#: stamped at link-transmit times, which run *ahead* of sim time when
#: the engine logs a multi-packet batch at once — the link-overlap
#: audit covers their ordering instead.
MONOTONE_KINDS = frozenset((
    "arrival", "enqueue", "dequeue", "drop", "kick",
    "timer_arm", "timer_fire", "timer_cancel", "mark",
))


def default_parent_of(flow_id: Hashable) -> Optional[Hashable]:
    """Ancestor convention of the evaluation topology: leaf ``"n6.f2"``
    is owned by node ``"n6"``; anything without a dot is a root-level
    entity."""
    if isinstance(flow_id, str) and "." in flow_id:
        return flow_id.rsplit(".", 1)[0]
    return None


def _as_dicts(events) -> List[Dict[str, object]]:
    """Accept ``read_jsonl`` dicts or in-process ``TraceEvent`` objects
    (no lossy JSON round-trip for the latter)."""
    records = []
    for event in events:
        if isinstance(event, dict):
            records.append(event)
        else:
            record = {"t": event.time, "kind": event.kind}
            record.update(event.fields)
            records.append(record)
    return records


@dataclass
class Run:
    """One mark-delimited segment of a trace stream (sim time restarts
    at every sweep point, so analysis must be per segment)."""

    label: Optional[str]
    fields: Dict[str, object]
    events: List[Dict[str, object]]

    @property
    def title(self) -> str:
        if self.label is None:
            return "(unlabelled run)"
        extras = ", ".join(f"{key}={value}"
                           for key, value in sorted(self.fields.items()))
        return f"{self.label} [{extras}]" if extras else self.label


def split_runs(events) -> List[Run]:
    """Split a trace stream into mark-delimited runs.  Every ``mark``
    event starts a new run labelled by it; events before the first mark
    form an unlabelled run (dropped when empty)."""
    records = _as_dicts(events)
    runs: List[Run] = []
    current = Run(label=None, fields={}, events=[])
    for record in records:
        if record.get("kind") == "mark":
            if current.events or current.label is not None:
                runs.append(current)
            fields = {key: value for key, value in record.items()
                      if key not in ("t", "kind", "label")}
            current = Run(label=record.get("label"), fields=fields,
                          events=[])
        else:
            current.events.append(record)
    if current.events or current.label is not None:
        runs.append(current)
    return runs


#: Event kinds that carry packet/flow semantics — used to decide
#: whether an unlabelled bucket of a multi-switch trace is worth
#: analyzing (the simulator's own timer/span events carry no ``switch``
#: label and would otherwise produce an empty phantom switch).
PACKET_KINDS = frozenset((
    "arrival", "enqueue", "eligible", "dequeue", "departure", "drop",
))


def split_switches(events) -> Dict[Optional[str],
                                   List[Dict[str, object]]]:
    """Partition one run's events by their ``switch`` label (from
    :func:`repro.obs.trace.labelled` views), preserving order.
    Unlabelled events land under ``None`` — a single-switch trace is
    one ``None`` bucket."""
    records = _as_dicts(events)
    buckets: Dict[Optional[str], List[Dict[str, object]]] = {}
    for record in records:
        buckets.setdefault(record.get("switch"), []).append(record)
    return buckets


def switch_analyses(events,
                    parent_of: "Callable[[Hashable], Optional[Hashable]]"
                    = None) -> List[Tuple[Optional[str],
                                          "TraceAnalysis"]]:
    """``(switch_label, TraceAnalysis)`` per switch of one run.

    Multi-switch (fabric) traces record each packet once *per hop*; a
    whole-run analysis would see duplicate arrivals and overlapping
    links, so analysis always happens per switch track.  Single-switch
    traces yield exactly one ``(None, analysis)`` entry, keeping every
    existing caller's semantics.  An unlabelled bucket containing no
    packet events (simulator timer/span chatter) is dropped when
    labelled tracks exist.
    """
    if parent_of is None:
        parent_of = default_parent_of
    buckets = split_switches(events)
    if len(buckets) > 1 and None in buckets:
        if not any(record.get("kind") in PACKET_KINDS
                   for record in buckets[None]):
            del buckets[None]
    ordered = sorted(buckets.items(),
                     key=lambda item: (item[0] is not None,
                                       str(item[0])))
    return [(switch, TraceAnalysis(bucket, parent_of=parent_of))
            for switch, bucket in ordered]


@dataclass
class Episode:
    """One enqueue->dequeue residence of a flow element in an ordered
    list."""

    flow_id: Hashable
    enqueue_t: float
    dequeue_t: Optional[float] = None
    send_time: Optional[float] = None
    rank: Optional[float] = None
    eligible_on_enqueue: bool = True
    eligible_at: Optional[float] = None
    requeue: bool = False
    port: Optional[str] = None

    def ineligible_interval(self) -> Optional[Tuple[float, float, bool]]:
        """``(start, end, exact)`` during which the element sat
        ineligible, or ``None``.  Open episodes (still resident at trace
        end) contribute nothing — only delivered packets are
        attributed, and their episodes closed."""
        if self.dequeue_t is None or self.eligible_on_enqueue:
            return None
        if self.eligible_at is None:
            # Virtual-base entry: transition unobservable in wall time;
            # the whole residence bounds the eligibility wait.
            return (self.enqueue_t, self.dequeue_t, False)
        end = min(max(self.eligible_at, self.enqueue_t), self.dequeue_t)
        if end <= self.enqueue_t + TIME_EPSILON:
            return None
        return (self.enqueue_t, end, True)


@dataclass
class PacketTimeline:
    """One packet's reconstructed lifecycle and latency attribution."""

    packet_id: Optional[int]
    flow_id: Hashable
    size_bytes: int = 0
    port: Optional[str] = None
    arrival_t: Optional[float] = None
    depart_start: Optional[float] = None
    depart_end: Optional[float] = None
    dropped: bool = False
    drop_t: Optional[float] = None
    drop_reason: str = ""
    latency: Optional[float] = None
    queueing_wait: Optional[float] = None
    eligibility_wait: Optional[float] = None
    serialization: Optional[float] = None
    eligibility_exact: bool = True

    @property
    def delivered(self) -> bool:
        return self.depart_end is not None

    def to_dict(self) -> Dict[str, object]:
        return {
            "packet_id": self.packet_id,
            "flow_id": self.flow_id,
            "size_bytes": self.size_bytes,
            "port": self.port,
            "arrival_t": self.arrival_t,
            "depart_start": self.depart_start,
            "depart_end": self.depart_end,
            "dropped": self.dropped,
            "latency": self.latency,
            "queueing_wait": self.queueing_wait,
            "eligibility_wait": self.eligibility_wait,
            "serialization": self.serialization,
            "eligibility_exact": self.eligibility_exact,
        }


@dataclass
class Issue:
    """One audit finding.  ``error`` severity makes ``audit`` fail."""

    severity: str  # "error" | "warning"
    message: str

    def __str__(self) -> str:
        return f"{self.severity}: {self.message}"


@dataclass
class FlowReport:
    """Aggregate per-flow view over one run."""

    flow_id: Hashable
    port: Optional[str] = None
    packets: int = 0
    drops: int = 0
    bytes: int = 0
    throughput_bps: float = 0.0
    mean_latency: float = 0.0
    p50: float = 0.0
    p90: float = 0.0
    p99: float = 0.0
    p999: float = 0.0
    mean_queueing: float = 0.0
    mean_eligibility: float = 0.0
    mean_serialization: float = 0.0
    eligibility_exact: bool = True
    starved: bool = False

    def to_dict(self) -> Dict[str, object]:
        return {
            "flow_id": self.flow_id,
            "port": self.port,
            "packets": self.packets,
            "drops": self.drops,
            "bytes": self.bytes,
            "throughput_bps": self.throughput_bps,
            "mean_latency": self.mean_latency,
            "p50": self.p50,
            "p90": self.p90,
            "p99": self.p99,
            "p999": self.p999,
            "mean_queueing": self.mean_queueing,
            "mean_eligibility": self.mean_eligibility,
            "mean_serialization": self.mean_serialization,
            "eligibility_exact": self.eligibility_exact,
            "starved": self.starved,
        }


def exact_quantile(sorted_samples: Sequence[float], q: float) -> float:
    """Exact empirical quantile (nearest-rank) of pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    if not 0 <= q <= 1:
        raise ValueError("quantile must be within [0, 1]")
    index = max(0, math.ceil(q * len(sorted_samples)) - 1)
    return sorted_samples[index]


class _IntervalSet:
    """Merged, sorted, non-overlapping intervals with exactness flags;
    supports O(log n + k) overlap queries."""

    __slots__ = ("starts", "ends", "exact")

    def __init__(self, intervals: List[Tuple[float, float, bool]]) -> None:
        intervals = sorted(intervals)
        starts: List[float] = []
        ends: List[float] = []
        exact: List[bool] = []
        for start, end, is_exact in intervals:
            if ends and start <= ends[-1] + TIME_EPSILON:
                ends[-1] = max(ends[-1], end)
                exact[-1] = exact[-1] and is_exact
            else:
                starts.append(start)
                ends.append(end)
                exact.append(is_exact)
        self.starts = starts
        self.ends = ends
        self.exact = exact

    def clipped(self, lo: float,
                hi: float) -> List[Tuple[float, float, bool]]:
        """Intervals intersected with ``[lo, hi]``."""
        if hi <= lo or not self.starts:
            return []
        result = []
        index = bisect_right(self.ends, lo)
        while index < len(self.starts) and self.starts[index] < hi:
            start = max(self.starts[index], lo)
            end = min(self.ends[index], hi)
            if end > start:
                result.append((start, end, self.exact[index]))
            index += 1
        return result


class TraceAnalysis:
    """Timelines, per-flow reports, and audits over one trace run.

    Parameters
    ----------
    events:
        Event dicts (from :func:`repro.obs.trace.read_jsonl`) or
        in-process :class:`~repro.obs.trace.TraceEvent` objects of ONE
        run (sim time must not restart; use :func:`split_runs` for
        mark-delimited sweep streams).
    parent_of:
        Maps a flow id to the id of its owning hierarchy node (or
        ``None`` at the root); ancestor elements' ineligible time counts
        toward a packet's eligibility wait (a token-bucket-limited node
        shapes every packet beneath it).  Defaults to the ``"nX.fY"``
        convention of the evaluation topology.
    """

    def __init__(self, events,
                 parent_of: Callable[[Hashable], Optional[Hashable]]
                 = default_parent_of) -> None:
        self.events = _as_dicts(events)
        self.parent_of = parent_of
        self.issues: List[Issue] = []
        self.timelines: List[PacketTimeline] = []
        self.episodes: List[Episode] = []
        self.open_episodes: Dict[Hashable, Episode] = {}
        self.t_min: Optional[float] = None
        self.t_max: Optional[float] = None
        self._packets: Dict[int, PacketTimeline] = {}
        self._episodes_by_flow: Dict[Hashable, List[Episode]] = \
            defaultdict(list)
        self._arrival_order: Dict[Hashable, List[int]] = \
            defaultdict(list)
        self._departure_order: Dict[Hashable, List[int]] = \
            defaultdict(list)
        self._arrival_times: Dict[Hashable, List[float]] = \
            defaultdict(list)
        #: ``(t, flow_id, size, packet_id, finish, port)`` per
        #: departure; ``port`` is None on unlabelled (single-link)
        #: traces.
        self._departure_events: List[Tuple[float, Hashable, int,
                                           Optional[int], float,
                                           Optional[str]]] = []
        self._dequeue_times: Dict[Hashable, List[float]] = \
            defaultdict(list)
        self._op_counts: Dict[Hashable, int] = defaultdict(int)
        self._build()
        self._attribute_all()

    # ------------------------------------------------------------------
    # Reconstruction
    # ------------------------------------------------------------------
    def _error(self, message: str) -> None:
        self.issues.append(Issue("error", message))

    def _warn(self, message: str) -> None:
        self.issues.append(Issue("warning", message))

    def _build(self) -> None:
        last_t = None
        for record in self.events:
            kind = record.get("kind")
            t = record.get("t")
            if not isinstance(t, (int, float)) or kind is None:
                self._error(f"event without numeric t/kind: {record}")
                continue
            if kind == "span":
                continue  # wall-clock spans carry no sim-time ordering
            if kind in MONOTONE_KINDS:
                if last_t is not None and t < last_t - TIME_EPSILON:
                    self._error(
                        f"sim time went backwards: {last_t} -> {t} "
                        f"({kind}); trace is corrupted or mixes runs "
                        "(use split_runs on mark-delimited streams)")
                last_t = t
            self.t_min = t if self.t_min is None else min(self.t_min, t)
            self.t_max = t if self.t_max is None else max(self.t_max, t)
            handler = getattr(self, f"_on_{kind}", None)
            if handler is not None:
                handler(t, record)

    def _on_arrival(self, t: float, record: Dict[str, object]) -> None:
        flow_id = record.get("flow_id")
        packet_id = record.get("packet_id")
        timeline = PacketTimeline(
            packet_id=packet_id, flow_id=flow_id,
            size_bytes=record.get("size_bytes") or 0,
            port=record.get("port"), arrival_t=t)
        if packet_id is not None:
            if packet_id in self._packets:
                self._error(f"duplicate arrival for packet {packet_id}")
                return
            self._packets[packet_id] = timeline
        self.timelines.append(timeline)
        self._arrival_order[flow_id].append(packet_id)
        self._arrival_times[flow_id].append(t)

    def _on_enqueue(self, t: float, record: Dict[str, object]) -> None:
        flow_id = record.get("flow_id")
        self._op_counts[flow_id] += 1
        if flow_id in self.open_episodes:
            self._error(
                f"enqueue of flow {flow_id!r} at t={t} while already "
                "resident (missing dequeue event?)")
            self._close_episode(self.open_episodes.pop(flow_id), t,
                               record={})
        eligible = record.get("eligible")
        episode = Episode(
            flow_id=flow_id, enqueue_t=t,
            send_time=record.get("send_time"),
            rank=record.get("rank"),
            eligible_on_enqueue=(True if eligible is None
                                 else bool(eligible)),
            requeue=bool(record.get("requeue")),
            port=record.get("port"))
        self.open_episodes[flow_id] = episode

    def _on_dequeue(self, t: float, record: Dict[str, object]) -> None:
        flow_id = record.get("flow_id")
        self._op_counts[flow_id] += 1
        episode = self.open_episodes.pop(flow_id, None)
        if episode is None:
            self._error(
                f"dequeue of flow {flow_id!r} at t={t} without a "
                "matching enqueue (truncated trace?)")
            return
        self._close_episode(episode, t, record)

    def _close_episode(self, episode: Episode, t: float,
                       record: Dict[str, object]) -> None:
        episode.dequeue_t = t
        eligible_at = record.get("eligible_at")
        if isinstance(eligible_at, (int, float)):
            episode.eligible_at = eligible_at
        self.episodes.append(episode)
        self._episodes_by_flow[episode.flow_id].append(episode)
        self._dequeue_times[episode.flow_id].append(t)

    def _on_departure(self, t: float, record: Dict[str, object]) -> None:
        flow_id = record.get("flow_id")
        packet_id = record.get("packet_id")
        size = record.get("size_bytes") or 0
        finish = record.get("finish")
        if not isinstance(finish, (int, float)) or finish < t:
            self._error(
                f"departure of packet {packet_id} at t={t} with "
                f"invalid finish {finish!r}")
            finish = t
        timeline = (self._packets.get(packet_id)
                    if packet_id is not None else None)
        if timeline is None:
            self._error(
                f"departure of packet {packet_id} (flow {flow_id!r}) "
                "without a matching arrival event (truncated or "
                "ring-evicted trace)")
            timeline = PacketTimeline(packet_id=packet_id,
                                      flow_id=flow_id, size_bytes=size)
            arrival_t = record.get("arrival_t")
            if isinstance(arrival_t, (int, float)):
                timeline.arrival_t = arrival_t
            if packet_id is not None:
                self._packets[packet_id] = timeline
            self.timelines.append(timeline)
        if timeline.depart_end is not None:
            self._error(f"packet {packet_id} departed twice")
            return
        timeline.depart_start = t
        timeline.depart_end = finish
        if timeline.port is None:
            timeline.port = record.get("port")
        self._departure_order[flow_id].append(packet_id)
        self._departure_events.append(
            (t, flow_id, size, packet_id, finish, record.get("port")))

    def _on_drop(self, t: float, record: Dict[str, object]) -> None:
        flow_id = record.get("flow_id")
        packet_id = record.get("packet_id")
        timeline = (self._packets.get(packet_id)
                    if packet_id is not None else None)
        if timeline is None:
            timeline = PacketTimeline(packet_id=packet_id,
                                      flow_id=flow_id)
            self.timelines.append(timeline)
            if packet_id is not None:
                self._packets[packet_id] = timeline
        timeline.dropped = True
        timeline.drop_t = t
        timeline.drop_reason = str(record.get("reason", ""))
        if timeline.port is None:
            timeline.port = record.get("port")

    # ------------------------------------------------------------------
    # Attribution
    # ------------------------------------------------------------------
    def _ancestor_chain(self, flow_id: Hashable) -> List[Hashable]:
        chain = [flow_id]
        seen = {flow_id}
        node = self.parent_of(flow_id)
        while node is not None and node not in seen:
            chain.append(node)
            seen.add(node)
            node = self.parent_of(node)
        return chain

    def _attribute_all(self) -> None:
        interval_sets: Dict[Hashable, _IntervalSet] = {}
        for flow_id, episodes in self._episodes_by_flow.items():
            intervals = [interval for episode in episodes
                         if (interval :=
                             episode.ineligible_interval()) is not None]
            if intervals:
                interval_sets[flow_id] = _IntervalSet(intervals)
        chains: Dict[Hashable, List[Hashable]] = {}
        for timeline in self.timelines:
            if not timeline.delivered or timeline.arrival_t is None:
                continue
            chain = chains.get(timeline.flow_id)
            if chain is None:
                chain = chains[timeline.flow_id] = [
                    flow_id for flow_id
                    in self._ancestor_chain(timeline.flow_id)
                    if flow_id in interval_sets]
            lo, hi = timeline.arrival_t, timeline.depart_start
            clipped: List[Tuple[float, float, bool]] = []
            for flow_id in chain:
                clipped.extend(interval_sets[flow_id].clipped(lo, hi))
            exact = all(is_exact for _, _, is_exact in clipped)
            merged = _IntervalSet(clipped) if clipped else None
            wait = (sum(end - start for start, end
                        in zip(merged.starts, merged.ends))
                    if merged is not None else 0.0)
            total = timeline.depart_end - timeline.arrival_t
            serialization = timeline.depart_end - timeline.depart_start
            timeline.latency = total
            timeline.eligibility_wait = wait
            timeline.serialization = serialization
            timeline.queueing_wait = total - serialization - wait
            timeline.eligibility_exact = exact
            if timeline.queueing_wait < -TIME_EPSILON * max(1.0, total):
                if exact:
                    self._error(
                        f"packet {timeline.packet_id}: attribution "
                        f"exceeds end-to-end latency "
                        f"(queueing={timeline.queueing_wait:.3e})")
                else:
                    # Conservative virtual-base bound overshot; clamp
                    # and keep the inexactness flag.
                    timeline.eligibility_wait += timeline.queueing_wait
                    timeline.queueing_wait = 0.0

    # ------------------------------------------------------------------
    # Recorder-equivalent views (derived from the trace)
    # ------------------------------------------------------------------
    def to_recorder(self) -> Recorder:
        """A :class:`repro.sim.recorder.Recorder` populated from the
        trace's ``departure`` events — rate/ordering views come from one
        source of truth instead of a second bookkeeping path."""
        recorder = Recorder()
        for t, flow_id, size, packet_id, _finish, _port in \
                self._departure_events:
            recorder.record(t, flow_id, size,
                            packet_id if packet_id is not None else -1)
        return recorder

    def order(self) -> List[Hashable]:
        return [flow_id for _, flow_id, _, _, _, _
                in self._departure_events]

    def rate_bps(self, **kwargs) -> Dict[Hashable, float]:
        return self.to_recorder().rate_bps(**kwargs)

    def bytes_by_flow(self, **kwargs) -> Dict[Hashable, int]:
        return self.to_recorder().bytes_by_flow(**kwargs)

    # ------------------------------------------------------------------
    # Per-flow reports
    # ------------------------------------------------------------------
    def flows(self, starvation_threshold: Optional[float] = None,
              ) -> Dict[Hashable, FlowReport]:
        """Per-flow aggregate reports over the run.  Percentiles are
        exact (sample-sorted), not bucketed."""
        span_start = self.t_min if self.t_min is not None else 0.0
        span_end = self.t_max if self.t_max is not None else 0.0
        span = max(span_end - span_start, 0.0)
        reports: Dict[Hashable, FlowReport] = {}
        grouped: Dict[Hashable, List[PacketTimeline]] = defaultdict(list)
        for timeline in self.timelines:
            grouped[timeline.flow_id].append(timeline)
        starved = (set(flow for flow, _, _ in
                       self.starved_flows(starvation_threshold))
                   if starvation_threshold is not None else set())
        for flow_id, timelines in grouped.items():
            delivered = [timeline for timeline in timelines
                         if timeline.delivered
                         and timeline.latency is not None]
            report = FlowReport(flow_id=flow_id)
            report.port = next(
                (timeline.port for timeline in timelines
                 if timeline.port is not None), None)
            report.drops = sum(1 for timeline in timelines
                               if timeline.dropped)
            report.packets = len(delivered)
            report.bytes = sum(timeline.size_bytes
                               for timeline in delivered)
            if span > 0:
                report.throughput_bps = report.bytes * 8 / span
            if delivered:
                latencies = sorted(timeline.latency
                                   for timeline in delivered)
                count = len(latencies)
                report.mean_latency = sum(latencies) / count
                report.p50 = exact_quantile(latencies, 0.50)
                report.p90 = exact_quantile(latencies, 0.90)
                report.p99 = exact_quantile(latencies, 0.99)
                report.p999 = exact_quantile(latencies, 0.999)
                report.mean_queueing = sum(
                    timeline.queueing_wait
                    for timeline in delivered) / count
                report.mean_eligibility = sum(
                    timeline.eligibility_wait
                    for timeline in delivered) / count
                report.mean_serialization = sum(
                    timeline.serialization
                    for timeline in delivered) / count
                report.eligibility_exact = all(
                    timeline.eligibility_exact
                    for timeline in delivered)
            report.starved = flow_id in starved
            reports[flow_id] = report
        return reports

    # ------------------------------------------------------------------
    # Per-port aggregates (multi-port dataplane traces)
    # ------------------------------------------------------------------
    def port_summary(self) -> Dict[Optional[str], Dict[str, object]]:
        """Aggregate per-port view: arrivals, deliveries, drops (with
        per-reason counts), bytes and throughput.  Unlabelled events
        aggregate under the ``None`` port (single-link traces produce
        exactly that one entry)."""
        span_start = self.t_min if self.t_min is not None else 0.0
        span_end = self.t_max if self.t_max is not None else 0.0
        span = max(span_end - span_start, 0.0)
        summary: Dict[Optional[str], Dict[str, object]] = {}

        def entry(port: Optional[str]) -> Dict[str, object]:
            record = summary.get(port)
            if record is None:
                record = summary[port] = {
                    "arrivals": 0, "delivered": 0, "drops": 0,
                    "bytes": 0, "throughput_bps": 0.0,
                    "drop_reasons": {},
                }
            return record

        for timeline in self.timelines:
            record = entry(timeline.port)
            if timeline.arrival_t is not None:
                record["arrivals"] += 1
            if timeline.delivered:
                record["delivered"] += 1
                record["bytes"] += timeline.size_bytes
            if timeline.dropped:
                record["drops"] += 1
                reasons = record["drop_reasons"]
                reason = timeline.drop_reason or "(unspecified)"
                reasons[reason] = reasons.get(reason, 0) + 1
        if span > 0:
            for record in summary.values():
                record["throughput_bps"] = record["bytes"] * 8 / span
        return summary

    # ------------------------------------------------------------------
    # Fairness / throughput over sliding windows
    # ------------------------------------------------------------------
    def rate_timeseries(self, bucket_seconds: float,
                        ) -> Dict[Hashable, List[float]]:
        return self.to_recorder().rate_timeseries(bucket_seconds)

    def fairness_timeseries(self, bucket_seconds: float,
                            flow_ids: Optional[Sequence[Hashable]]
                            = None) -> List[float]:
        """Jain's fairness index of per-flow throughput, one value per
        window (1.0 = perfectly fair across the observed flows)."""
        series = self.rate_timeseries(bucket_seconds)
        if flow_ids is not None:
            series = {flow_id: values for flow_id, values
                      in series.items() if flow_id in set(flow_ids)}
        if not series:
            return []
        buckets = max(len(values) for values in series.values())
        result = []
        for index in range(buckets):
            rates = [values[index] if index < len(values) else 0.0
                     for values in series.values()]
            result.append(jains_index(rates))
        return result

    # ------------------------------------------------------------------
    # Starvation detection
    # ------------------------------------------------------------------
    def starved_flows(self, threshold: Optional[float] = None,
                      ) -> List[Tuple[Hashable, float, float]]:
        """Flows with backlog but no dequeue for longer than
        ``threshold`` seconds: ``(flow_id, gap_start, gap_end)`` per
        offending gap.  Default threshold: 1% of the run span."""
        if threshold is None:
            span = ((self.t_max or 0.0) - (self.t_min or 0.0))
            threshold = span * 0.01 if span > 0 else 0.0
        if threshold <= 0:
            return []
        end_of_trace = self.t_max if self.t_max is not None else 0.0
        findings: List[Tuple[Hashable, float, float]] = []
        for flow_id, arrivals in self._arrival_times.items():
            departures = sorted(
                timeline.depart_start
                for timeline in self._packets.values()
                if timeline.flow_id == flow_id and timeline.delivered)
            service = sorted(self._dequeue_times.get(flow_id, []))
            for start, end in self._backlogged_intervals(
                    arrivals, departures, end_of_trace):
                marks = [start]
                marks += [t for t in service if start <= t <= end]
                marks.append(end)
                for before, after in zip(marks, marks[1:]):
                    if after - before > threshold:
                        findings.append((flow_id, before, after))
        return findings

    @staticmethod
    def _backlogged_intervals(arrivals: List[float],
                              departures: List[float],
                              end_of_trace: float,
                              ) -> List[Tuple[float, float]]:
        """Intervals during which arrivals outnumber departures."""
        steps = ([(t, 1) for t in arrivals]
                 + [(t, -1) for t in departures])
        steps.sort()
        intervals = []
        backlog = 0
        opened: Optional[float] = None
        for t, delta in steps:
            backlog += delta
            if backlog > 0 and opened is None:
                opened = t
            elif backlog <= 0 and opened is not None:
                intervals.append((opened, t))
                opened = None
        if opened is not None:
            intervals.append((opened, end_of_trace))
        return intervals

    # ------------------------------------------------------------------
    # Hardware-cost attribution
    # ------------------------------------------------------------------
    def op_counts(self) -> Dict[Hashable, int]:
        """Ordered-list operations (enqueues + dequeues) per flow or
        hierarchy-node id observed in the trace."""
        return dict(self._op_counts)

    def cost_attribution(self, counters_snapshot: Dict[str, float],
                         ) -> Dict[Hashable, Dict[str, float]]:
        """Join a backend :class:`~repro.core.opstats.OpCounters`
        snapshot against the per-flow op counts: each flow (or node) is
        charged its op-proportional share of cycles, SRAM sublist
        ports, and comparator/encoder activations."""
        total_ops = sum(self._op_counts.values())
        if total_ops == 0:
            return {}
        dimensions = ("cycles", "sram_sublist_reads",
                      "sram_sublist_writes", "comparator_activations",
                      "encoder_activations")
        attribution: Dict[Hashable, Dict[str, float]] = {}
        for flow_id, ops in self._op_counts.items():
            share = ops / total_ops
            attribution[flow_id] = {"ops": ops, "share": share}
            for dimension in dimensions:
                total = counters_snapshot.get(dimension, 0)
                attribution[flow_id][dimension] = total * share
        return attribution

    # ------------------------------------------------------------------
    # Audits
    # ------------------------------------------------------------------
    def audit(self) -> List[Issue]:
        """Full conservation/ordering audit; returns the accumulated
        issues (reconstruction errors included).  A trace is healthy
        when no issue has ``error`` severity."""
        issues = list(self.issues)
        issues.extend(self._audit_conservation())
        issues.extend(self._audit_flow_ordering())
        issues.extend(self._audit_link_overlap())
        return issues

    @property
    def errors(self) -> List[Issue]:
        return [issue for issue in self.audit()
                if issue.severity == "error"]

    def _audit_conservation(self) -> List[Issue]:
        issues: List[Issue] = []
        arrived = sum(1 for timeline in self.timelines
                      if timeline.arrival_t is not None)
        delivered = sum(1 for timeline in self.timelines
                        if timeline.delivered)
        dropped = sum(1 for timeline in self.timelines
                      if timeline.dropped)
        in_flight = [timeline for timeline in self.timelines
                     if timeline.arrival_t is not None
                     and not timeline.delivered and not timeline.dropped]
        if arrived < delivered + dropped:
            issues.append(Issue(
                "error",
                f"packet conservation violated: {arrived} arrivals < "
                f"{delivered} departures + {dropped} drops"))
        if in_flight:
            issues.append(Issue(
                "warning",
                f"{len(in_flight)} packet(s) still in flight at end "
                "of trace"))
        if self.open_episodes:
            issues.append(Issue(
                "warning",
                f"{len(self.open_episodes)} flow element(s) still "
                "resident in ordered lists at end of trace"))
        return issues

    def _audit_flow_ordering(self) -> List[Issue]:
        """Per-flow FIFO: packets of one flow must depart in arrival
        order (the per-flow queues are FIFOs; a violation means the
        trace, or the scheduler, is broken)."""
        issues: List[Issue] = []
        for flow_id, departed in self._departure_order.items():
            arrival_pos = {packet_id: position for position, packet_id
                           in enumerate(self._arrival_order[flow_id])
                           if packet_id is not None}
            positions = [arrival_pos[packet_id] for packet_id in departed
                         if packet_id in arrival_pos]
            out_of_order = sum(
                1 for before, after in zip(positions, positions[1:])
                if after < before)
            if out_of_order:
                issues.append(Issue(
                    "error",
                    f"flow {flow_id!r}: {out_of_order} departure(s) "
                    "out of per-flow FIFO order"))
        return issues

    def _audit_link_overlap(self) -> List[Issue]:
        """Each link serializes one packet at a time: departure windows
        must not overlap *per port* (an unlabelled trace is one link;
        a multi-port trace is audited per ``port`` label — cross-port
        windows legitimately overlap in wall time)."""
        issues: List[Issue] = []
        last_finish: Dict[Optional[str], float] = {}
        overlaps: Dict[Optional[str], int] = defaultdict(int)
        for t, _flow_id, _size, _packet_id, finish, port in \
                self._departure_events:
            previous = last_finish.get(port)
            if previous is not None and t < previous - TIME_EPSILON:
                overlaps[port] += 1
            last_finish[port] = finish
        for port, count in sorted(overlaps.items(),
                                  key=lambda item: str(item[0])):
            where = f"port {port} link" if port is not None else "the link"
            issues.append(Issue(
                "error",
                f"{count} departure(s) started while {where} was "
                "still serializing the previous packet"))
        return issues


def analyze_path(path, parent_of: Callable[[Hashable],
                                           Optional[Hashable]]
                 = default_parent_of) -> List[Tuple[Run, TraceAnalysis]]:
    """Read a JSONL trace file and analyze every mark-delimited run."""
    from repro.obs.trace import read_jsonl
    runs = split_runs(read_jsonl(path))
    return [(run, TraceAnalysis(run.events, parent_of=parent_of))
            for run in runs]
