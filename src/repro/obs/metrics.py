"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the aggregate companion to the event-level
:class:`repro.obs.trace.Tracer`: where the tracer answers "what happened
and when", the registry answers "how much, how deep, how long" without
retaining per-event state.  Instruments are created once by name and
updated on the hot path with O(1) work:

* :class:`Counter` — monotonically increasing totals (arrivals,
  departures, kicks, retry arms);
* :class:`Gauge` — instantaneous levels with min/max watermarks (ordered
  -list queue depth, backlog bytes);
* :class:`Histogram` — fixed-bucket distributions (schedule()-batch
  size, per-op wall-clock latency of backend calls).

``snapshot()`` / ``to_dict()`` return plain dicts; :meth:`write_json`
persists them.  The default (unobserved) path uses
:class:`repro.obs.scope.NullMetrics` instead, which hands out shared
no-op instruments.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, List, Optional, Sequence

#: Default buckets for queue-depth style histograms.
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024)

#: Default buckets for microsecond latency histograms.
LATENCY_BUCKETS_US = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                      1_000, 5_000, 20_000)

#: Default buckets for schedule()-batch sizes.
BATCH_BUCKETS = (0, 1, 2, 4, 8, 16, 32)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """An instantaneous level with min/max watermarks.

    The watermarks cover every value the gauge has taken since creation
    (or the last :meth:`reset`), so "queue depth never went negative" is
    checkable from a snapshot alone.
    """

    __slots__ = ("value", "min", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def reset(self) -> None:
        self.value = 0.0
        self.min = None
        self.max = None


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Mean/min/max are tracked
    exactly regardless of bucketing.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEPTH_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be increasing")
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound of
        the bucket holding the q-th observation; ``inf`` if it landed in
        the overflow bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return float(self.buckets[index])
                return math.inf
        return math.inf  # pragma: no cover - cumulative covers count


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as dicts."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument factories (idempotent per name) --------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                buckets if buckets is not None else DEPTH_BUCKETS)
        return instrument

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict]:
        """Plain-dict snapshot of every instrument."""
        return {
            "counters": {name: counter.value
                         for name, counter in self._counters.items()},
            "gauges": {name: {"value": gauge.value, "min": gauge.min,
                              "max": gauge.max}
                       for name, gauge in self._gauges.items()},
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "mean": histogram.mean,
                    "min": histogram.min,
                    "max": histogram.max,
                }
                for name, histogram in self._histograms.items()
            },
        }

    def snapshot(self) -> Dict[str, Dict]:
        return self.to_dict()

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
