"""Counters, gauges, and fixed-bucket histograms.

A :class:`MetricsRegistry` is the aggregate companion to the event-level
:class:`repro.obs.trace.Tracer`: where the tracer answers "what happened
and when", the registry answers "how much, how deep, how long" without
retaining per-event state.  Instruments are created once by name and
updated on the hot path with O(1) work:

* :class:`Counter` — monotonically increasing totals (arrivals,
  departures, kicks, retry arms);
* :class:`Gauge` — instantaneous levels with min/max watermarks (ordered
  -list queue depth, backlog bytes);
* :class:`Histogram` — fixed-bucket distributions (schedule()-batch
  size, per-op wall-clock latency of backend calls);
* :class:`LogHistogram` — log-scaled (HDR-style) distributions with
  bounded relative error, for tail-latency analysis where fixed buckets
  quantize too coarsely.

``snapshot()`` / ``to_dict()`` return plain dicts; :meth:`write_json`
persists them.  The default (unobserved) path uses
:class:`repro.obs.scope.NullMetrics` instead, which hands out shared
no-op instruments.
"""

from __future__ import annotations

import bisect
import json
import math
from typing import Dict, List, Optional, Sequence

#: Default buckets for queue-depth style histograms.  The upper bounds
#: extend past the paper's N = 32K list sizes (Section 6) so depth
#: distributions of full-scale runs do not saturate into the overflow
#: bucket.
DEPTH_BUCKETS = (1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024,
                 2048, 4096, 8192, 16384, 32768, 65536)

#: Default buckets for microsecond latency histograms.
LATENCY_BUCKETS_US = (1, 2, 5, 10, 20, 50, 100, 200, 500,
                      1_000, 5_000, 20_000)

#: Default buckets for schedule()-batch sizes.
BATCH_BUCKETS = (0, 1, 2, 4, 8, 16, 32)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount


class Gauge:
    """An instantaneous level with min/max watermarks.

    The watermarks cover every value the gauge has taken since creation
    (or the last :meth:`reset`), so "queue depth never went negative" is
    checkable from a snapshot alone.
    """

    __slots__ = ("value", "min", "max")

    def __init__(self) -> None:
        self.value = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def set(self, value: float) -> None:
        self.value = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def inc(self, amount: float = 1) -> None:
        self.set(self.value + amount)

    def dec(self, amount: float = 1) -> None:
        self.set(self.value - amount)

    def reset(self) -> None:
        self.value = 0.0
        self.min = None
        self.max = None


class Histogram:
    """Fixed-bucket histogram.

    ``buckets`` are inclusive upper bounds; one implicit overflow bucket
    catches everything above the last bound.  Mean/min/max are tracked
    exactly regardless of bucketing.
    """

    __slots__ = ("buckets", "counts", "count", "sum", "min", "max")

    def __init__(self, buckets: Sequence[float] = DEPTH_BUCKETS) -> None:
        if not buckets:
            raise ValueError("histogram needs at least one bucket bound")
        bounds = tuple(buckets)
        if list(bounds) != sorted(bounds):
            raise ValueError("bucket bounds must be increasing")
        self.buckets = bounds
        self.counts: List[int] = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.buckets, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    @property
    def overflow(self) -> int:
        """Observations above the last bucket bound.  Explicit so a
        saturated tail is visible in snapshots (a histogram whose
        overflow dominates needs wider buckets, not trust)."""
        return self.counts[-1]

    def quantile(self, q: float) -> float:
        """Approximate quantile from the bucket counts (upper bound of
        the bucket holding the q-th observation; ``inf`` if it landed in
        the overflow bucket)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= target:
                if index < len(self.buckets):
                    return float(self.buckets[index])
                return math.inf
        return math.inf  # pragma: no cover - cumulative covers count


class LogHistogram:
    """Log-scaled (HDR-style) histogram with bounded relative error.

    Bucket upper bounds grow geometrically from ``min_value`` by
    ``growth`` per bucket (default ``10 ** (1/20)``, about 12% wide, so
    any quantile is resolved to within ~6% relative error — fine enough
    for p999 tail analysis where the fixed :data:`LATENCY_BUCKETS_US`
    quantize far too coarsely).  Values at or below ``min_value`` land
    in an explicit underflow bucket; values above ``max_value`` in an
    explicit overflow bucket, so saturated tails stay visible.  Exact
    count/sum/min/max are tracked regardless of bucketing.
    """

    __slots__ = ("min_value", "growth", "bounds", "counts", "underflow",
                 "overflow", "count", "sum", "min", "max", "_log_min",
                 "_log_growth")

    def __init__(self, min_value: float = 1e-3, max_value: float = 1e7,
                 growth: Optional[float] = None) -> None:
        if min_value <= 0:
            raise ValueError("min_value must be positive")
        if max_value <= min_value:
            raise ValueError("max_value must exceed min_value")
        growth = 10.0 ** (1.0 / 20.0) if growth is None else growth
        if growth <= 1.0:
            raise ValueError("growth must be > 1")
        self.min_value = min_value
        self.growth = growth
        self._log_min = math.log(min_value)
        self._log_growth = math.log(growth)
        buckets = math.ceil(
            (math.log(max_value) - self._log_min) / self._log_growth)
        self.bounds = tuple(min_value * growth ** (index + 1)
                            for index in range(buckets))
        self.counts: List[int] = [0] * buckets
        self.underflow = 0
        self.overflow = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= self.min_value:
            self.underflow += 1
            return
        index = int((math.log(value) - self._log_min)
                    / self._log_growth)
        # Float rounding can land one bucket low; never one high.
        while (index < len(self.bounds)
               and self.bounds[index] < value):
            index += 1
        if index >= len(self.bounds):
            self.overflow += 1
        else:
            self.counts[index] += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Quantile with geometric interpolation inside the holding
        bucket, clamped to the exact observed [min, max]."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be within [0, 1]")
        if self.count == 0:
            return 0.0
        target = q * self.count
        cumulative = self.underflow
        if cumulative >= target:
            value = self.min_value
        else:
            value = None
            for index, bucket_count in enumerate(self.counts):
                if bucket_count == 0:
                    continue
                if cumulative + bucket_count >= target:
                    lower = (self.min_value if index == 0
                             else self.bounds[index - 1])
                    fraction = (target - cumulative) / bucket_count
                    value = lower * self.growth ** fraction
                    break
                cumulative += bucket_count
            if value is None:  # landed in the overflow bucket
                value = self.max
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def cumulative_buckets(self) -> List[tuple]:
        """``(upper_bound, cumulative_count)`` pairs in Prometheus
        ``le`` convention; the underflow bucket surfaces as
        ``le=min_value`` and the caller adds ``+Inf`` = count."""
        pairs = [(self.min_value, self.underflow)]
        cumulative = self.underflow
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            pairs.append((bound, cumulative))
        return pairs

    def to_dict(self) -> Dict[str, object]:
        return {
            "min_value": self.min_value,
            "growth": self.growth,
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "underflow": self.underflow,
            "overflow": self.overflow,
            "count": self.count,
            "sum": self.sum,
            "mean": self.mean,
            "min": self.min,
            "max": self.max,
            "quantiles": {label: self.quantile(q) for label, q in
                          (("p50", 0.50), ("p90", 0.90),
                           ("p99", 0.99), ("p999", 0.999))},
        }


class MetricsRegistry:
    """Named instruments, created on first use, snapshotted as dicts."""

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._log_histograms: Dict[str, LogHistogram] = {}

    # -- instrument factories (idempotent per name) --------------------
    def counter(self, name: str) -> Counter:
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        instrument = self._histograms.get(name)
        if instrument is None:
            instrument = self._histograms[name] = Histogram(
                buckets if buckets is not None else DEPTH_BUCKETS)
        return instrument

    def log_histogram(self, name: str, min_value: float = 1e-3,
                      max_value: float = 1e7,
                      growth: Optional[float] = None) -> LogHistogram:
        instrument = self._log_histograms.get(name)
        if instrument is None:
            instrument = self._log_histograms[name] = LogHistogram(
                min_value=min_value, max_value=max_value, growth=growth)
        return instrument

    # -- export --------------------------------------------------------
    def to_dict(self) -> Dict[str, Dict]:
        """Plain-dict snapshot of every instrument."""
        return {
            "counters": {name: counter.value
                         for name, counter in self._counters.items()},
            "gauges": {name: {"value": gauge.value, "min": gauge.min,
                              "max": gauge.max}
                       for name, gauge in self._gauges.items()},
            "histograms": {
                name: {
                    "buckets": list(histogram.buckets),
                    "counts": list(histogram.counts),
                    "count": histogram.count,
                    "sum": histogram.sum,
                    "mean": histogram.mean,
                    "min": histogram.min,
                    "max": histogram.max,
                    "overflow": histogram.overflow,
                }
                for name, histogram in self._histograms.items()
            },
            "log_histograms": {
                name: histogram.to_dict()
                for name, histogram in self._log_histograms.items()
            },
        }

    def snapshot(self) -> Dict[str, Dict]:
        return self.to_dict()

    def write_json(self, path) -> None:
        with open(path, "w") as handle:
            json.dump(self.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")


class ScopedMetrics:
    """View of a registry that prefixes every instrument name.

    ``ScopedMetrics(registry, "port.p0")`` turns a request for
    ``engine.arrivals`` into the registry instrument
    ``port.p0.engine.arrivals`` — the per-port metrics hook: each
    :class:`~repro.sim.port.Port` hands its engine/scheduler a scoped
    view of the dataplane's single registry, and the name prefix flows
    unchanged into JSON snapshots and the Prometheus exposition (one
    series per port, no export changes needed).  Scopes nest:
    ``ScopedMetrics(scoped, "inner")`` prepends outer-first.

    This is a *view* over the shared registry — never wrap the null
    registry; use :func:`scoped` which returns null/None unchanged so
    the ``metrics is NULL_METRICS`` fast paths stay intact.
    """

    __slots__ = ("base", "prefix")

    def __init__(self, base, prefix: str) -> None:
        if not prefix:
            raise ValueError("scope prefix must be non-empty")
        if isinstance(base, ScopedMetrics):
            prefix = f"{base.prefix}.{prefix}"
            base = base.base
        self.base = base
        self.prefix = prefix

    def counter(self, name: str) -> Counter:
        return self.base.counter(f"{self.prefix}.{name}")

    def gauge(self, name: str) -> Gauge:
        return self.base.gauge(f"{self.prefix}.{name}")

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        return self.base.histogram(f"{self.prefix}.{name}", buckets)

    def log_histogram(self, name: str, min_value: float = 1e-3,
                      max_value: float = 1e7,
                      growth: Optional[float] = None) -> LogHistogram:
        return self.base.log_histogram(
            f"{self.prefix}.{name}", min_value=min_value,
            max_value=max_value, growth=growth)

    def to_dict(self) -> Dict[str, Dict]:
        return self.base.to_dict()

    def snapshot(self) -> Dict[str, Dict]:
        return self.base.snapshot()

    def write_json(self, path) -> None:
        self.base.write_json(path)


def scoped(metrics, prefix: str):
    """A view of ``metrics`` prefixing instrument names with ``prefix``.

    Returns ``metrics`` unchanged when it is ``None`` or the shared null
    registry, preserving the identity-checked fast paths downstream.
    """
    from repro.obs.scope import NULL_METRICS
    if metrics is None or metrics is NULL_METRICS:
        return metrics
    return ScopedMetrics(metrics, prefix)
