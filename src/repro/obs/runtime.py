"""Wall-clock runtime telemetry: who burns the host CPU, and is the
run still alive?

Everything else in :mod:`repro.obs` observes *simulated* time.  This
module observes the **host**: which repro component (event queue,
ordered-list backend, scheduler framework, buffer admission, analyzer)
actually consumes wall-clock time, and — for long sweeps — whether the
run is still making progress.  Three families live here:

* :class:`PhaseTimer` / :class:`RuntimeProfiler` — deterministic scoped
  phase timers (the :class:`repro.obs.scope.Span` idea, extended to
  nested exclusive-time accounting with an injectable clock) plus an
  optional background :class:`SamplingProfiler` whose samples are
  attributed to repro components by walking the stack
  (:func:`attribute_stack`).  The combined result is a
  :class:`RuntimeReport` with self-accounted profiler overhead.
* :class:`NullRuntimeProfiler` — the do-nothing stand-in mirroring
  :class:`~repro.obs.scope.NullTracer`: ``phase()`` hands back the
  shared null span, ``report()`` is empty, and the profiled code path
  is byte-identical to an uninstrumented run.
* :class:`SweepHeartbeat` — liveness reporting for
  :func:`repro.experiments.runner.run_sweep`: points completed,
  per-point wall time, ETA, and worker health, surfaced on a stream
  (stderr by default) and as ``mark`` trace events.

Sampling caveats: the sampler reads ``sys._current_frames()`` from a
daemon thread, so it sees the target thread only at sample boundaries —
attribution is statistical (±1 sample per interval), blind to C-level
time inside a single bytecode, and samples landing in stdlib frames are
charged to the nearest repro caller on the stack.  Anything with no
repro frame at all is charged to :data:`OTHER`.
"""

from __future__ import annotations

import sys
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.obs.scope import NULL_SPAN

#: Attribution bucket for stacks containing no repro frame.
OTHER = "other"
#: Dotted-module depth kept when naming a component:
#: ``repro.core.pieo.structures`` -> ``core.pieo``.
COMPONENT_DEPTH = 2
#: Default sampling interval (seconds).
DEFAULT_INTERVAL_S = 0.002
#: Schema tag stamped on serialized runtime reports.
RUNTIME_SCHEMA_VERSION = 1

#: Modules never credited with samples: the profiler itself would
#: otherwise absorb samples that land in its own bookkeeping.
_SELF_MODULES = ("repro.obs.runtime",)


def component_of(module: Optional[str]) -> Optional[str]:
    """Map a module name to its repro component, or ``None``.

    ``repro.sim.events`` -> ``sim.events``; ``repro.errors`` ->
    ``errors``; profiler-internal and non-repro modules -> ``None``.
    """
    if not module:
        return None
    if module in _SELF_MODULES:
        return None
    if module == "repro":
        return "repro"
    if not module.startswith("repro."):
        return None
    parts = module.split(".")[1:]
    return ".".join(parts[:COMPONENT_DEPTH])


def attribute_stack(modules: Iterable[Optional[str]]) -> str:
    """Attribute one sampled stack, given module names innermost first.

    The innermost frame that belongs to a repro component wins, so
    stdlib time (``heapq`` called from ``repro.sim.events``) is charged
    to its repro caller.  Stacks with no repro frame return
    :data:`OTHER`.
    """
    for module in modules:
        component = component_of(module)
        if component is not None:
            return component
    return OTHER


def attribute_frame(frame) -> str:
    """Attribute a live frame object (innermost) via its caller chain."""
    modules: List[Optional[str]] = []
    while frame is not None:
        modules.append(frame.f_globals.get("__name__"))
        frame = frame.f_back
    return attribute_stack(modules)


# ----------------------------------------------------------------------
# Deterministic scoped phase timers
# ----------------------------------------------------------------------
class _Phase:
    """Context manager for one :meth:`PhaseTimer.phase` scope."""

    __slots__ = ("_timer", "name")

    def __init__(self, timer: "PhaseTimer", name: str) -> None:
        self._timer = timer
        self.name = name

    def __enter__(self) -> "_Phase":
        self._timer._enter(self.name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._timer._exit(self.name)


class PhaseTimer:
    """Nested scoped phase timers with *exclusive* wall accounting.

    ``with timer.phase("run"): ...`` charges wall time to ``"run"``
    except while a nested phase is open — the exclusive times of all
    phases sum to the total time spent inside any phase, so a phase
    breakdown is also an attribution.  The clock is injectable, which
    makes the accounting deterministic under test.
    """

    def __init__(self, clock=time.perf_counter) -> None:
        self._clock = clock
        self.totals: Dict[str, float] = {}
        self.counts: Dict[str, int] = {}
        self._stack: List[str] = []
        self._mark = 0.0

    def _charge(self, now: float) -> None:
        if self._stack:
            top = self._stack[-1]
            self.totals[top] = self.totals.get(top, 0.0) \
                + (now - self._mark)
        self._mark = now

    def _enter(self, name: str) -> None:
        self._charge(self._clock())
        self._stack.append(name)
        self.totals.setdefault(name, 0.0)
        self.counts[name] = self.counts.get(name, 0) + 1

    def _exit(self, name: str) -> None:
        self._charge(self._clock())
        if not self._stack or self._stack[-1] != name:
            raise RuntimeError(
                f"phase nesting violated: exiting {name!r} but stack "
                f"is {self._stack!r}")
        self._stack.pop()

    def phase(self, name: str) -> _Phase:
        return _Phase(self, name)

    def snapshot(self) -> Dict[str, Dict[str, float]]:
        return {name: {"wall_s": self.totals[name],
                       "count": self.counts.get(name, 0)}
                for name in self.totals}


# ----------------------------------------------------------------------
# Background sampling profiler
# ----------------------------------------------------------------------
class SamplingProfiler:
    """Thread-based stack sampler attributing host time to components.

    Samples the target thread (by default the thread that calls
    :meth:`start`) every ``interval_s`` seconds via
    ``sys._current_frames()`` and attributes each stack with
    :func:`attribute_frame`.  Time spent inside the sampler's own loop
    body is self-accounted in :attr:`overhead_s`, so reports can state
    how much of the measured wall clock the measurement itself cost.
    """

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 target_thread_id: Optional[int] = None,
                 clock=time.perf_counter) -> None:
        if interval_s <= 0:
            raise ValueError("interval_s must be positive")
        self.interval_s = interval_s
        self._target = target_thread_id
        self._clock = clock
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self.overhead_s = 0.0
        self.wall_s = 0.0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None

    @property
    def running(self) -> bool:
        return self._thread is not None

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("sampling profiler already running")
        if self._target is None:
            self._target = threading.get_ident()
        self._stop.clear()
        self._started_at = self._clock()
        self._thread = threading.Thread(
            target=self._loop, name="repro-sampling-profiler",
            daemon=True)
        self._thread.start()
        return self

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            began = self._clock()
            frame = sys._current_frames().get(self._target)
            if frame is not None:
                component = attribute_frame(frame)
                self.samples[component] = \
                    self.samples.get(component, 0) + 1
                self.total_samples += 1
            del frame
            self.overhead_s += self._clock() - began

    def stop(self) -> "SamplingProfiler":
        if self._thread is None:
            return self
        self._stop.set()
        self._thread.join()
        self._thread = None
        if self._started_at is not None:
            self.wall_s += self._clock() - self._started_at
            self._started_at = None
        return self


# ----------------------------------------------------------------------
# Reports
# ----------------------------------------------------------------------
@dataclass
class RuntimeReport:
    """Combined wall-clock profile: samples, phases, self-overhead."""

    wall_s: float = 0.0
    interval_s: float = DEFAULT_INTERVAL_S
    samples: Dict[str, int] = field(default_factory=dict)
    phases: Dict[str, Dict[str, float]] = field(default_factory=dict)
    overhead_s: float = 0.0

    @property
    def total_samples(self) -> int:
        return sum(self.samples.values())

    def fractions(self) -> Dict[str, float]:
        total = self.total_samples
        if total == 0:
            return {}
        return {component: count / total
                for component, count in self.samples.items()}

    def attributed_fraction(self) -> float:
        """Share of samples landing in a *named* repro component."""
        total = self.total_samples
        if total == 0:
            return 0.0
        return 1.0 - self.samples.get(OTHER, 0) / total

    def to_dict(self) -> Dict[str, object]:
        return {
            "schema_version": RUNTIME_SCHEMA_VERSION,
            "kind": "runtime_profile",
            "wall_s": self.wall_s,
            "interval_s": self.interval_s,
            "samples": dict(self.samples),
            "phases": {name: dict(stats)
                       for name, stats in self.phases.items()},
            "overhead_s": self.overhead_s,
            "attributed_fraction": self.attributed_fraction(),
        }

    @classmethod
    def from_dict(cls, record: Dict[str, object]) -> "RuntimeReport":
        if not isinstance(record, dict):
            raise ValueError("runtime profile is not a JSON object")
        version = record.get("schema_version")
        if version != RUNTIME_SCHEMA_VERSION:
            raise ValueError(
                f"unsupported runtime profile schema {version!r}; "
                f"expected {RUNTIME_SCHEMA_VERSION}")
        if record.get("kind") != "runtime_profile":
            raise ValueError(
                f"not a runtime profile: kind={record.get('kind')!r}")
        samples = record.get("samples", {})
        phases = record.get("phases", {})
        if not isinstance(samples, dict) or not isinstance(phases, dict):
            raise ValueError(
                "runtime profile samples/phases must be objects")
        for component, count in samples.items():
            if not isinstance(count, int) or count < 0:
                raise ValueError(
                    f"sample count for {component!r} must be a "
                    f"non-negative integer, got {count!r}")
        return cls(wall_s=float(record.get("wall_s", 0.0)),
                   interval_s=float(record.get(
                       "interval_s", DEFAULT_INTERVAL_S)),
                   samples={str(k): v for k, v in samples.items()},
                   phases={str(k): dict(v) for k, v in phases.items()},
                   overhead_s=float(record.get("overhead_s", 0.0)))

    def merge(self, other: "RuntimeReport") -> "RuntimeReport":
        """Accumulate another report (e.g. per-round profiles) into a
        new combined report; intervals must match."""
        merged = RuntimeReport(
            wall_s=self.wall_s + other.wall_s,
            interval_s=self.interval_s,
            samples=dict(self.samples),
            phases={name: dict(stats)
                    for name, stats in self.phases.items()},
            overhead_s=self.overhead_s + other.overhead_s)
        for component, count in other.samples.items():
            merged.samples[component] = \
                merged.samples.get(component, 0) + count
        for name, stats in other.phases.items():
            into = merged.phases.setdefault(
                name, {"wall_s": 0.0, "count": 0})
            into["wall_s"] += stats.get("wall_s", 0.0)
            into["count"] += stats.get("count", 0)
        return merged

    def to_text(self) -> str:
        lines = [
            f"runtime profile: {self.wall_s:.3f} s wall, "
            f"{self.total_samples} samples @ "
            f"{self.interval_s * 1e3:.1f} ms, "
            f"{self.attributed_fraction() * 100:.1f}% attributed to "
            f"repro components, sampler overhead {self.overhead_s:.4f} s"
        ]
        fractions = self.fractions()
        for component, fraction in sorted(
                fractions.items(), key=lambda item: -item[1]):
            lines.append(f"  {component:<22s} {fraction * 100:6.1f}%  "
                         f"({self.samples[component]} samples)")
        if self.phases:
            lines.append("phases (exclusive wall):")
            for name, stats in sorted(
                    self.phases.items(),
                    key=lambda item: -item[1].get("wall_s", 0.0)):
                lines.append(
                    f"  {name:<22s} {stats.get('wall_s', 0.0):8.3f} s  "
                    f"x{int(stats.get('count', 0))}")
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Profiler facades (live + null)
# ----------------------------------------------------------------------
class RuntimeProfiler:
    """Scoped phase timers plus an optional background sampler.

    ``with RuntimeProfiler() as profiler: ...`` (or explicit
    ``start()``/``stop()``) brackets the profiled region;
    ``profiler.phase("run")`` scopes deterministic phase accounting
    inside it; :meth:`report` returns the combined
    :class:`RuntimeReport`.
    """

    enabled = True

    def __init__(self, interval_s: float = DEFAULT_INTERVAL_S,
                 sample: bool = True, clock=time.perf_counter) -> None:
        self._clock = clock
        self.phases = PhaseTimer(clock=clock)
        self.sampler = (SamplingProfiler(interval_s, clock=clock)
                        if sample else None)
        self.interval_s = interval_s
        self._started_at: Optional[float] = None
        self._wall_s = 0.0

    def start(self) -> "RuntimeProfiler":
        if self._started_at is not None:
            raise RuntimeError("runtime profiler already started")
        self._started_at = self._clock()
        if self.sampler is not None:
            self.sampler.start()
        return self

    def stop(self) -> "RuntimeProfiler":
        if self.sampler is not None:
            self.sampler.stop()
        if self._started_at is not None:
            self._wall_s += self._clock() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "RuntimeProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop()

    def phase(self, name: str) -> _Phase:
        return self.phases.phase(name)

    def report(self) -> RuntimeReport:
        return RuntimeReport(
            wall_s=self._wall_s,
            interval_s=self.interval_s,
            samples=dict(self.sampler.samples)
            if self.sampler is not None else {},
            phases=self.phases.snapshot(),
            overhead_s=self.sampler.overhead_s
            if self.sampler is not None else 0.0)


class NullRuntimeProfiler:
    """Runtime profiler that measures nothing (mirrors ``NullTracer``).

    ``phase()`` hands back the shared stateless null span,
    ``start``/``stop`` are no-ops, and ``report()`` is empty — so the
    disabled path adds one no-op method call per phase site and zero
    background threads.
    """

    enabled = False

    def start(self) -> "NullRuntimeProfiler":
        return self

    def stop(self) -> "NullRuntimeProfiler":
        return self

    def __enter__(self) -> "NullRuntimeProfiler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass

    def phase(self, name: str):
        return NULL_SPAN

    def report(self) -> RuntimeReport:
        return RuntimeReport()


#: Shared stateless no-op runtime profiler.
NULL_RUNTIME_PROFILER = NullRuntimeProfiler()


# ----------------------------------------------------------------------
# Sweep heartbeat
# ----------------------------------------------------------------------
class _HeartbeatPoint:
    """Times one sweep point and reports it on exit."""

    __slots__ = ("_heartbeat", "index", "_began")

    def __init__(self, heartbeat: "SweepHeartbeat", index: int) -> None:
        self._heartbeat = heartbeat
        self.index = index
        self._began = 0.0

    def __enter__(self) -> "_HeartbeatPoint":
        self._began = self._heartbeat._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        wall = self._heartbeat._clock() - self._began
        if exc_type is None:
            self._heartbeat.point_done(self.index, wall)
        else:
            self._heartbeat.point_failed(self.index, exc)


class SweepHeartbeat:
    """Sweep liveness: points completed, point wall time, ETA, health.

    Every completed point emits one line on ``stream`` (stderr by
    default) and, when a tracer is attached, one ``mark`` event labelled
    ``sweep.heartbeat`` — so long sweeps are observable both at the
    terminal and in the trace.  Heartbeat marks carry wall-clock fields
    and are therefore **not** byte-identical across runs; attach one
    only when liveness matters more than trace reproducibility
    (``--heartbeat`` on the experiments CLI).
    """

    def __init__(self, label: str = "sweep", stream=None, tracer=None,
                 clock=time.perf_counter,
                 min_interval_s: float = 0.0) -> None:
        self.label = label
        self._stream = stream
        self.tracer = tracer
        self._clock = clock
        self.min_interval_s = min_interval_s
        self.total = 0
        self.done = 0
        self.failures = 0
        self.jobs = 1
        self.walls: List[float] = []
        self._began: Optional[float] = None
        self._last_emit: Optional[float] = None

    @property
    def stream(self):
        return self._stream if self._stream is not None else sys.stderr

    def _line(self, text: str) -> None:
        print(f"[{self.label}] {text}", file=self.stream, flush=True)

    def _mark(self, phase: str, **fields) -> None:
        if self.tracer is not None:
            self.tracer.mark(0.0, "sweep.heartbeat", phase=phase,
                             done=self.done, total=self.total,
                             jobs=self.jobs, failures=self.failures,
                             **fields)

    def begin(self, total: int, jobs: int = 1) -> None:
        self.total = total
        self.jobs = max(1, jobs)
        self.done = 0
        self.failures = 0
        self.walls = []
        self._began = self._clock()
        self._last_emit = None
        self._line(f"starting {total} point(s), jobs={self.jobs}")
        self._mark("begin")

    def eta_s(self) -> Optional[float]:
        if not self.walls or self.total <= self.done:
            return None
        average = sum(self.walls) / len(self.walls)
        return (self.total - self.done) * average / self.jobs

    def point(self, index: int) -> _HeartbeatPoint:
        """Context manager timing one sequential point."""
        return _HeartbeatPoint(self, index)

    def point_done(self, index: int, wall_s: float) -> None:
        self.done += 1
        self.walls.append(wall_s)
        average = sum(self.walls) / len(self.walls)
        eta = self.eta_s()
        now = self._clock()
        final = self.done >= self.total
        throttled = (self._last_emit is not None and not final
                     and now - self._last_emit < self.min_interval_s)
        if not throttled:
            self._last_emit = now
            eta_text = f", eta {eta:.2f}s" if eta is not None else ""
            self._line(f"{self.done}/{self.total} done | point {index}: "
                       f"{wall_s:.3f}s | avg {average:.3f}s{eta_text}")
        self._mark("point", point=index, wall_s=round(wall_s, 6),
                   eta_s=round(eta, 6) if eta is not None else None)

    def point_failed(self, index: int, error: BaseException) -> None:
        self.failures += 1
        self._line(f"point {index} FAILED: {error!r}")
        self._mark("failed", point=index, error=repr(error))

    def finish(self) -> None:
        elapsed = (self._clock() - self._began
                   if self._began is not None else 0.0)
        average = (sum(self.walls) / len(self.walls)
                   if self.walls else 0.0)
        health = ("all workers healthy" if self.failures == 0
                  else f"{self.failures} failure(s)")
        self._line(f"{self.done}/{self.total} points in {elapsed:.2f}s "
                   f"(avg {average:.3f}s/point, jobs={self.jobs}, "
                   f"{health})")
        self._mark("finish", elapsed_s=round(elapsed, 6))


class NullSweepHeartbeat:
    """Heartbeat that reports nothing (the ``run_sweep`` default)."""

    total = 0
    done = 0
    failures = 0

    def begin(self, total: int, jobs: int = 1) -> None:
        pass

    def point(self, index: int):
        return NULL_SPAN

    def point_done(self, index: int, wall_s: float) -> None:
        pass

    def point_failed(self, index: int, error: BaseException) -> None:
        pass

    def finish(self) -> None:
        pass


#: Shared stateless no-op heartbeat.
NULL_HEARTBEAT = NullSweepHeartbeat()
