"""Standard-format exporters for traces and metrics.

Two formats so the observability data plugs into off-the-shelf tooling:

* **Prometheus text exposition** (:func:`prometheus_text` /
  :func:`prometheus_from_snapshot`) — every counter, gauge (with
  min/max watermarks), fixed-bucket histogram, and log-scaled
  :class:`~repro.obs.metrics.LogHistogram` of a
  :class:`~repro.obs.metrics.MetricsRegistry` snapshot, with correct
  ``# TYPE`` annotations and cumulative ``le`` buckets;
* **Perfetto / Chrome ``trace_event`` JSON** (:func:`perfetto_trace`)
  — loads in ``ui.perfetto.dev`` or ``chrome://tracing``.  Flows (and
  hierarchy nodes) become tracks; each ordered-list residence
  (enqueue→dequeue) and each wire serialization becomes a complete
  ``X`` span; drops and kicks become instant events.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, Hashable, List, Optional

from repro.obs.analyze import TraceAnalysis

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")

#: Sim seconds -> trace_event microseconds.
_US = 1e6


def _metric_name(name: str, namespace: str = "repro") -> str:
    sanitized = _NAME_RE.sub("_", str(name))
    return f"{namespace}_{sanitized}" if namespace else sanitized


def _format_value(value) -> str:
    if value is None:
        return "NaN"
    if isinstance(value, float):
        if math.isnan(value):
            return "NaN"
        if math.isinf(value):
            return "+Inf" if value > 0 else "-Inf"
        return repr(value)
    return str(value)


def _histogram_lines(name: str, bounds: List[float],
                     cumulative: List[int], count: int,
                     total: float) -> List[str]:
    """Prometheus histogram series: cumulative ``le`` buckets capped by
    ``+Inf`` = count, plus ``_sum`` / ``_count``."""
    lines = [f"# TYPE {name} histogram"]
    for bound, running in zip(bounds, cumulative):
        lines.append(
            f'{name}_bucket{{le="{_format_value(float(bound))}"}} '
            f"{running}")
    lines.append(f'{name}_bucket{{le="+Inf"}} {count}')
    lines.append(f"{name}_sum {_format_value(total)}")
    lines.append(f"{name}_count {count}")
    return lines


def prometheus_from_snapshot(snapshot: Dict[str, Dict],
                             namespace: str = "repro") -> str:
    """Render a :meth:`MetricsRegistry.snapshot` dict (live, or re-read
    from a ``--metrics`` JSON file) in Prometheus text exposition
    format."""
    lines: List[str] = []
    for name, value in sorted(snapshot.get("counters", {}).items()):
        metric = _metric_name(name, namespace) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {_format_value(value)}")
    for name, gauge in sorted(snapshot.get("gauges", {}).items()):
        metric = _metric_name(name, namespace)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {_format_value(gauge.get('value'))}")
        for watermark in ("min", "max"):
            level = gauge.get(watermark)
            if level is None:
                continue
            lines.append(f"# TYPE {metric}_{watermark} gauge")
            lines.append(
                f"{metric}_{watermark} {_format_value(level)}")
    for name, histogram in sorted(
            snapshot.get("histograms", {}).items()):
        metric = _metric_name(name, namespace)
        bounds = list(histogram.get("buckets", []))
        counts = list(histogram.get("counts", []))
        cumulative, running = [], 0
        for bucket_count in counts[:len(bounds)]:
            running += bucket_count
            cumulative.append(running)
        lines.extend(_histogram_lines(
            metric, bounds, cumulative, histogram.get("count", 0),
            histogram.get("sum", 0.0)))
    for name, histogram in sorted(
            snapshot.get("log_histograms", {}).items()):
        metric = _metric_name(name, namespace)
        bounds = [histogram.get("min_value", 0.0)]
        bounds += list(histogram.get("bounds", []))
        cumulative = [histogram.get("underflow", 0)]
        running = cumulative[0]
        for bucket_count in histogram.get("counts", []):
            running += bucket_count
            cumulative.append(running)
        lines.extend(_histogram_lines(
            metric, bounds, cumulative, histogram.get("count", 0),
            histogram.get("sum", 0.0)))
    return "\n".join(lines) + ("\n" if lines else "")


def prometheus_text(registry, namespace: str = "repro") -> str:
    """Prometheus text exposition of a live
    :class:`~repro.obs.metrics.MetricsRegistry`."""
    return prometheus_from_snapshot(registry.snapshot(),
                                    namespace=namespace)


# ----------------------------------------------------------------------
# Perfetto / Chrome trace_event JSON
# ----------------------------------------------------------------------
_ENGINE_TRACK = "engine"


def _json_arg(value):
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)
    return value


def perfetto_trace(analysis: TraceAnalysis,
                   process_name: str = "pieo-sim") -> Dict[str, object]:
    """Build a Chrome/Perfetto ``trace_event`` JSON object from an
    analyzed run.

    One *process* (pid) per dataplane port — events without a ``port``
    label (single-link traces) share one process, so single-port traces
    render exactly as before, while a multi-port trace shows each
    port's flows as a separate named process group.  Within a process:
    one track (tid) per flow or hierarchy node; complete ``X`` events
    (begin + duration, so begin/end are balanced by construction) for
    ordered-list residences (``queued``) and wire serializations
    (``tx``); instant events for drops and engine kicks.  Events are
    sorted by timestamp, so every track is monotonic.
    """
    pids: Dict[Optional[str], int] = {}
    track_ids: Dict[tuple, int] = {}

    def pid_of(port: Optional[str]) -> int:
        pid = pids.get(port)
        if pid is None:
            pid = pids[port] = len(pids) + 1
        return pid

    def track_of(port: Optional[str], name: Hashable) -> int:
        key = (port, name)
        tid = track_ids.get(key)
        if tid is None:
            tid = track_ids[key] = len(track_ids)
        return tid

    # The engine track comes first (tid 0), as in single-link exports.
    track_of(None, _ENGINE_TRACK)

    t0 = analysis.t_min if analysis.t_min is not None else 0.0
    events: List[Dict[str, object]] = []

    def us(t: float) -> float:
        return round((t - t0) * _US, 3)

    for episode in analysis.episodes:
        args = {"rank": _json_arg(episode.rank),
                "send_time": _json_arg(episode.send_time),
                "eligible_on_enqueue": episode.eligible_on_enqueue}
        if episode.eligible_at is not None:
            args["eligible_at_us"] = us(episode.eligible_at)
        if episode.requeue:
            args["requeue"] = True
        events.append({
            "name": "queued", "cat": "sched", "ph": "X",
            "ts": us(episode.enqueue_t),
            "dur": max(round((episode.dequeue_t - episode.enqueue_t)
                             * _US, 3), 0.0),
            "pid": pid_of(episode.port),
            "tid": track_of(episode.port, episode.flow_id),
            "args": args,
        })
    for timeline in analysis.timelines:
        if timeline.delivered:
            events.append({
                "name": f"tx pkt {timeline.packet_id}", "cat": "link",
                "ph": "X", "ts": us(timeline.depart_start),
                "dur": max(round(timeline.serialization * _US, 3),
                           0.0),
                "pid": pid_of(timeline.port),
                "tid": track_of(timeline.port, timeline.flow_id),
                "args": {
                    "size_bytes": timeline.size_bytes,
                    "latency_us": round(
                        (timeline.latency or 0.0) * _US, 3),
                    "queueing_us": round(
                        (timeline.queueing_wait or 0.0) * _US, 3),
                    "eligibility_us": round(
                        (timeline.eligibility_wait or 0.0) * _US, 3),
                },
            })
        if timeline.dropped and timeline.drop_t is not None:
            events.append({
                "name": "drop", "cat": "sched", "ph": "i", "s": "t",
                "ts": us(timeline.drop_t),
                "pid": pid_of(timeline.port),
                "tid": track_of(timeline.port, timeline.flow_id),
                "args": {"reason": timeline.drop_reason},
            })
    for record in analysis.events:
        if record.get("kind") != "kick":
            continue
        port = record.get("port")
        events.append({
            "name": "kick", "cat": "engine", "ph": "i", "s": "t",
            "ts": us(record["t"]), "pid": pid_of(port),
            "tid": track_of(port, _ENGINE_TRACK), "args": {},
        })
    if not pids:
        pid_of(None)  # empty trace still names its (single) process
    events.sort(key=lambda event: (event["ts"], event["tid"]))
    metadata: List[Dict[str, object]] = []
    for port, pid in sorted(pids.items(),
                            key=lambda item: item[1]):
        name = (process_name if port is None
                else f"{process_name} [port {port}]")
        metadata.append({
            "name": "process_name", "ph": "M", "pid": pid,
            "args": {"name": name},
        })
    for (port, name), tid in sorted(track_ids.items(),
                                    key=lambda item: item[1]):
        pid = pids.get(port)
        if pid is None:
            continue  # track pre-registered but never used
        metadata.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": str(name)},
        })
        metadata.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid,
            "tid": tid, "args": {"sort_index": tid},
        })
    return {"traceEvents": metadata + events,
            "displayTimeUnit": "ms"}


def write_perfetto(path, analysis: TraceAnalysis,
                   process_name: str = "pieo-sim") -> int:
    """Write the Perfetto JSON for one analyzed run; returns the number
    of trace events written (metadata excluded)."""
    trace = perfetto_trace(analysis, process_name=process_name)
    with open(path, "w") as handle:
        json.dump(trace, handle, separators=(",", ":"))
        handle.write("\n")
    return sum(1 for event in trace["traceEvents"]
               if event.get("ph") != "M")


def write_prometheus(path, snapshot: Dict[str, Dict],
                     namespace: str = "repro") -> None:
    with open(path, "w") as handle:
        handle.write(prometheus_from_snapshot(snapshot,
                                              namespace=namespace))


def flow_report_json(analysis: TraceAnalysis,
                     starvation_threshold: Optional[float] = None,
                     ) -> Dict[str, object]:
    """Machine-readable per-flow report (the CI artifact)."""
    reports = analysis.flows(starvation_threshold=starvation_threshold)
    return {
        "flows": {str(flow_id): report.to_dict()
                  for flow_id, report in sorted(
                      reports.items(), key=lambda item: str(item[0]))},
        "packets": len(analysis.timelines),
        "issues": [str(issue) for issue in analysis.audit()],
    }
