"""Structured event tracing with sim-time stamps.

A :class:`Tracer` collects typed :class:`TraceEvent` records from every
instrumented layer — packet arrivals and departures from the transmit
engine, ordered-list enqueues/dequeues from the scheduling framework,
timer lifecycle from the simulator and the engine's retry path, link
busy/idle transitions — and can either retain them (unbounded, or in a
bounded ring buffer) or stream them to a JSONL sink as they happen.

The event vocabulary is fixed (:data:`EVENT_KINDS`); each event is one
``kind`` plus a small dict of fields, stamped with the *simulated* time
it describes.  Wall-clock latencies enter the stream only through
``span`` events (see :class:`repro.obs.scope.Span`).

Analysis code consumes events in-process (:meth:`Tracer.events_of`) or
offline from the JSONL export, one JSON object per line::

    {"t": 0.0003072, "kind": "departure", "flow_id": "n6.f2", ...}
"""

from __future__ import annotations

import json
import math
from collections import deque
from dataclasses import dataclass, field
from typing import (Dict, Hashable, IO, Iterable, Iterator, List,
                    Optional, Sequence, Union)

from repro.obs.scope import NULL_TRACER, Span

#: The closed vocabulary of trace event kinds.
EVENT_KINDS = (
    "arrival",       # packet entered the scheduler
    "enqueue",       # flow element inserted into an ordered list
    "dequeue",       # flow element extracted from an ordered list
    "departure",     # packet handed to the wire
    "drop",          # packet discarded (admission / policy)
    "timer_arm",     # a timer was armed
    "timer_fire",    # an armed timer fired
    "timer_cancel",  # an armed timer was cancelled before firing
    "kick",          # transmit engine requested a scheduling attempt
    "link_busy",     # link started serializing a packet
    "link_idle",     # link finished its current batch
    "mark",          # free-form annotation (run/sweep boundaries)
    "span",          # wall-clock latency of an instrumented region
)


def _json_safe(value):
    """JSON cannot express non-finite floats; encode them as strings so
    every exported line parses under strict decoders."""
    if isinstance(value, float) and not math.isfinite(value):
        return repr(value)  # 'inf' / '-inf' / 'nan'
    return value


@dataclass
class TraceEvent:
    """One structured event: a kind, a sim-time stamp, and fields."""

    time: float
    kind: str
    fields: Dict[str, object] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, object]:
        record: Dict[str, object] = {"t": _json_safe(self.time),
                                     "kind": self.kind}
        for key, value in self.fields.items():
            record[key] = _json_safe(value)
        return record

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), separators=(",", ":"))

    def get(self, key: str, default=None):
        return self.fields.get(key, default)


class _TypedEmitters:
    """The typed event vocabulary, expressed in terms of ``self.emit``.

    Shared by :class:`Tracer` (which stores/streams events) and
    :class:`LabelledTracer` (which stamps constant fields and
    delegates), so both expose the identical instrumented-layer surface.
    """

    def arrival(self, time, flow_id: Hashable, size_bytes: int,
                packet_id=None, **fields) -> None:
        self.emit(time, "arrival", flow_id=flow_id,
                  size_bytes=size_bytes, packet_id=packet_id, **fields)

    def enqueue(self, time, flow_id: Hashable, rank, send_time,
                **fields) -> None:
        self.emit(time, "enqueue", flow_id=flow_id, rank=rank,
                  send_time=send_time, **fields)

    def dequeue(self, time, flow_id: Hashable, rank=None,
                **fields) -> None:
        self.emit(time, "dequeue", flow_id=flow_id, rank=rank, **fields)

    def departure(self, time, flow_id: Hashable, size_bytes: int,
                  packet_id=None, finish=None, **fields) -> None:
        self.emit(time, "departure", flow_id=flow_id,
                  size_bytes=size_bytes, packet_id=packet_id,
                  finish=finish, **fields)

    def drop(self, time, flow_id: Hashable, reason: str = "",
             **fields) -> None:
        self.emit(time, "drop", flow_id=flow_id, reason=reason, **fields)

    def timer_arm(self, time, timer_id, deadline,
                  scope: str = "sim", **fields) -> None:
        self.emit(time, "timer_arm", id=timer_id, deadline=deadline,
                  scope=scope, **fields)

    def timer_fire(self, time, timer_id, scope: str = "sim",
                   **fields) -> None:
        self.emit(time, "timer_fire", id=timer_id, scope=scope, **fields)

    def timer_cancel(self, time, timer_id, scope: str = "sim",
                     **fields) -> None:
        self.emit(time, "timer_cancel", id=timer_id, scope=scope,
                  **fields)

    def kick(self, time, at=None, **fields) -> None:
        self.emit(time, "kick", at=at, **fields)

    def link_busy(self, time, until=None, flow_id=None,
                  **fields) -> None:
        self.emit(time, "link_busy", until=until, flow_id=flow_id,
                  **fields)

    def link_idle(self, time, **fields) -> None:
        self.emit(time, "link_idle", **fields)

    def mark(self, time, label: str, **fields) -> None:
        """Free-form annotation, e.g. a sweep-point boundary."""
        self.emit(time, "mark", label=label, **fields)

    def span(self, name: str, sim_time: float = 0.0) -> Span:
        """``with tracer.span("schedule"):`` — wall-clock a region and
        emit its latency as a ``span`` event."""
        return Span(self, name, sim_time)


class Tracer(_TypedEmitters):
    """Collects and/or streams :class:`TraceEvent` records.

    Parameters
    ----------
    capacity:
        ``None`` retains every event (analysis mode).  An integer ``n``
        keeps only the most recent ``n`` events in a ring buffer
        (long-running mode; evictions are counted in :attr:`dropped`).
        ``0`` retains nothing — useful together with ``sink``.
    sink:
        Optional writable text stream; every event is additionally
        written to it immediately as one JSON line (JSONL export).
    """

    def __init__(self, capacity: Optional[int] = None,
                 sink: Optional[IO[str]] = None) -> None:
        if capacity is None:
            self._events: Union[List[TraceEvent],
                                deque] = []
        else:
            if capacity < 0:
                raise ValueError("capacity must be >= 0 or None")
            self._events = deque(maxlen=capacity)
        self._ring = capacity is not None
        self._sink = sink
        self._owns_sink = False
        #: Total events emitted (including ring evictions).
        self.emitted = 0
        #: Events evicted by the ring buffer.
        self.dropped = 0
        #: Emission count per event kind.
        self.counts: Dict[str, int] = {}
        self.enabled = True

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def open_jsonl(cls, path, capacity: Optional[int] = 0) -> "Tracer":
        """A tracer streaming every event to ``path`` as JSONL.

        By default nothing is retained in memory (``capacity=0``) so the
        tracer is safe for arbitrarily long runs; :meth:`close` flushes
        and closes the file.
        """
        tracer = cls(capacity=capacity, sink=open(path, "w"))
        tracer._owns_sink = True
        return tracer

    def close(self) -> None:
        if self._sink is not None:
            self._sink.flush()
            if self._owns_sink:
                self._sink.close()
            self._sink = None

    # ------------------------------------------------------------------
    # Core emission
    # ------------------------------------------------------------------
    def emit(self, time: float, kind: str, **fields) -> None:
        """Record one event; ``kind`` must come from
        :data:`EVENT_KINDS`."""
        if not self.enabled:
            return
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown trace event kind {kind!r}; "
                f"expected one of {', '.join(EVENT_KINDS)}")
        event = TraceEvent(time, kind, fields)
        if self._ring and self._events.maxlen is not None \
                and len(self._events) == self._events.maxlen:
            self.dropped += 1
        if not (self._ring and self._events.maxlen == 0):
            self._events.append(event)
        self.emitted += 1
        self.counts[kind] = self.counts.get(kind, 0) + 1
        if self._sink is not None:
            self._sink.write(event.to_json())
            self._sink.write("\n")

    # ------------------------------------------------------------------
    # Access and export
    # ------------------------------------------------------------------
    @property
    def events(self) -> Sequence[TraceEvent]:
        return self._events

    def events_of(self, *kinds: str) -> List[TraceEvent]:
        """Retained events restricted to the given kinds, in order."""
        wanted = set(kinds)
        return [event for event in self._events if event.kind in wanted]

    def iter_jsonl(self) -> Iterator[str]:
        for event in self._events:
            yield event.to_json()

    def write_jsonl(self, path) -> int:
        """Write every retained event to ``path``; returns the count."""
        count = 0
        with open(path, "w") as handle:
            for line in self.iter_jsonl():
                handle.write(line)
                handle.write("\n")
                count += 1
        return count

    def absorb_jsonl(self, lines: Iterable[str]) -> int:
        """Re-emit serialized trace lines (e.g. from a sharded sweep
        worker) into this tracer, preserving order; returns the count.

        Each line is parsed and re-emitted through :meth:`emit`, so
        retention, per-kind counts, and the sink observe absorbed events
        exactly as if they had been emitted locally.  Serialization
        round-trips byte-exactly: :func:`json` float formatting is
        shortest-repr stable and the non-finite string encodings of
        :func:`_json_safe` are revived with the :func:`read_jsonl`
        rules before re-encoding.
        """
        count = 0
        for line in lines:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if not isinstance(record, dict):
                raise ValueError("trace line is not a JSON object")
            record = _revive(record)
            time = record.pop("t")
            kind = record.pop("kind")
            self.emit(time, kind, **record)
            count += 1
        return count


class LabelledTracer(_TypedEmitters):
    """View of a tracer that stamps constant fields on every event.

    ``LabelledTracer(tracer, port="p0")`` makes every emitted event
    carry ``port: "p0"`` — the per-port instrumentation hook: each
    :class:`~repro.sim.port.Port` hands its components a labelled view
    of the dataplane's single tracer, and the analyzer/export layers
    split streams back out by the ``port`` field.  Explicit fields win
    over labels on collision; labelled views nest (inner labels win).

    This is a *view*: storage, retention, counts, and the JSONL sink all
    live on the base tracer.  Never wrap the null tracer — use
    :func:`labelled` which returns null/None bases unchanged, keeping
    the ``tracer is NULL_TRACER`` fast-path identity checks meaningful.
    """

    __slots__ = ("base", "labels")

    def __init__(self, base, **labels) -> None:
        self.base = base
        self.labels = labels

    def emit(self, time: float, kind: str, **fields) -> None:
        for key, value in self.labels.items():
            fields.setdefault(key, value)
        self.base.emit(time, kind, **fields)

    @property
    def enabled(self) -> bool:
        return self.base.enabled

    def __getattr__(self, name):
        # Everything that is not emission (events, counts, close, ...)
        # belongs to the base tracer.
        return getattr(self.base, name)


def labelled(tracer, **labels):
    """A view of ``tracer`` stamping ``labels`` on every event.

    Returns ``tracer`` unchanged when it is ``None``, the shared null
    tracer, or no labels were given — so call sites can label
    unconditionally without defeating the identity-checked
    ``is NULL_TRACER`` fast paths downstream.
    """
    if tracer is None or tracer is NULL_TRACER or not labels:
        return tracer
    return LabelledTracer(tracer, **labels)


#: Fields whose non-finite floats are string-encoded by
#: :func:`_json_safe` on export and revived back to floats by
#: :func:`read_jsonl`.  An allowlist, so a free-form string field that
#: legitimately holds the text ``"inf"`` is never corrupted.
NUMERIC_FIELDS = frozenset((
    "t", "rank", "send_time", "deadline", "finish", "until", "at",
    "eligible_at", "arrival_t", "wall_us",
))

_NON_FINITE = {"inf": math.inf, "-inf": -math.inf, "nan": math.nan}


def _revive(record: Dict[str, object]) -> Dict[str, object]:
    """Undo the :func:`_json_safe` string encoding of non-finite floats
    on the known numeric fields, so ``read_jsonl`` round-trips
    :meth:`Tracer.write_jsonl` exactly."""
    for key, value in record.items():
        if (key in NUMERIC_FIELDS and isinstance(value, str)
                and value in _NON_FINITE):
            record[key] = _NON_FINITE[value]
    return record


def read_jsonl(path) -> List[Dict[str, object]]:
    """Parse a JSONL trace file back into a list of event dicts.

    Non-finite floats that :meth:`Tracer.write_jsonl` string-encoded
    (``inf`` ranks, ``nan`` deadlines, ...) are revived to floats; a
    malformed line raises :class:`ValueError` naming its line number.
    """
    records = []
    with open(path) as handle:
        for number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{number}: malformed trace line "
                    f"({error.msg})") from error
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{number}: trace line is not a JSON object")
            records.append(_revive(record))
    return records
