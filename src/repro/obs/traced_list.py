"""``TracedList``: observability decorator over any ordered-list backend.

Wraps a :class:`repro.core.interfaces.PieoList` and reports every
primitive operation to a tracer (typed ``enqueue``/``dequeue`` events)
and a metrics registry (per-op wall-clock latency histograms plus a
resident-depth gauge), without touching the inner engine's semantics.
Registered in :mod:`repro.core.backends` as the ``"traced"`` backend::

    make_list("traced", inner="fast", tracer=tracer, metrics=registry)

With the default null tracer/metrics the wrapper detects that nobody is
listening and shadows its instrumented methods with the inner engine's
own bound methods, so the null path costs nothing per call and the
wrapper is safe to leave in place permanently (the overhead guarantee is
regression-tested and benchmarked in ``bench_results/obs_overhead.txt``).
"""

from __future__ import annotations

import time
from typing import Callable, Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.obs.metrics import LATENCY_BUCKETS_US
from repro.obs.scope import NULL_METRICS, NULL_TRACER, NullMetrics, \
    NullTracer


class TracedList(PieoList):
    """Tracing/metrics decorator around an inner :class:`PieoList`.

    Parameters
    ----------
    inner:
        The backend doing the actual work.
    tracer:
        Receives ``enqueue``/``dequeue`` events (sim-time-stamped via
        ``clock``).
    metrics:
        Receives ``backend.<op>_us`` latency histograms and the
        ``backend.depth`` gauge.
    clock:
        Zero-argument callable supplying the sim-time stamp for trace
        events (e.g. ``lambda: sim.now``).  Defaults to constant 0 —
        backends do not know simulation time on their own.
    """

    def __init__(self, inner: PieoList, tracer=None, metrics=None,
                 clock: Optional[Callable[[], float]] = None) -> None:
        self.inner = inner
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._clock = clock if clock is not None else (lambda: 0.0)
        #: Fast-path flag: with null observers, skip all timing work.
        self._observed = not (isinstance(self.tracer, NullTracer)
                              and isinstance(self.metrics, NullMetrics))
        self._h_enqueue = self.metrics.histogram(
            "backend.enqueue_us", LATENCY_BUCKETS_US)
        self._h_dequeue = self.metrics.histogram(
            "backend.dequeue_us", LATENCY_BUCKETS_US)
        self._h_dequeue_flow = self.metrics.histogram(
            "backend.dequeue_flow_us", LATENCY_BUCKETS_US)
        self._depth = self.metrics.gauge("backend.depth")
        if not self._observed:
            # Nobody is listening: shadow the instrumented methods with
            # the inner engine's own bound methods so the wrapper's cost
            # on the null path is zero, not even a flag test per call.
            self.enqueue = inner.enqueue
            self.dequeue = inner.dequeue
            self.dequeue_flow = inner.dequeue_flow
            self.peek = inner.peek
            self.min_send_time = inner.min_send_time
            self.snapshot = inner.snapshot

    # ------------------------------------------------------------------
    # Instrumented primitives
    # ------------------------------------------------------------------
    def enqueue(self, element: Element) -> None:
        if not self._observed:
            self.inner.enqueue(element)
            return
        start = time.perf_counter()
        self.inner.enqueue(element)
        self._h_enqueue.observe((time.perf_counter() - start) * 1e6)
        self._depth.set(len(self.inner))
        self.tracer.enqueue(self._clock(), element.flow_id, element.rank,
                            element.send_time)

    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        if not self._observed:
            return self.inner.dequeue(now, group_range=group_range)
        start = time.perf_counter()
        element = self.inner.dequeue(now, group_range=group_range)
        self._h_dequeue.observe((time.perf_counter() - start) * 1e6)
        if element is not None:
            self._depth.set(len(self.inner))
            self.tracer.dequeue(self._clock(), element.flow_id,
                                element.rank)
        else:
            self.tracer.dequeue(self._clock(), None, miss=True)
        return element

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        if not self._observed:
            return self.inner.dequeue_flow(flow_id)
        start = time.perf_counter()
        element = self.inner.dequeue_flow(flow_id)
        self._h_dequeue_flow.observe(
            (time.perf_counter() - start) * 1e6)
        if element is not None:
            self._depth.set(len(self.inner))
            self.tracer.dequeue(self._clock(), element.flow_id,
                                element.rank, op="dequeue_flow")
        return element

    # ------------------------------------------------------------------
    # Pure delegation
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self.inner.capacity

    def __len__(self) -> int:
        return len(self.inner)

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        return self.inner.peek(now, group_range=group_range)

    def min_send_time(self) -> Time:
        return self.inner.min_send_time()

    def snapshot(self) -> List[Element]:
        return self.inner.snapshot()

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self.inner

    def __getattr__(self, name):
        # Backend-specific extras (e.g. the hardware model's ``counters``
        # and ``check``) pass straight through.
        return getattr(self.inner, name)
