"""CLI: offline trace analysis and exporters.

Usage::

    python -m repro.obs summarize trace.jsonl
    python -m repro.obs summarize trace.jsonl --runtime profile.json
    python -m repro.obs flows trace.jsonl --starvation-ms 1.0
    python -m repro.obs flows trace.jsonl --costs opcounters.json
    python -m repro.obs timeline trace.jsonl --flow n6.f2 --limit 20
    python -m repro.obs audit trace.jsonl
    python -m repro.obs export trace.jsonl --perfetto out.json \\
        --report flows.json
    python -m repro.obs export trace.jsonl --metrics-json m.json \\
        --prometheus m.prom

``trace.jsonl`` is a ``--trace`` stream from ``python -m
repro.experiments`` (or any :meth:`Tracer.write_jsonl` export).  Sweep
experiments delimit their runs with ``mark`` events; every command
analyzes each run separately (``--run N`` selects one).  Multi-switch
(fabric) traces carry a ``switch`` label per event: each switch's
track is analyzed independently (a packet appears once per hop, so a
whole-run analysis would be nonsense), ``summarize`` prints a
per-switch block (traffic, drops by reason, hop residence), and
``--switch NAME`` narrows any command to one switch.  ``audit``
exits non-zero when the trace is truncated, corrupted, or violates
packet conservation/ordering.  ``summarize`` additionally prints a
wall-clock component-attribution block when a ``--profile-runtime``
report accompanies the trace (``--runtime FILE``, or the
``<trace>.runtime.json`` convention auto-detected).
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional, Tuple

from repro.obs.analyze import (Run, TraceAnalysis, split_runs,
                               switch_analyses)
from repro.obs.export import (flow_report_json, perfetto_trace,
                              prometheus_from_snapshot, write_perfetto)
from repro.obs.trace import read_jsonl

#: One run's analyses: ``(switch_label, analysis)`` per switch track
#: (single-switch traces have exactly one ``(None, analysis)`` entry).
Tracks = List[Tuple[Optional[str], TraceAnalysis]]


def _us(seconds: Optional[float]) -> float:
    return round((seconds or 0.0) * 1e6, 3)


def _load_runs(args) -> List[Tuple[Run, Tracks]]:
    runs = split_runs(read_jsonl(args.trace))
    if not runs:
        return []
    if args.run is not None:
        if not 0 <= args.run < len(runs):
            raise IndexError(
                f"--run {args.run} out of range; trace has "
                f"{len(runs)} run(s)")
        runs = [runs[args.run]]
    wanted = getattr(args, "switch", None)
    result: List[Tuple[Run, Tracks]] = []
    for run in runs:
        if not run.events:
            continue
        tracks = switch_analyses(run.events)
        if wanted is not None:
            tracks = [(switch, analysis) for switch, analysis in tracks
                      if switch == wanted]
            if not tracks:
                raise ValueError(
                    f"run {run.title!r} has no switch track "
                    f"{wanted!r}")
        result.append((run, tracks))
    return result


def _track_title(run: Run, switch: Optional[str]) -> str:
    return run.title if switch is None else f"{run.title} [{switch}]"


def _flow_table(title: str, analysis: TraceAnalysis,
                starvation_threshold: Optional[float],
                percentiles: bool):
    from repro.experiments.runner import Table
    if percentiles:
        headers = ["flow", "pkts", "drops", "gbps", "p50_us", "p90_us",
                   "p99_us", "p999_us", "queue_us", "elig_us", "ser_us",
                   "flags"]
    else:
        headers = ["flow", "pkts", "gbps", "p50_us", "p99_us",
                   "queue_us", "elig_us", "ser_us", "e2e_us"]
    table = Table(title=f"{title}: per-flow latency attribution",
                  headers=headers)
    reports = analysis.flows(starvation_threshold=starvation_threshold)
    for flow_id, report in sorted(reports.items(),
                                  key=lambda item: str(item[0])):
        if report.packets == 0 and report.drops == 0:
            continue
        flags = "".join((
            "S" if report.starved else "",
            "~" if not report.eligibility_exact else ""))
        if percentiles:
            table.add_row(
                str(flow_id), report.packets, report.drops,
                round(report.throughput_bps / 1e9, 4),
                _us(report.p50), _us(report.p90), _us(report.p99),
                _us(report.p999), _us(report.mean_queueing),
                _us(report.mean_eligibility),
                _us(report.mean_serialization), flags or "-")
        else:
            table.add_row(
                str(flow_id), report.packets,
                round(report.throughput_bps / 1e9, 4),
                _us(report.p50), _us(report.p99),
                _us(report.mean_queueing),
                _us(report.mean_eligibility),
                _us(report.mean_serialization),
                _us(report.mean_latency))
    table.add_note("mean queue_us + elig_us + ser_us = mean e2e "
                   "latency; '~' marks flows whose eligibility wait is "
                   "a virtual-time upper bound, 'S' starved flows.")
    return table


def _runtime_report_for(args):
    """Load the runtime profile accompanying a trace, if any.

    ``--runtime FILE`` names it explicitly; otherwise the
    ``--profile-runtime`` convention path ``<trace>.runtime.json`` is
    auto-detected.  Returns ``(report, error_message)``; a present but
    malformed profile is an error (never silently ignored).
    """
    import os

    from repro.obs.runtime import RuntimeReport
    path = getattr(args, "runtime", None)
    if path is None:
        candidate = f"{args.trace}.runtime.json"
        if not os.path.exists(candidate):
            return None, None
        path = candidate
    try:
        with open(path) as handle:
            record = json.load(handle)
        return RuntimeReport.from_dict(record), None
    except (OSError, ValueError) as error:
        return None, f"runtime profile {path}: {error}"


def _switch_block(switch: str, analysis: TraceAnalysis) -> str:
    """One per-switch summary line: traffic totals, drops by reason,
    and hop residence (arrival at the switch to wire-out)."""
    arrived = delivered = dropped = 0
    reasons: dict = {}
    residences = []
    for timeline in analysis.timelines:
        if timeline.arrival_t is not None:
            arrived += 1
        if timeline.delivered:
            delivered += 1
            if timeline.arrival_t is not None:
                residences.append(timeline.depart_end
                                  - timeline.arrival_t)
        if timeline.dropped:
            dropped += 1
            reason = timeline.drop_reason or "(unspecified)"
            reasons[reason] = reasons.get(reason, 0) + 1
    parts = [f"   switch {switch}: {arrived} arrived, "
             f"{delivered} delivered, {dropped} dropped"]
    if reasons:
        parts.append(" [" + ", ".join(
            f"{reason}={count}"
            for reason, count in sorted(reasons.items())) + "]")
    if residences:
        mean = sum(residences) / len(residences)
        parts.append(f", residence mean {_us(mean)}us "
                     f"max {_us(max(residences))}us")
    return "".join(parts)


def _cmd_summarize(args) -> int:
    exit_code = 0
    for run, tracks in _load_runs(args):
        delivered = sum(1 for _, analysis in tracks
                        for timeline in analysis.timelines
                        if timeline.delivered)
        dropped = sum(1 for _, analysis in tracks
                      for timeline in analysis.timelines
                      if timeline.dropped)
        t_min = min((analysis.t_min for _, analysis in tracks
                     if analysis.t_min is not None), default=0.0)
        t_max = max((analysis.t_max for _, analysis in tracks
                     if analysis.t_max is not None), default=0.0)
        span = t_max - t_min
        print(f"== {run.title}: {len(run.events)} events, "
              f"{delivered} delivered, {dropped} dropped, "
              f"span {span * 1e3:.3f} ms")
        for switch, analysis in tracks:
            if switch is not None:
                print(_switch_block(switch, analysis))
        if len(tracks) == 1:
            analysis = tracks[0][1]
            ports = analysis.port_summary()
            if any(port is not None for port in ports):
                for port, stats in sorted(
                        ports.items(), key=lambda item: str(item[0])):
                    label = "(unlabelled)" if port is None \
                        else f"port {port}"
                    reasons = ", ".join(
                        f"{reason}={count}" for reason, count in
                        sorted(stats["drop_reasons"].items()))
                    suffix = f" [{reasons}]" if reasons else ""
                    print(f"   {label}: {stats['arrivals']} arrived, "
                          f"{stats['delivered']} delivered, "
                          f"{stats['drops']} dropped, "
                          f"{stats['throughput_bps'] / 1e9:.4f} "
                          f"gbps{suffix}")
            table = _flow_table(_track_title(run, tracks[0][0]),
                                analysis, None, percentiles=False)
            if table.rows:
                print(table.to_text())
        errors = [(switch, issue) for switch, analysis in tracks
                  for issue in analysis.audit()
                  if issue.severity == "error"]
        for switch, issue in errors:
            prefix = f"[{switch}] " if switch is not None else ""
            print(f"{prefix}{issue}", file=sys.stderr)
        if errors:
            exit_code = 1
        print()
    report, problem = _runtime_report_for(args)
    if problem is not None:
        print(problem, file=sys.stderr)
        exit_code = exit_code or 1
    elif report is not None:
        print(report.to_text())
        print()
    return exit_code


def _cmd_flows(args) -> int:
    threshold = (args.starvation_ms / 1e3
                 if args.starvation_ms is not None else None)
    for run, tracks in _load_runs(args):
        for switch, analysis in tracks:
            title = _track_title(run, switch)
            print(_flow_table(title, analysis, threshold,
                              percentiles=True).to_text())
            if args.costs:
                with open(args.costs) as handle:
                    snapshot = json.load(handle)
                from repro.experiments.runner import Table
                cost = Table(
                    title=f"{title}: hardware-cost attribution "
                          "(op-proportional share)",
                    headers=["flow", "ops", "share_pct", "cycles",
                             "sram_rd", "sram_wr", "comparators"])
                attribution = analysis.cost_attribution(snapshot)
                for flow_id, shares in sorted(
                        attribution.items(),
                        key=lambda item: str(item[0])):
                    cost.add_row(
                        str(flow_id), shares["ops"],
                        round(shares["share"] * 100, 2),
                        round(shares["cycles"], 1),
                        round(shares["sram_sublist_reads"], 1),
                        round(shares["sram_sublist_writes"], 1),
                        round(shares["comparator_activations"], 1))
                print(cost.to_text())
            print()
    return 0


def _cmd_timeline(args) -> int:
    for run, tracks in _load_runs(args):
        for switch, analysis in tracks:
            _print_timelines(_track_title(run, switch), analysis, args)
    return 0


def _print_timelines(title: str, analysis: TraceAnalysis,
                     args) -> None:
        print(f"== {title}")
        shown = 0
        for timeline in analysis.timelines:
            if args.flow is not None \
                    and str(timeline.flow_id) != args.flow:
                continue
            if shown >= args.limit:
                print(f"... ({args.limit} shown; raise --limit)")
                break
            shown += 1
            if timeline.dropped:
                print(f"pkt {timeline.packet_id} "
                      f"[{timeline.flow_id}] DROPPED at "
                      f"t={timeline.drop_t} ({timeline.drop_reason})")
                continue
            if not timeline.delivered:
                print(f"pkt {timeline.packet_id} "
                      f"[{timeline.flow_id}] in flight "
                      f"(arrived t={timeline.arrival_t})")
                continue
            exact = "" if timeline.eligibility_exact else " (~bound)"
            print(
                f"pkt {timeline.packet_id} [{timeline.flow_id}] "
                f"arrive={_us(timeline.arrival_t)}us "
                f"tx={_us(timeline.depart_start)}us "
                f"done={_us(timeline.depart_end)}us | "
                f"e2e={_us(timeline.latency)}us = "
                f"queue {_us(timeline.queueing_wait)}us + "
                f"elig {_us(timeline.eligibility_wait)}us{exact} + "
                f"ser {_us(timeline.serialization)}us")
        print()


def _cmd_audit(args) -> int:
    exit_code = 0
    for run, tracks in _load_runs(args):
        issues = [(switch, issue) for switch, analysis in tracks
                  for issue in analysis.audit()]
        errors = [issue for _, issue in issues
                  if issue.severity == "error"]
        status = "FAIL" if errors else "ok"
        print(f"== {run.title}: {status} "
              f"({len(errors)} error(s), "
              f"{len(issues) - len(errors)} warning(s))")
        for switch, issue in issues:
            prefix = f"[{switch}] " if switch is not None else ""
            print(f"  {prefix}{issue}")
        if errors:
            exit_code = 1
    return exit_code


def _write_perfetto_multi(path: str, run: Run, tracks: Tracks) -> int:
    """Merge per-switch Perfetto traces into one file: each switch
    becomes its own process group (pid range), so the fabric renders
    as one timeline with a track group per hop."""
    merged: List[dict] = []
    pid_base = 0
    for switch, analysis in tracks:
        trace = perfetto_trace(analysis,
                               process_name=_track_title(run, switch))
        max_pid = 0
        for event in trace["traceEvents"]:
            pid = event.get("pid")
            if isinstance(pid, int):
                event["pid"] = pid + pid_base
                max_pid = max(max_pid, pid)
        merged.extend(trace["traceEvents"])
        pid_base += max_pid
    with open(path, "w") as handle:
        json.dump({"traceEvents": merged, "displayTimeUnit": "ms"},
                  handle, separators=(",", ":"))
        handle.write("\n")
    return sum(1 for event in merged if event.get("ph") != "M")


def _cmd_export(args) -> int:
    wrote_anything = False
    if args.perfetto or args.report:
        runs = _load_runs(args)
        if not runs:
            print("trace has no events to export", file=sys.stderr)
            return 1
        # Export the selected run (default: the last, typically the
        # final sweep point — pass --run to pick another).
        run, tracks = runs[-1]
        if args.perfetto:
            if len(tracks) == 1:
                count = write_perfetto(
                    args.perfetto, tracks[0][1],
                    process_name=_track_title(run, tracks[0][0]))
            else:
                count = _write_perfetto_multi(args.perfetto, run,
                                              tracks)
            print(f"perfetto: {count} events ({run.title}) -> "
                  f"{args.perfetto}", file=sys.stderr)
            wrote_anything = True
        if args.report:
            if len(tracks) == 1:
                report = flow_report_json(tracks[0][1])
                flow_count = len(report["flows"])
            else:
                report = {"switches": {
                    (switch if switch is not None
                     else "(unlabelled)"): flow_report_json(analysis)
                    for switch, analysis in tracks}}
                flow_count = sum(
                    len(entry["flows"])
                    for entry in report["switches"].values())
            with open(args.report, "w") as handle:
                json.dump(report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"flow report: {flow_count} flows -> "
                  f"{args.report}", file=sys.stderr)
            wrote_anything = True
    if args.prometheus:
        if not args.metrics_json:
            print("--prometheus needs --metrics-json FILE (a "
                  "--metrics snapshot)", file=sys.stderr)
            return 2
        with open(args.metrics_json) as handle:
            snapshot = json.load(handle)
        with open(args.prometheus, "w") as handle:
            handle.write(prometheus_from_snapshot(snapshot))
        print(f"prometheus: {args.metrics_json} -> {args.prometheus}",
              file=sys.stderr)
        wrote_anything = True
    if not wrote_anything:
        print("nothing to export; pass --perfetto, --report, or "
              "--prometheus", file=sys.stderr)
        return 2
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Analyze and export structured trace files.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_common(command):
        command.add_argument("trace", help="JSONL trace file "
                             "(from --trace or Tracer.write_jsonl)")
        command.add_argument("--run", type=int, default=None,
                             metavar="N",
                             help="analyze only the N-th "
                             "mark-delimited run (0-based)")
        command.add_argument("--switch", default=None, metavar="NAME",
                             help="restrict analysis to one switch "
                             "track of a multi-switch (fabric) trace")

    summarize = sub.add_parser(
        "summarize", help="per-run event counts and per-flow "
        "p50/p99 latency attribution")
    add_common(summarize)
    summarize.add_argument("--runtime", default=None, metavar="FILE",
                           help="runtime-profile JSON (from "
                           "--profile-runtime) to print a wall-clock "
                           "attribution block; default: auto-detect "
                           "<trace>.runtime.json")
    summarize.set_defaults(handler=_cmd_summarize)

    flows = sub.add_parser(
        "flows", help="detailed per-flow report: full percentiles, "
        "starvation, hardware-cost attribution")
    add_common(flows)
    flows.add_argument("--starvation-ms", type=float, default=None,
                       metavar="MS",
                       help="flag flows backlogged but unserved for "
                       "longer than MS milliseconds")
    flows.add_argument("--costs", default=None, metavar="FILE",
                       help="OpCounters snapshot JSON to attribute "
                       "per-flow hardware cost shares")
    flows.set_defaults(handler=_cmd_flows)

    timeline = sub.add_parser(
        "timeline", help="per-packet lifecycle lines")
    add_common(timeline)
    timeline.add_argument("--flow", default=None,
                          help="restrict to one flow id")
    timeline.add_argument("--limit", type=int, default=50,
                          help="max packets to print (default 50)")
    timeline.set_defaults(handler=_cmd_timeline)

    audit = sub.add_parser(
        "audit", help="conservation/ordering audit; non-zero exit on "
        "malformed traces")
    add_common(audit)
    audit.set_defaults(handler=_cmd_audit)

    export = sub.add_parser(
        "export", help="write Perfetto JSON, per-flow report JSON, "
        "and/or Prometheus text")
    add_common(export)
    export.add_argument("--perfetto", default=None, metavar="FILE",
                        help="write Chrome/Perfetto trace_event JSON")
    export.add_argument("--report", default=None, metavar="FILE",
                        help="write the per-flow report as JSON")
    export.add_argument("--prometheus", default=None, metavar="FILE",
                        help="write Prometheus text exposition "
                        "(requires --metrics-json)")
    export.add_argument("--metrics-json", default=None, metavar="FILE",
                        help="MetricsRegistry snapshot JSON "
                        "(a --metrics file)")
    export.set_defaults(handler=_cmd_export)
    return parser


def main(argv) -> int:
    args = build_parser().parse_args(argv[1:])
    try:
        return args.handler(args)
    except FileNotFoundError as error:
        print(error, file=sys.stderr)
        return 2
    except (ValueError, IndexError) as error:
        print(error, file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Output piped into e.g. `head`; exit quietly like other
        # well-behaved unix filters.
        sys.stderr.close()
        return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
