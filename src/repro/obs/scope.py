"""Null observability objects and span scopes.

The observability layer mirrors the accounting split of
:mod:`repro.core.instrumentation`: every instrumented call site takes a
tracer/metrics pair, and the *default* pair is a family of null objects
whose methods do nothing.  The hot paths therefore stay allocation-free
when nobody is watching — the same property
:class:`~repro.core.instrumentation.NullInstrumentation` gives the
cycle-accurate hardware models.

Three families live here:

* :class:`Span` / :class:`NullSpan` — ``with tracer.span("dequeue"):``
  context managers that measure wall-clock latency of a code region and
  report it back to their tracer (or nowhere);
* :class:`NullTracer` — the do-nothing stand-in for
  :class:`repro.obs.trace.Tracer`;
* :class:`NullMetrics` (plus null counter/gauge/histogram instruments) —
  the do-nothing stand-in for :class:`repro.obs.metrics.MetricsRegistry`.

Shared stateless singletons (:data:`NULL_TRACER`, :data:`NULL_METRICS`)
serve every call site, so enabling the default path costs one attribute
load per event, no allocation.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence


class Span:
    """Wall-clock scope: measures the latency of a ``with`` region.

    On exit the duration is emitted as a ``span`` event on the owning
    tracer (microseconds, ``wall_us``), stamped with the sim time the
    span was opened with.
    """

    __slots__ = ("_tracer", "name", "sim_time", "wall_us", "_t0")

    def __init__(self, tracer, name: str, sim_time: float = 0.0) -> None:
        self._tracer = tracer
        self.name = name
        self.sim_time = sim_time
        self.wall_us: Optional[float] = None
        self._t0 = 0.0

    def __enter__(self) -> "Span":
        self._t0 = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.wall_us = (time.perf_counter() - self._t0) * 1e6
        self._tracer.emit(self.sim_time, "span", name=self.name,
                          wall_us=round(self.wall_us, 3))


class NullSpan:
    """Span that measures and reports nothing."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


#: Shared stateless no-op span.
NULL_SPAN = NullSpan()


class NullTracer:
    """Tracer that records nothing.

    Mirrors the full typed-event surface of
    :class:`repro.obs.trace.Tracer`; every method is a no-op, ``events``
    is always empty, and :meth:`span` returns the shared
    :data:`NULL_SPAN`.  Instrumented components default to the shared
    :data:`NULL_TRACER` instance so the untraced path adds only a method
    call per event site.
    """

    enabled = False

    @property
    def events(self) -> Sequence:
        return ()

    @property
    def counts(self) -> Dict[str, int]:
        return {}

    @property
    def emitted(self) -> int:
        return 0

    def emit(self, time: float, kind: str, **fields) -> None:
        pass

    def arrival(self, time, flow_id, size_bytes, packet_id=None,
                **fields) -> None:
        pass

    def enqueue(self, time, flow_id, rank, send_time, **fields) -> None:
        pass

    def dequeue(self, time, flow_id, rank=None, **fields) -> None:
        pass

    def departure(self, time, flow_id, size_bytes, packet_id=None,
                  finish=None, **fields) -> None:
        pass

    def drop(self, time, flow_id, reason="", **fields) -> None:
        pass

    def timer_arm(self, time, timer_id, deadline, scope="sim",
                  **fields) -> None:
        pass

    def timer_fire(self, time, timer_id, scope="sim", **fields) -> None:
        pass

    def timer_cancel(self, time, timer_id, scope="sim",
                     **fields) -> None:
        pass

    def kick(self, time, at=None, **fields) -> None:
        pass

    def link_busy(self, time, until=None, flow_id=None,
                  **fields) -> None:
        pass

    def link_idle(self, time, **fields) -> None:
        pass

    def mark(self, time, label, **fields) -> None:
        pass

    def span(self, name: str, sim_time: float = 0.0) -> NullSpan:
        return NULL_SPAN

    def events_of(self, *kinds):
        return []

    def close(self) -> None:
        pass


#: Shared stateless no-op tracer.
NULL_TRACER = NullTracer()


class NullCounter:
    """Counter that never counts."""

    __slots__ = ()
    value = 0

    def inc(self, amount: int = 1) -> None:
        pass


class NullGauge:
    """Gauge that never moves."""

    __slots__ = ()
    value = 0.0
    min = None
    max = None

    def set(self, value: float) -> None:
        pass

    def inc(self, amount: float = 1) -> None:
        pass

    def dec(self, amount: float = 1) -> None:
        pass


class NullHistogram:
    """Histogram that never observes."""

    __slots__ = ()
    count = 0
    sum = 0.0

    def observe(self, value: float) -> None:
        pass

    @property
    def mean(self) -> float:
        return 0.0

    def quantile(self, q: float) -> float:
        return 0.0


NULL_COUNTER = NullCounter()
NULL_GAUGE = NullGauge()
NULL_HISTOGRAM = NullHistogram()


class NullMetrics:
    """Metrics registry that hands out null instruments.

    Stands in for :class:`repro.obs.metrics.MetricsRegistry` on the
    default path: call sites create their counters/gauges/histograms
    once at construction time, and with this registry every instrument
    is a shared no-op, so per-operation recording costs one no-op method
    call.
    """

    def counter(self, name: str) -> NullCounter:
        return NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return NULL_GAUGE

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None,
                  ) -> NullHistogram:
        return NULL_HISTOGRAM

    def log_histogram(self, name: str, min_value: float = 1e-3,
                      max_value: float = 1e7,
                      growth: Optional[float] = None) -> NullHistogram:
        return NULL_HISTOGRAM

    def snapshot(self) -> Dict[str, Dict]:
        return {}

    def to_dict(self) -> Dict[str, Dict]:
        return {}


#: Shared stateless no-op metrics registry.
NULL_METRICS = NullMetrics()
