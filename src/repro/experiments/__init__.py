"""Evaluation harness: one module per paper figure plus ablations.

Run everything from the command line::

    python -m repro.experiments

or regenerate individual figures through the functions re-exported here
(each returns a :class:`repro.experiments.runner.Table`).
"""

from repro.experiments.ablation_sublist import sublist_ablation_table
from repro.experiments.ablation_trigger import trigger_ablation_table
from repro.experiments.approx_structures import approx_structures_table
from repro.experiments.end_to_end_shaping import shaping_comparison_table
from repro.experiments.structure_comparison import structure_comparison_table
from repro.experiments.fig2_expressiveness import (deviation_sweep,
                                                   example_table,
                                                   run_paper_example)
from repro.experiments.fig8_alms import alms_table
from repro.experiments.fig9_sram import sram_table
from repro.experiments.fig10_clock import clock_table
from repro.experiments.fig11_rate_limit import (all_nodes_table,
                                                rate_limit_table)
from repro.experiments.fig12_fair_queue import fair_queue_table
from repro.experiments.fabric_incast import fabric_incast_table
from repro.experiments.fct import fct_table
from repro.experiments.incast import incast_table
from repro.experiments.pipeline_rate import pipeline_table
from repro.experiments.runner import Table
from repro.experiments.scalability import scalability_table
from repro.experiments.scheduling_rate import (measured_cycles_per_op,
                                               rate_table,
                                               software_ops_per_sec,
                                               software_rate_table)

__all__ = [
    "sublist_ablation_table",
    "trigger_ablation_table",
    "approx_structures_table",
    "shaping_comparison_table",
    "structure_comparison_table",
    "pipeline_table",
    "deviation_sweep",
    "example_table",
    "run_paper_example",
    "alms_table",
    "sram_table",
    "clock_table",
    "all_nodes_table",
    "rate_limit_table",
    "fair_queue_table",
    "incast_table",
    "fabric_incast_table",
    "fct_table",
    "Table",
    "scalability_table",
    "measured_cycles_per_op",
    "rate_table",
    "software_ops_per_sec",
    "software_rate_table",
    "all_tables",
]


def all_tables():
    """Generate every evaluation table (several seconds of simulation)."""
    return [
        example_table(),
        deviation_sweep(),
        alms_table(),
        sram_table(),
        clock_table(),
        rate_table(),
        scalability_table(),
        rate_limit_table(),
        all_nodes_table(),
        fair_queue_table(),
        incast_table(),
        fabric_incast_table(),
        fct_table(),
        sublist_ablation_table(),
        approx_structures_table(),
        trigger_ablation_table(),
        pipeline_table(),
        shaping_comparison_table(),
        structure_comparison_table(),
    ]
