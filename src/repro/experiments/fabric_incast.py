"""Incast re-expressed as a two-tier fabric scenario.

The single-switch :mod:`repro.experiments.incast` experiment drives 8
CBR senders (2.5 Gbps each) into one 10 Gbps output port of a shared
buffer.  This experiment builds the *same* contention point out of
:mod:`repro.net` parts: 8 sender hosts on 10 Gbps access links into an
aggregation switch, a 40 Gbps trunk down to a top-of-rack switch, and
one receiver host on a 10 Gbps link.  The trunk carries the full
20 Gbps offered load without loss; the ToR's receiver-facing port is
2x oversubscribed, so its shared buffer is where the incast lands —
exactly the hot port of the single-switch experiment, one hop deeper.

Cross-check (asserted by the integration test, stated in the table
note): sweeping the ToR buffer reproduces the single-switch shape —
the hot link saturates at ~10 Gbps goodput regardless of memory, and
drops fall monotonically as the buffer grows.  The aggregation switch
drops nothing.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence, Tuple

from repro.experiments.runner import Table, point_seed, run_sweep
from repro.net.fabric import Fabric
from repro.net.topology import Topology
from repro.obs import Tracer
from repro.obs.runtime import NULL_HEARTBEAT
from repro.sim.generators import CbrGenerator
from repro.sim.link import gbps
from repro.sim.packet import MTU_BYTES, reset_packet_ids

#: Mirror the single-switch incast constants.
SENDERS = 8
SENDER_GBPS = 2.5
ACCESS_GBPS = 10.0
TRUNK_GBPS = 40.0
DEFAULT_BUFFER_KIB = (8, 16, 32, 64, 128)
RECEIVER = "recv"
TOR = "tor"
AGG = "agg"


def incast_fabric_topology(senders: int = SENDERS) -> Topology:
    """senders -> agg -> tor -> recv, oversubscribed at tor->recv."""
    topology = Topology()
    topology.add_switch(AGG)
    topology.add_switch(TOR)
    topology.add_host(RECEIVER)
    topology.add_link(TOR, RECEIVER, rate_bps=gbps(ACCESS_GBPS))
    topology.add_link(AGG, TOR, rate_bps=gbps(TRUNK_GBPS))
    for index in range(senders):
        name = f"s{index}"
        topology.add_host(name)
        topology.add_link(name, AGG, rate_bps=gbps(ACCESS_GBPS))
    return topology


def build_fabric_incast(buffer_bytes: int,
                        drop_policy: str = "tail-drop",
                        algorithm: str = "drr",
                        duration: float = 0.002,
                        backend: Optional[str] = None,
                        event_queue: str = "reference",
                        tracer=None, metrics=None) -> Fabric:
    """Wire the 2-tier incast fabric and start its CBR senders."""
    fabric = Fabric(incast_fabric_topology(), algorithm=algorithm,
                    backend=backend, event_queue=event_queue,
                    buffer_bytes=buffer_bytes, drop_policy=drop_policy,
                    tracer=tracer, metrics=metrics)
    for index in range(SENDERS):
        flow_id, sink = fabric.stream(f"s{index}", RECEIVER,
                                      sport=index + 1, dport=1)
        generator = CbrGenerator(fabric.sim, flow_id, sink,
                                 rate_bps=gbps(SENDER_GBPS),
                                 size_bytes=MTU_BYTES,
                                 end_time=duration)
        # Same stagger as the single-switch incast: one access-link
        # MTU-time apart, so arrivals interleave instead of bursting.
        generator.start(index * MTU_BYTES * 8 / gbps(ACCESS_GBPS))
    return fabric


def _fabric_incast_point(spec: Tuple, tracer=None,
                         metrics=None) -> Tuple[dict, str]:
    """One sweep point (module-level: picklable for ``--jobs``)."""
    (index, buffer_kib, drop_policy, algorithm, backend, duration,
     event_queue, traced) = spec
    reset_packet_ids(point_seed(index))
    sink = None
    if tracer is None and traced:
        sink = io.StringIO()
        tracer = Tracer(capacity=0, sink=sink)
    fabric = build_fabric_incast(buffer_bytes=buffer_kib * 1024,
                                 drop_policy=drop_policy,
                                 algorithm=algorithm, duration=duration,
                                 backend=backend,
                                 event_queue=event_queue,
                                 tracer=tracer, metrics=metrics)
    fabric.sim.run()
    conservation = fabric.conservation()
    if not conservation["balanced"]:
        raise AssertionError(
            f"fabric conservation violated at buffer={buffer_kib}KiB: "
            f"{conservation}")
    tor = fabric.switches[TOR]
    agg = fabric.switches[AGG]
    tor_snapshot = tor.conservation()
    stats = {
        "arrivals": tor_snapshot["arrivals"],
        "delivered": fabric.hosts[RECEIVER].received_pkts,
        "drops": tor_snapshot["drops"],
        "agg_drops": agg.conservation()["drops"],
        "hot_drops": tor.dataplane.buffer.drops_by_port.get(
            RECEIVER, 0),
        "goodput_gbps": fabric.hosts[RECEIVER].received_bytes * 8
        / duration / 1e9,
    }
    return stats, sink.getvalue() if sink is not None else ""


def fabric_incast_table(
        buffer_kib_sweep: Sequence[int] = DEFAULT_BUFFER_KIB,
        drop_policy: str = "tail-drop", algorithm: str = "drr",
        duration: float = 0.002, backend: Optional[str] = None,
        tracer=None, metrics=None, event_queue: str = "reference",
        jobs: int = 1, heartbeat=None) -> Table:
    """Incast drops vs ToR buffer size on the 2-tier fabric.

    Sweep mechanics (seeded points, ``--jobs`` byte-identity, traced
    shard merge) match :func:`repro.experiments.incast.incast_table`;
    the table is directly comparable to the single-switch one.
    """
    table = Table(
        title=(f"Fabric incast: {SENDERS} hosts -> {AGG} -> {TOR} -> "
               f"{RECEIVER} (2x oversubscribed at {TOR}->{RECEIVER}), "
               f"policy={drop_policy}, algorithm={algorithm}"),
        headers=["buffer_kib", "arrivals", "delivered", "drops",
                 "hot_drops", "agg_drops", "goodput_gbps", "drop_pct"],
    )
    specs = [(index, buffer_kib, drop_policy, algorithm, backend,
              duration, event_queue, tracer is not None)
             for index, buffer_kib in enumerate(buffer_kib_sweep)]
    sharded = jobs > 1 and metrics is None
    if sharded:
        outcomes = run_sweep(_fabric_incast_point, specs, jobs=jobs,
                             heartbeat=heartbeat)
        if tracer is not None:
            for spec, (_, lines) in zip(specs, outcomes):
                tracer.mark(0.0, "fabric_incast.sweep",
                            buffer_kib=spec[1], drop_policy=drop_policy)
                tracer.absorb_jsonl(lines.splitlines())
    else:
        pulse = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        pulse.begin(len(specs), jobs=1)
        outcomes = []
        for spec in specs:
            if tracer is not None:
                tracer.mark(0.0, "fabric_incast.sweep",
                            buffer_kib=spec[1], drop_policy=drop_policy)
            with pulse.point(spec[0]):
                outcomes.append(_fabric_incast_point(
                    spec, tracer=tracer, metrics=metrics))
        pulse.finish()
    for spec, (stats, _) in zip(specs, outcomes):
        drop_pct = (100.0 * stats["drops"] / stats["arrivals"]
                    if stats["arrivals"] else 0.0)
        table.add_row(spec[1], stats["arrivals"], stats["delivered"],
                      stats["drops"], stats["hot_drops"],
                      stats["agg_drops"],
                      round(stats["goodput_gbps"], 4),
                      round(drop_pct, 2))
    table.add_note("Same contention as the single-switch incast, one "
                   "hop deeper: the trunk carries 20 Gbps loss-free "
                   f"(agg_drops stays 0) and the {TOR}->{RECEIVER} "
                   f"port tops out at ~{ACCESS_GBPS} Gbps goodput; "
                   "drops fall monotonically with buffer size.")
    return table
