"""Fig. 8: percentage of logic modules (ALMs) consumed vs scheduler size.

Paper anchors (Stratix V, 234 K ALMs): PIFO consumes 64 % at 1 K elements
and scales linearly (2 K does not fit); PIEO grows as sqrt(N) and a 30 K
PIEO fits easily.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import Table
from repro.hw.device import STRATIX_V, Device
from repro.hw.resources import logic_report

DEFAULT_SIZES = (1_024, 2_048, 4_096, 8_192, 16_384, 30_000, 32_768)

#: The paper's stated values (Section 6.1).
PAPER_ANCHORS = {
    ("pifo", 1_024): 64.0,   # "64% of the available logic modules ... 1 K"
}


def alms_table(sizes: Sequence[int] = DEFAULT_SIZES,
               device: Device = STRATIX_V) -> Table:
    """Fig. 8's series: %ALMs for PIEO and PIFO at each size."""
    table = Table(
        title=f"Fig. 8: % ALMs consumed on {device.name} "
              f"({device.alms // 1000} K ALMs)",
        headers=["size", "pieo_alms_pct", "pifo_alms_pct", "pieo_fits",
                 "pifo_fits", "paper_pifo_pct"],
    )
    for size in sizes:
        report = logic_report(size, device)
        anchor = PAPER_ANCHORS.get(("pifo", size), "-")
        table.add_row(size, round(report.pieo_percent, 1),
                      round(report.pifo_percent, 1), report.pieo_fits,
                      report.pifo_fits, anchor)
    table.add_note("PIFO grows linearly (cannot fit 2 K or more, matching "
                   "the paper); PIEO grows as sqrt(N) and fits 30 K.")
    return table
