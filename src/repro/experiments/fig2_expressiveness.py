"""Fig. 2 / Section 2.3: WF2Q+ expressiveness — PIEO vs PIFO emulations.

Reproduces (c)-(e) of Fig. 2 on the reconstructed six-packet example and
extends it with a randomized sweep quantifying the paper's O(N) deviation
claim: "O(N) elements could become eligible at any given time, which in
the worst-case could result in O(N) deviation from the ideal scheduling
order for an element."
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Sequence

from repro.analysis.deviation import max_deviation, mean_deviation
from repro.baselines.pifo_wf2q import (HeadPacket, ideal_wf2q_order,
                                       paper_example, single_pifo_order,
                                       two_pifo_order)
from repro.core.backends import make_list
from repro.core.element import Element
from repro.core.interfaces import PieoList
from repro.experiments.runner import Table


def pieo_order(packets: Sequence[HeadPacket],
               list_factory: Optional[Callable[[], PieoList]] = None,
               ) -> List[str]:
    """Replay the example through an actual PIEO ordered list:
    rank = finish time, send_time = start time, dequeue at virtual time.
    """
    pieo = (list_factory() if list_factory is not None
            else make_list("reference"))
    lengths: Dict[str, float] = {}
    for packet in packets:
        lengths[packet.name] = packet.length
        pieo.enqueue(Element(flow_id=packet.name, rank=packet.finish_time,
                             send_time=packet.start_time))
    virtual_time = 0.0
    order: List[str] = []
    while len(pieo):
        element = pieo.dequeue(virtual_time)
        if element is None:
            virtual_time = pieo.min_send_time()
            continue
        order.append(element.flow_id)
        virtual_time += lengths[element.flow_id]
    return order


def run_paper_example(list_factory: Optional[Callable[[], PieoList]] = None,
                      ) -> Dict[str, List[str]]:
    """Scheduling orders of every design on the Fig. 2 example."""
    packets = paper_example()
    return {
        "ideal": ideal_wf2q_order(packets),
        "pieo": pieo_order(packets, list_factory),
        "single_pifo_finish": single_pifo_order(packets, "finish_time"),
        "single_pifo_start": single_pifo_order(packets, "start_time"),
        "two_pifo": two_pifo_order(packets),
    }


def random_workload(num_flows: int, rng: random.Random,
                    num_release_instants: int = 4) -> List[HeadPacket]:
    """A head-packet population with bursts of simultaneous eligibility.

    Flows are split across a few discrete start times (the simultaneous
    release the paper's argument hinges on) with random finish times.
    """
    instants = sorted(rng.uniform(0, 50) for _ in
                      range(num_release_instants))
    packets = []
    for index in range(num_flows):
        start = rng.choice(instants)
        length = rng.uniform(1, 10)
        finish = start + rng.uniform(1, 100)
        packets.append(HeadPacket(f"p{index}", length, start, finish))
    return packets


def deviation_sweep(sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
                    trials: int = 5, seed: int = 7) -> Table:
    """Max/mean order deviation from ideal WF2Q+ vs number of flows."""
    rng = random.Random(seed)
    table = Table(
        title=("Fig. 2 sweep: scheduling-order deviation from ideal "
               "WF2Q+ (max over trials)"),
        headers=["flows", "pieo_max_dev", "two_pifo_max_dev",
                 "two_pifo_mean_dev", "pifo_finish_max_dev"],
    )
    for size in sizes:
        pieo_worst = 0
        two_pifo_worst = 0
        two_pifo_mean = 0.0
        finish_worst = 0
        for _ in range(trials):
            packets = random_workload(size, rng)
            ideal = ideal_wf2q_order(packets)
            pieo_worst = max(pieo_worst,
                             max_deviation(ideal, pieo_order(packets)))
            actual = two_pifo_order(packets)
            two_pifo_worst = max(two_pifo_worst,
                                 max_deviation(ideal, actual))
            two_pifo_mean = max(two_pifo_mean,
                                mean_deviation(ideal, actual))
            finish_worst = max(
                finish_worst,
                max_deviation(ideal,
                              single_pifo_order(packets, "finish_time")))
        table.add_row(size, pieo_worst, two_pifo_worst,
                      round(two_pifo_mean, 2), finish_worst)
    table.add_note("PIEO matches the ideal order exactly (deviation 0); "
                   "PIFO emulations deviate and the deviation grows with "
                   "N, as argued in Section 2.3.")
    return table


def example_table(backend: Optional[str] = None) -> Table:
    """The Fig. 2(c)-(e) orders as a table.

    ``backend`` replays the PIEO series on any registered ordered-list
    backend (every backend reproduces the same order — that is the
    point of the conformance matrix).
    """
    list_factory = None
    if backend is not None:
        from repro.core.backends import make_factory
        list_factory = make_factory(backend)
    orders = run_paper_example(list_factory)
    table = Table(
        title="Fig. 2(c)-(e): scheduling orders on the example system",
        headers=["design", "order", "max_deviation_vs_ideal"],
    )
    ideal = orders["ideal"]
    for design in ("ideal", "pieo", "single_pifo_finish",
                   "single_pifo_start", "two_pifo"):
        order = orders[design]
        table.add_row(design, " ".join(order),
                      max_deviation(ideal, order))
    return table
