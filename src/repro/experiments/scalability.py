"""Section 6.1 headline: "over 30x more scalable than PIFO".

Computes the largest scheduler size each design can synthesize on the
target device (logic and SRAM both fitting) and their ratio.
"""

from __future__ import annotations

from repro.experiments.runner import Table
from repro.hw.device import STRATIX_10, STRATIX_V, Device
from repro.hw.resources import max_capacity, scalability_factor
from repro.hw.sram import sram_report


def max_pieo_with_sram(device: Device) -> int:
    """Largest PIEO size fitting both logic and SRAM on ``device``."""
    size = max_capacity("pieo", device)
    while size > 0 and not sram_report(size, device).fits:
        size //= 2
    return size


def scalability_table() -> Table:
    """Max synthesizable size per design and the scalability factor."""
    table = Table(
        title="Section 6.1: maximum scheduler size per design",
        headers=["device", "pifo_max", "pieo_max(logic)",
                 "pieo_max(logic+sram)", "factor", "paper_claim"],
    )
    for device in (STRATIX_V, STRATIX_10):
        pifo_max = max_capacity("pifo", device)
        pieo_max = max_capacity("pieo", device)
        claim = ">30x, 30K+ flows" if device is STRATIX_V else "-"
        table.add_row(device.name, pifo_max, pieo_max,
                      max_pieo_with_sram(device),
                      round(scalability_factor(device), 1), claim)
    table.add_note("Paper: PIFO cannot fit 2 K elements on Stratix V "
                   "while PIEO fits 30 K+ -> 'over 30x more scalable'.")
    return table
