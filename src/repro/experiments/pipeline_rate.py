"""Section 6.2 extension: what pipelining buys PIEO.

The prototype is non-pipelined (1 op / 4 cycles).  A fully pipelined
PIEO is impossible (dual-port SRAM: both ports busy in cycles 2 and 4),
but interleaving compute and memory stages of consecutive operations
reaches 1 op / 2 cycles.  This table quantifies the scheduling-rate
ladder on Stratix V and the ASIC target, against PIFO's fully pipelined
1 op / cycle.
"""

from __future__ import annotations

from repro.experiments.runner import Table
from repro.hw.clock import pieo_clock_mhz, pifo_clock_mhz
from repro.hw.device import ASIC, STRATIX_V
from repro.hw.pipeline import pipeline_report


def pipeline_table(num_ops: int = 2_000) -> Table:
    """Decision-latency ladder: serial vs pipelined PIEO vs PIFO."""
    report = pipeline_report(num_ops)
    table = Table(
        title="Pipelining ablation (Section 6.2): scheduling rate ladder",
        headers=["design", "device", "cycles_per_op", "clock_mhz",
                 "ns_per_decision", "mtu_100g_ok"],
    )
    pieo_clock = pieo_clock_mhz(30_000, STRATIX_V)
    pifo_clock = pifo_clock_mhz(1_024, STRATIX_V)
    rows = [
        ("pieo non-pipelined (prototype)", STRATIX_V.name, 4.0,
         pieo_clock),
        ("pieo partially pipelined", STRATIX_V.name,
         report.issue_interval, pieo_clock),
        ("pieo partially pipelined", ASIC.name, report.issue_interval,
         ASIC.base_clock_mhz),
        ("pifo fully pipelined (1K max)", STRATIX_V.name, 1.0,
         pifo_clock),
    ]
    for design, device, cycles, clock in rows:
        ns_per_decision = cycles * 1_000.0 / clock
        table.add_row(design, device, round(cycles, 2), round(clock, 1),
                      round(ns_per_decision, 1), ns_per_decision <= 120.0)
    table.add_note(f"memory-port constraint: speedup over serial = "
                   f"{report.speedup:.2f}x (steady-state issue interval "
                   f"{report.issue_interval:.2f} cycles); a fully "
                   "pipelined PIEO would need more SRAM ports.")
    return table
