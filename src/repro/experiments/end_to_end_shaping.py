"""End-to-end expressiveness: rate limiting on PIEO vs PIFO vs FIFO.

Section 2.3's argument, measured at the packet level: all three
schedulers see the same flows and the same configured token-bucket
limits, but only PIEO can *defer* a head-of-line packet until its send
time.  The PIFO variant ranks by send time yet transmits at line rate;
FIFO ignores policy entirely.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.baselines.fifo import FifoScheduler
from repro.baselines.pifo_scheduler import PifoShapingScheduler
from repro.experiments.runner import Table
from repro.sched.framework import PieoScheduler
from repro.sched.token_bucket import TokenBucket
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.generators import BackloggedSource
from repro.sim.link import Link, gbps

LIMITS_GBPS = (0.5, 1.0, 2.0)
LINK_GBPS = 10.0
DURATION = 0.02
WARMUP = 0.002


def _run(scheduler_name: str) -> Dict[str, float]:
    sim = Simulator()
    link = Link(gbps(LINK_GBPS))
    if scheduler_name == "pieo":
        scheduler = PieoScheduler(TokenBucket(),
                                  link_rate_bps=link.rate_bps)
    elif scheduler_name == "pifo":
        scheduler = PifoShapingScheduler(link_rate_bps=link.rate_bps)
    elif scheduler_name == "fifo":
        scheduler = FifoScheduler()
    else:
        raise ValueError(scheduler_name)
    engine = TransmitEngine(sim, scheduler, link)
    for index, limit in enumerate(LIMITS_GBPS):
        flow = FlowQueue(f"f{index}", rate_bps=gbps(limit))
        if hasattr(scheduler, "add_flow"):
            scheduler.add_flow(flow)
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(DURATION)
    return {flow_id: rate / 1e9 for flow_id, rate
            in engine.recorder.rate_bps(start=WARMUP,
                                        end=DURATION).items()}


def shaping_comparison_table(
        schedulers: Sequence[str] = ("pieo", "pifo", "fifo")) -> Table:
    """Configured vs achieved rates per scheduler primitive."""
    table = Table(
        title=("End-to-end rate limiting: identical token-bucket config "
               f"on a {LINK_GBPS:.0f} Gbps link, backlogged flows"),
        headers=["scheduler"] + [
            f"f{i} ({limit}G limit)"
            for i, limit in enumerate(LIMITS_GBPS)] + ["total_gbps"],
    )
    table.add_row("(configured)", *LIMITS_GBPS, sum(LIMITS_GBPS))
    for name in schedulers:
        rates = _run(name)
        cells: List[float] = [round(rates.get(f"f{i}", 0.0), 3)
                              for i in range(len(LIMITS_GBPS))]
        table.add_row(name, *cells, round(sum(rates.values()), 2))
    table.add_note("PIEO enforces every limit; PIFO preserves send-time "
                   "*order* but cannot defer, so backlogged flows share "
                   "the full line rate; FIFO has no policy at all "
                   "(Section 2.3 made end-to-end).")
    return table
