"""Shared table formatting for the evaluation harness.

Every experiment module produces a :class:`Table` whose rows mirror the
series in the corresponding paper figure, plus (where the paper states
numbers) a paper-anchor column, so EXPERIMENTS.md can record
paper-vs-measured directly from benchmark output.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Sequence


@dataclass
class Table:
    """A printable experiment result table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected "
                f"{len(self.headers)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        cells = [[_fmt(value) for value in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        lines.append("  ".join(
            header.ljust(widths[index])
            for index, header in enumerate(self.headers)))
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(
                cell.ljust(widths[index])
                for index, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> List[Any]:
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
