"""Shared experiment-harness plumbing: result tables and sharded sweeps.

Every experiment module produces a :class:`Table` whose rows mirror the
series in the corresponding paper figure, plus (where the paper states
numbers) a paper-anchor column, so EXPERIMENTS.md can record
paper-vs-measured directly from benchmark output.

:func:`run_sweep` fans a sweep's points across worker processes
(``--jobs N`` on the CLI).  The determinism contract:

* every sweep-point worker is a **module-level function** (so it can be
  pickled to a pool) taking one spec tuple whose first item is the
  point's index;
* the worker derives *all* process-global state from that index — in
  particular it must call
  :func:`repro.sim.packet.reset_packet_ids` with
  :func:`point_seed` — so a point computes the same result whether it
  runs in the parent (``jobs=1``), in a pool, or in any pool-worker
  interleaving;
* results always come back in point order, regardless of completion
  order.

Under this contract ``jobs=N`` output is byte-identical to ``jobs=1``
(the fig11/fig12 integration tests assert it, including merged JSONL
trace streams).

Passing a :class:`repro.obs.runtime.SweepHeartbeat` as ``heartbeat``
adds liveness reporting — points completed, per-point wall time, ETA,
worker health — on stderr and (when the heartbeat carries a tracer) as
``mark`` trace events.  The heartbeat observes only; worker results
stay byte-identical with or without one.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence

from repro.obs.runtime import NULL_HEARTBEAT, SweepHeartbeat

#: Packet-id stride between sweep points: point ``i`` draws its packet
#: ids from ``[i * stride, (i+1) * stride)``.  Far above any single
#: point's packet count, so ids never collide across points and every
#: point's ids are independent of execution order.
POINT_ID_STRIDE = 10_000_000


def point_seed(index: int, stride: int = POINT_ID_STRIDE) -> int:
    """First packet id for sweep point ``index`` (see module docstring)."""
    if index < 0:
        raise ValueError("sweep point index must be >= 0")
    return index * stride


def _timed_call(payload):
    """Pool shim wrapping a worker call with its wall time (module
    level so it pickles; used only when a heartbeat is attached)."""
    worker, spec = payload
    start = time.perf_counter()
    return worker(spec), time.perf_counter() - start


def run_sweep(worker: Callable[[Any], Any], specs: Sequence[Any],
              jobs: int = 1,
              heartbeat: Optional[SweepHeartbeat] = None) -> List[Any]:
    """Run ``worker(spec)`` for every spec, optionally in a process pool.

    ``jobs <= 1`` runs sequentially in-process (no pool, no pickling);
    ``jobs > 1`` fans the points over ``min(jobs, len(specs))``
    processes.  Either way the returned list is in spec order.
    ``heartbeat`` (a :class:`repro.obs.runtime.SweepHeartbeat`) reports
    per-point completion, wall time, and ETA as the sweep progresses.
    """
    if jobs <= 1 or len(specs) <= 1:
        pulse = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        pulse.begin(len(specs), jobs=1)
        outcomes = []
        for index, spec in enumerate(specs):
            with pulse.point(index):
                outcomes.append(worker(spec))
        pulse.finish()
        return outcomes
    import multiprocessing

    with multiprocessing.Pool(min(jobs, len(specs))) as pool:
        if heartbeat is None:
            return pool.map(worker, specs, chunksize=1)
        heartbeat.begin(len(specs), jobs=min(jobs, len(specs)))
        payloads = [(worker, spec) for spec in specs]
        outcomes = []
        try:
            for result, wall_s in pool.imap(_timed_call, payloads,
                                            chunksize=1):
                heartbeat.point_done(len(outcomes), wall_s)
                outcomes.append(result)
        except Exception as error:
            heartbeat.point_failed(len(outcomes), error)
            raise
        heartbeat.finish()
        return outcomes


@dataclass
class Table:
    """A printable experiment result table."""

    title: str
    headers: Sequence[str]
    rows: List[Sequence[Any]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(
                f"row has {len(values)} cells, expected "
                f"{len(self.headers)}")
        self.rows.append(values)

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def to_text(self) -> str:
        cells = [[_fmt(value) for value in row] for row in self.rows]
        widths = [len(header) for header in self.headers]
        for row in cells:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        lines = [self.title]
        lines.append("  ".join(
            header.ljust(widths[index])
            for index, header in enumerate(self.headers)))
        lines.append("  ".join("-" * width for width in widths))
        for row in cells:
            lines.append("  ".join(
                cell.ljust(widths[index])
                for index, cell in enumerate(row)))
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def column(self, header: str) -> List[Any]:
        index = list(self.headers).index(header)
        return [row[index] for row in self.rows]


def _fmt(value: Any) -> str:
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if abs(value) >= 1000 or (value != 0 and abs(value) < 0.001):
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)
