"""Section 6.2: scheduling rate.

Combines the cycle-accurate model (measured cycles per primitive
operation) with the clock model to reproduce the paper's numbers: 4
cycles per op; at 80 MHz non-pipelined that is one op per 50 ns —
"sufficient to schedule MTU-sized packets at 100 Gbps line rate"; on an
ASIC at 1 GHz, 4 ns.

Beyond the paper, :func:`software_rate_table` measures the *Python-side*
throughput of the software ordered-list backends (selected through
:mod:`repro.core.backends`), quantifying what the fast engine buys for
large simulations relative to the reference oracle.
"""

from __future__ import annotations

import random
import time
from typing import Optional, Sequence

from repro.core.backends import make_list
from repro.core.element import Element
from repro.experiments.runner import Table
from repro.hw.clock import (MTU_BUDGET_NS_AT_100G, pieo_rate_report,
                            pifo_rate_report)
from repro.hw.device import ASIC, STRATIX_V, Device


def _drive_random_ops(pieo, capacity: int, operations: int,
                      seed: int) -> None:
    """The canonical Section 6.2 workload: a random mix of enqueues and
    (often-ineligible) dequeues against a half-full list."""
    rng = random.Random(seed)
    next_flow = 0
    for _ in range(operations):
        if len(pieo) < capacity and (len(pieo) == 0 or rng.random() < 0.5):
            pieo.enqueue(Element(flow_id=next_flow,
                                 rank=rng.randint(0, 1 << 16),
                                 send_time=rng.randint(0, 1 << 16)))
            next_flow += 1
        else:
            pieo.dequeue(now=rng.randint(0, 1 << 16))


def measured_cycles_per_op(capacity: int = 1_024, operations: int = 2_000,
                           seed: int = 3) -> float:
    """Drive random enqueue/dequeue traffic through the hardware model
    and report average cycles per completed primitive operation."""
    pieo = make_list("hardware", capacity=capacity)
    _drive_random_ops(pieo, capacity, operations, seed)
    counted = sum(count for name, count in pieo.counters.ops.items()
                  if not name.endswith("_null"))
    null_cycles = sum(count for name, count in pieo.counters.ops.items()
                      if name.endswith("_null"))
    if counted == 0:
        return 0.0
    return (pieo.counters.cycles - null_cycles) / counted


def software_ops_per_sec(backend: str, capacity: int,
                         operations: int = 20_000, seed: int = 1) -> float:
    """Wall-clock primitive-op throughput of ``backend`` at ``capacity``.

    The list is pre-warmed to half full so both enqueue and dequeue paths
    see a realistic occupancy.  The random op stream (coin flips, fresh
    elements, ``now`` samples) is generated *before* the clock starts, so
    the measurement covers only the ordered-list operations themselves —
    every backend is handed the identical pre-built stream.
    """
    rng = random.Random(seed)
    pieo = make_list(backend, capacity=capacity)
    for index in range(capacity // 2):
        pieo.enqueue(Element(flow_id=("warm", index),
                             rank=rng.randint(0, 1 << 16),
                             send_time=rng.randint(0, 1 << 16)))
    ops_rng = random.Random(seed + 1)
    coins = [ops_rng.random() < 0.5 for _ in range(operations)]
    elements = [Element(flow_id=index,
                        rank=ops_rng.randint(0, 1 << 16),
                        send_time=ops_rng.randint(0, 1 << 16))
                for index in range(operations)]
    nows = [ops_rng.randint(0, 1 << 16) for _ in range(operations)]
    start = time.perf_counter()
    for index in range(operations):
        if len(pieo) < capacity and (len(pieo) == 0 or coins[index]):
            pieo.enqueue(elements[index])
        else:
            pieo.dequeue(now=nows[index])
    elapsed = time.perf_counter() - start
    return operations / elapsed if elapsed > 0 else float("inf")


def software_rate_table(backend: Optional[str] = None,
                        sizes: Sequence[int] = (256, 1_024, 4_096),
                        operations: int = 20_000) -> Table:
    """Python-side ops/sec of the software backends vs the reference.

    ``backend`` selects the engine under test (default ``"fast"``); the
    reference oracle is always measured alongside as the baseline.
    """
    backend = backend or "fast"
    table = Table(
        title=("Software backend throughput (Python-side primitive "
               "ops/sec; registry backends)"),
        headers=["backend", "size", "ops_per_sec", "speedup_vs_reference"],
    )
    for size in sizes:
        baseline = software_ops_per_sec("reference", size, operations)
        table.add_row("reference", size, round(baseline), 1.0)
        if backend != "reference":
            measured = software_ops_per_sec(backend, size, operations)
            table.add_row(backend, size, round(measured),
                          round(measured / baseline, 1))
    table.add_note("Identical random op mix per size (seeded); the fast "
                   "backend's chunked rank index and min-send-time "
                   "summaries remove the reference oracle's linear "
                   "eligibility scan.")
    return table


def rate_table(sizes: Sequence[int] = (1_024, 8_192, 30_000),
               device: Device = STRATIX_V) -> Table:
    """Section 6.2's scheduling-rate numbers across devices/sizes."""
    table = Table(
        title="Section 6.2: scheduling rate (non-pipelined)",
        headers=["design", "device", "size", "clock_mhz", "cycles_per_op",
                 "ns_per_op", "meets_mtu_100g"],
    )
    for size in sizes:
        report = pieo_rate_report(size, device)
        table.add_row("pieo", device.name, size,
                      round(report.clock_mhz, 1), report.cycles_per_op,
                      round(report.op_latency_ns, 1),
                      report.meets_mtu_at_100g)
    pifo = pifo_rate_report(1_024, device)
    table.add_row("pifo", device.name, 1_024, round(pifo.clock_mhz, 1),
                  pifo.cycles_per_op, round(pifo.op_latency_ns, 1),
                  pifo.meets_mtu_at_100g)
    asic = pieo_rate_report(30_000, ASIC)
    table.add_row("pieo", ASIC.name, 30_000, round(asic.clock_mhz, 1),
                  asic.cycles_per_op, round(asic.op_latency_ns, 1),
                  asic.meets_mtu_at_100g)
    table.add_note(f"MTU budget at 100 Gbps: {MTU_BUDGET_NS_AT_100G} ns "
                   "per decision (Section 1).")
    table.add_note("cycles_per_op is also measured empirically from the "
                   "cycle-accurate model: "
                   f"{measured_cycles_per_op():.2f} cycles/op.")
    return table
