"""Section 6.2: scheduling rate.

Combines the cycle-accurate model (measured cycles per primitive
operation) with the clock model to reproduce the paper's numbers: 4
cycles per op; at 80 MHz non-pipelined that is one op per 50 ns —
"sufficient to schedule MTU-sized packets at 100 Gbps line rate"; on an
ASIC at 1 GHz, 4 ns.
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.core.element import Element
from repro.core.pieo import PieoHardwareList
from repro.experiments.runner import Table
from repro.hw.clock import (MTU_BUDGET_NS_AT_100G, pieo_rate_report,
                            pifo_rate_report)
from repro.hw.device import ASIC, STRATIX_V, Device


def measured_cycles_per_op(capacity: int = 1_024, operations: int = 2_000,
                           seed: int = 3) -> float:
    """Drive random enqueue/dequeue traffic through the hardware model
    and report average cycles per completed primitive operation."""
    rng = random.Random(seed)
    pieo = PieoHardwareList(capacity)
    next_flow = 0
    for _ in range(operations):
        if len(pieo) < capacity and (len(pieo) == 0 or rng.random() < 0.5):
            pieo.enqueue(Element(flow_id=next_flow,
                                 rank=rng.randint(0, 1 << 16),
                                 send_time=rng.randint(0, 1 << 16)))
            next_flow += 1
        else:
            pieo.dequeue(now=rng.randint(0, 1 << 16))
    counted = sum(count for name, count in pieo.counters.ops.items()
                  if not name.endswith("_null"))
    null_cycles = sum(count for name, count in pieo.counters.ops.items()
                      if name.endswith("_null"))
    if counted == 0:
        return 0.0
    return (pieo.counters.cycles - null_cycles) / counted


def rate_table(sizes: Sequence[int] = (1_024, 8_192, 30_000),
               device: Device = STRATIX_V) -> Table:
    """Section 6.2's scheduling-rate numbers across devices/sizes."""
    table = Table(
        title="Section 6.2: scheduling rate (non-pipelined)",
        headers=["design", "device", "size", "clock_mhz", "cycles_per_op",
                 "ns_per_op", "meets_mtu_100g"],
    )
    for size in sizes:
        report = pieo_rate_report(size, device)
        table.add_row("pieo", device.name, size,
                      round(report.clock_mhz, 1), report.cycles_per_op,
                      round(report.op_latency_ns, 1),
                      report.meets_mtu_at_100g)
    pifo = pifo_rate_report(1_024, device)
    table.add_row("pifo", device.name, 1_024, round(pifo.clock_mhz, 1),
                  pifo.cycles_per_op, round(pifo.op_latency_ns, 1),
                  pifo.meets_mtu_at_100g)
    asic = pieo_rate_report(30_000, ASIC)
    table.add_row("pieo", ASIC.name, 30_000, round(asic.clock_mhz, 1),
                  asic.cycles_per_op, round(asic.op_latency_ns, 1),
                  asic.meets_mtu_at_100g)
    table.add_note(f"MTU budget at 100 Gbps: {MTU_BUDGET_NS_AT_100G} ns "
                   "per decision (Section 1).")
    table.add_note("cycles_per_op is also measured empirically from the "
                   "cycle-accurate model: "
                   f"{measured_cycles_per_op():.2f} cycles/op.")
    return table
