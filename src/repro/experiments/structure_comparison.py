"""Datastructure comparison (Section 7): PIEO vs PIFO vs P-heap.

The related-work argument, quantified on the cycle-accurate models: a
heap gives O(log N) priority-queue operations with only O(log N)
comparators, but the "Extract-Out" primitive degenerates to a search —
its measured cost grows with both the list size and the fraction of
ineligible elements, while PIEO stays at 4 cycles.
"""

from __future__ import annotations

import random

from repro.core.backends import make_list
from repro.core.element import Element
from repro.experiments.runner import Table


def _populate(structure, size: int, ineligible_fraction: float,
              rng: random.Random) -> None:
    for index in range(size):
        ineligible = rng.random() < ineligible_fraction
        structure.enqueue(Element(
            index, rank=rng.randint(0, 1 << 16),
            send_time=(1 << 20) if ineligible else 0))


def _extract_cost_cycles(structure, size: int, ineligible_fraction: float,
                         operations: int, seed: int) -> float:
    """Average cycles charged per eligible ``dequeue(now)``, measured by
    bracketing each dequeue with the model's cycle counter."""
    rng = random.Random(seed)
    _populate(structure, size, ineligible_fraction, rng)
    performed = 0
    dequeue_cycles = 0
    next_id = size
    for _ in range(operations):
        before = structure.counters.cycles
        element = structure.dequeue(now=0)
        dequeue_cycles += structure.counters.cycles - before
        if element is None:
            break
        performed += 1
        ineligible = rng.random() < ineligible_fraction
        structure.enqueue(Element(
            next_id, rank=rng.randint(0, 1 << 16),
            send_time=(1 << 20) if ineligible else 0))
        next_id += 1
    if performed == 0:
        return float("nan")
    return dequeue_cycles / performed


def structure_comparison_table(size: int = 1024,
                               operations: int = 300,
                               seed: int = 23) -> Table:
    """Measured Extract-Out cycles per structure and eligibility mix."""
    table = Table(
        title=(f"Section 7: Extract-Out cost by datastructure "
               f"(N = {size}, measured cycles per eligible dequeue)"),
        headers=["structure", "eligible-only", "25%_ineligible",
                 "75%_ineligible", "comparator_model"],
    )
    rows = [
        ("pieo (sqrt-N design)",
         lambda: make_list("hardware", capacity=size), "O(sqrt N)"),
        ("pifo-design pieo (flip-flops)",
         lambda: make_list("pifo-design", capacity=size), "O(N)"),
        ("p-heap",
         lambda: make_list("pheap", capacity=size), "O(log N)"),
    ]
    for name, factory, comparators in rows:
        cells = []
        for fraction in (0.0, 0.25, 0.75):
            cells.append(round(_extract_cost_cycles(
                factory(), size, fraction, operations, seed), 1))
        table.add_row(name, *cells, comparators)
    table.add_note("PIEO and the PIFO-design variant extract in constant "
                   "time regardless of eligibility mix; the heap's "
                   "extract cost explodes as ineligible elements force "
                   "it to search past its root — the Section 7 argument "
                   "for an ordered list over a heap.")
    return table
