"""Multi-port incast: shared-buffer contention under oversubscription.

The paper's hardware serves one output link per scheduler (Fig. 1); a
switch is N of those blocks around a shared packet memory.  This
experiment exercises that composition — the
:class:`~repro.sim.dataplane.Dataplane` — with the canonical workload
that stresses a shared buffer: an *incast*, where many senders converge
on one "hot" output port while the remaining ports run at moderate
load.  The hot port's offered load is ~2x its link rate, so the shared
memory fills and the admission stage must drop; sweeping the buffer
size shows how much memory it takes to ride out the burst, and the
drop-policy column shows where the pain lands (tail-drop punishes
arrivals, longest-queue push-out punishes the hog, RED sheds early).

Like fig11/fig12 the sweep goes through
:func:`repro.experiments.runner.run_sweep`: points are seeded from
their index and ``jobs > 1`` shards them over processes with output
byte-identical to the sequential run (mark-delimited trace merge
included).  Packet conservation (arrivals == departures + drops +
residue) is asserted on every point.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence, Tuple

from repro.experiments.runner import Table, point_seed, run_sweep
from repro.obs import Tracer
from repro.obs.runtime import NULL_HEARTBEAT
from repro.sched.framework import PieoScheduler
from repro.sched.registry import make_algorithm
from repro.sim.buffer import BufferManager
from repro.sim.classifier import StaticClassifier
from repro.sim.dataplane import Dataplane
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.generators import CbrGenerator
from repro.sim.link import gbps
from repro.sim.packet import MTU_BYTES, reset_packet_ids

#: Per-port link rate (each port gets its own wire).
LINK_GBPS = 10.0
#: Default shared-memory sizes to sweep (KiB).
DEFAULT_BUFFER_KIB = (8, 16, 32, 64, 128)
#: Senders converging on the hot port (2x oversubscription at 2.5 Gbps
#: each against the 10 Gbps link) and per cold port (0.5 load).
HOT_SENDERS = 8
COLD_SENDERS = 2
SENDER_GBPS = 2.5
HOT_PORT = "p0"


def build_incast(sim: Simulator, buffer_bytes: int,
                 ports: int = 4, drop_policy: str = "tail-drop",
                 algorithm: str = "drr", duration: float = 0.002,
                 backend: Optional[str] = None,
                 tracer=None, metrics=None) -> Dataplane:
    """Wire the incast topology onto ``sim`` and start its generators.

    ``ports`` output ports (ids ``p0..``), each with a 10 Gbps link and
    its own scheduler running ``algorithm``; flow ``p<i>.f<j>`` is
    statically classified to port ``p<i>``.  Port ``p0`` is the hot
    port (8 senders, 2x oversubscribed); every other port carries 2
    senders (0.5 load).  All ports share one ``buffer_bytes`` memory
    under ``drop_policy``.  ``backend`` selects each scheduler's
    ordered-list engine (:mod:`repro.core.backends`; None means the
    registry default) — a result-preserving substitution.
    """
    buffer = BufferManager(capacity_bytes=buffer_bytes,
                           policy=drop_policy,
                           tracer=tracer, metrics=metrics)
    port_ids = [f"p{index}" for index in range(ports)]
    flows = {port_id: [f"{port_id}.f{sender}" for sender in range(
        HOT_SENDERS if port_id == HOT_PORT else COLD_SENDERS)]
        for port_id in port_ids}
    mapping = {flow_id: port_id for port_id, ids in flows.items()
               for flow_id in ids}
    dataplane = Dataplane(sim, classifier=StaticClassifier(mapping),
                          buffer=buffer, tracer=tracer,
                          metrics=metrics)
    for port_id in port_ids:

        def make_scheduler(port_tracer, port_metrics):
            return PieoScheduler(make_algorithm(algorithm),
                                 link_rate_bps=gbps(LINK_GBPS),
                                 backend=backend,
                                 tracer=port_tracer,
                                 metrics=port_metrics)

        dataplane.add_port(port_id, make_scheduler=make_scheduler,
                           link_rate_bps=gbps(LINK_GBPS))
        for sender, flow_id in enumerate(flows[port_id]):
            dataplane.ports[port_id].scheduler.add_flow(
                FlowQueue(flow_id))
            generator = CbrGenerator(sim, flow_id,
                                     dataplane.arrival_sink,
                                     rate_bps=gbps(SENDER_GBPS),
                                     size_bytes=MTU_BYTES,
                                     end_time=duration)
            # Stagger starts one MTU-time apart so the hot port's
            # senders don't arrive in one degenerate burst.
            generator.start(sender * MTU_BYTES * 8
                            / gbps(LINK_GBPS))
    return dataplane


def _incast_point(spec: Tuple, tracer=None,
                  metrics=None) -> Tuple[dict, str]:
    """One incast sweep point (module-level: picklable for ``--jobs``).

    Returns ``(stats_dict, trace_jsonl)``; the trace string is filled
    only when running sharded with tracing requested (the parent
    merges it).
    """
    (index, buffer_kib, ports, drop_policy, algorithm, backend,
     duration, event_queue, traced) = spec
    reset_packet_ids(point_seed(index))
    sink = None
    if tracer is None and traced:
        sink = io.StringIO()
        tracer = Tracer(capacity=0, sink=sink)
    sim = Simulator(tracer=tracer, metrics=metrics, queue=event_queue)
    dataplane = build_incast(sim, buffer_bytes=buffer_kib * 1024,
                             ports=ports, drop_policy=drop_policy,
                             algorithm=algorithm, duration=duration,
                             backend=backend,
                             tracer=tracer, metrics=metrics)
    sim.run_until(duration)
    conservation = dataplane.conservation()
    if not conservation["balanced"]:
        raise AssertionError(
            f"packet conservation violated at buffer={buffer_kib}KiB: "
            f"{conservation}")
    buffer = dataplane.buffer
    hot = dataplane.ports[HOT_PORT]
    stats = {
        "arrivals": conservation["arrivals"],
        "delivered": conservation["departures"],
        "drops": conservation["drops"],
        "residue": conservation["residue"],
        "hot_drops": buffer.drops_by_port.get(HOT_PORT, 0),
        "evicted": buffer.evicted,
        "hot_gbps": len(hot.recorder) * MTU_BYTES * 8
        / duration / 1e9,
    }
    return stats, sink.getvalue() if sink is not None else ""


def incast_table(buffer_kib_sweep: Sequence[int] = DEFAULT_BUFFER_KIB,
                 ports: int = 4, drop_policy: str = "tail-drop",
                 algorithm: str = "drr", duration: float = 0.002,
                 backend: Optional[str] = None,
                 tracer=None, metrics=None,
                 event_queue: str = "reference",
                 jobs: int = 1, heartbeat=None) -> Table:
    """Incast sweep: drops vs shared-buffer size on a 4-port dataplane.

    ``tracer``/``metrics`` observe every simulation in the sweep (drop
    events carry ``port`` labels; metric names are scoped
    ``port.<id>.*``); a ``mark`` event delimits each sweep point in the
    trace stream.  ``event_queue`` selects the simulator's
    pending-event backend, ``backend`` the per-port schedulers'
    ordered-list engine, and ``jobs`` shards sweep points over
    processes — all three leave every result byte-identical.
    (``metrics``
    aggregation is in-process, so a metrics-observed sweep always runs
    sequentially.)
    """
    total = HOT_SENDERS + COLD_SENDERS * (ports - 1)
    table = Table(
        title=(f"Incast: {HOT_SENDERS} senders into port {HOT_PORT} "
               f"(2x oversubscribed) on a {ports}-port dataplane, "
               f"{total} flows, policy={drop_policy}, "
               f"algorithm={algorithm}"),
        headers=["buffer_kib", "arrivals", "delivered", "drops",
                 "hot_drops", "evicted", "hot_gbps", "drop_pct"],
    )
    specs = [(index, buffer_kib, ports, drop_policy, algorithm,
              backend, duration, event_queue, tracer is not None)
             for index, buffer_kib in enumerate(buffer_kib_sweep)]
    sharded = jobs > 1 and metrics is None
    if sharded:
        outcomes = run_sweep(_incast_point, specs, jobs=jobs,
                             heartbeat=heartbeat)
        if tracer is not None:
            for spec, (_, lines) in zip(specs, outcomes):
                tracer.mark(0.0, "incast.sweep", buffer_kib=spec[1],
                            drop_policy=drop_policy)
                tracer.absorb_jsonl(lines.splitlines())
    else:
        pulse = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        pulse.begin(len(specs), jobs=1)
        outcomes = []
        for spec in specs:
            if tracer is not None:
                tracer.mark(0.0, "incast.sweep", buffer_kib=spec[1],
                            drop_policy=drop_policy)
            with pulse.point(spec[0]):
                outcomes.append(_incast_point(spec, tracer=tracer,
                                              metrics=metrics))
        pulse.finish()
    for spec, (stats, _) in zip(specs, outcomes):
        drop_pct = (100.0 * stats["drops"] / stats["arrivals"]
                    if stats["arrivals"] else 0.0)
        table.add_row(spec[1], stats["arrivals"], stats["delivered"],
                      stats["drops"], stats["hot_drops"],
                      stats["evicted"], round(stats["hot_gbps"], 4),
                      round(drop_pct, 2))
    table.add_note("hot_drops = drops charged to the oversubscribed "
                   "port; conservation (arrivals == delivered + drops "
                   "+ residue) is asserted per row.  Larger buffers "
                   "absorb the incast; the hot link tops out at "
                   f"{LINK_GBPS} Gbps regardless.")
    return table
