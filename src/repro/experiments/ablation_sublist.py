"""Ablation: sublist size s vs the paper's choice s = sqrt(N).

Section 5.1's trade-off: with sublists of size s the design needs
``2 * ceil(N/s)`` pointer lanes and ``2s`` sublist lanes — minimized at
s = sqrt(N) — while every operation still takes 4 cycles.  This ablation
quantifies the lane count (logic cost) and verifies cycle counts across
sublist sizes on the cycle-accurate model.
"""

from __future__ import annotations

import math
import random
from typing import Sequence

from repro.core.backends import make_list
from repro.core.element import Element
from repro.core.pieo import PieoHardwareList, default_sublist_size
from repro.experiments.runner import Table
from repro.hw.resources import ALMS_PER_LANE, pieo_lanes


def _exercise(capacity: int, sublist_size: int, operations: int,
              seed: int) -> PieoHardwareList:
    rng = random.Random(seed)
    pieo = make_list("hardware", capacity=capacity,
                     sublist_size=sublist_size)
    next_flow = 0
    for _ in range(operations):
        if len(pieo) < capacity and (len(pieo) == 0 or rng.random() < 0.55):
            pieo.enqueue(Element(flow_id=next_flow,
                                 rank=rng.randint(0, 1000),
                                 send_time=rng.randint(0, 1000)))
            next_flow += 1
        else:
            pieo.dequeue(now=rng.randint(0, 1000))
    return pieo


def sublist_ablation_table(capacity: int = 4_096,
                           sizes: Sequence[int] = (8, 16, 32, 64, 128, 256),
                           operations: int = 4_000) -> Table:
    """Lane count / cycle cost across sublist sizes (s vs sqrt N)."""
    table = Table(
        title=f"Ablation: sublist size (N = {capacity}; paper uses "
              f"s = ceil(sqrt(N)) = {default_sublist_size(capacity)})",
        headers=["sublist_size", "num_sublists", "lanes", "alms_est",
                 "cycles_per_op", "comparators_per_op"],
    )
    for size in sizes:
        pieo = _exercise(capacity, size, operations, seed=11)
        ops = sum(count for name, count in pieo.counters.ops.items()
                  if not name.endswith("_null"))
        nulls = sum(count for name, count in pieo.counters.ops.items()
                    if name.endswith("_null"))
        cycles = (pieo.counters.cycles - nulls) / max(1, ops)
        comparators = pieo.counters.comparator_activations / max(
            1, ops + nulls)
        lanes = pieo_lanes(capacity, size)
        table.add_row(size, 2 * math.ceil(capacity / size), round(lanes),
                      round(lanes * ALMS_PER_LANE), round(cycles, 2),
                      round(comparators, 1))
    table.add_note("Lane count (and hence logic) is minimized near "
                   "s = sqrt(N); cycles/op stays at 4 regardless, because "
                   "the datapath width, not the op count, absorbs s.")
    return table
