"""Full-evaluation report generation.

``python -m repro.experiments.report [output.md]`` runs every experiment
and writes a single markdown document with all tables — the one-command
regeneration of the paper's evaluation section.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO

import repro


def write_report(stream: TextIO) -> int:
    """Run every experiment and write the report; returns table count."""
    from repro.experiments import all_tables

    stream.write("# PIEO reproduction — full evaluation report\n\n")
    stream.write(f"Library version {repro.__version__}.  Regenerate "
                 "with `python -m repro.experiments.report`.\n")
    tables = all_tables()
    for table in tables:
        stream.write(f"\n## {table.title}\n\n```\n")
        stream.write(table.to_text())
        stream.write("\n```\n")
    from repro.experiments.charts import fig8_chart, fig10_chart
    stream.write("\n## Figure shapes\n\n```\n")
    stream.write(fig8_chart())
    stream.write("\n\n")
    stream.write(fig10_chart())
    stream.write("\n```\n")
    return len(tables)


def main(argv) -> int:
    """CLI entry point: write the report to argv[1] or stdout."""
    path: Optional[str] = argv[1] if len(argv) > 1 else None
    started = time.time()
    if path is None:
        count = write_report(sys.stdout)
    else:
        with open(path, "w") as stream:
            count = write_report(stream)
        print(f"wrote {count} tables to {path} in "
              f"{time.time() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
