"""Ablation: approximate datastructures vs exact PIEO (Section 2.3).

Quantifies the paper's argument that calendar queues, timing wheels, and
multi-priority FIFOs "could only express approximate versions of key
packet scheduling algorithms, invariably resulting in weaker performance
guarantees", and that their accuracy hinges on configuration parameters
that "are not trivial to fine-tune".

Workload: a random population of (rank, send_time) elements; every
structure is drained with the same dequeue clock, and the resulting
service order is compared against the exact PIEO order.
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.analysis.deviation import kendall_tau_distance, max_deviation
from repro.baselines.approximate import (CalendarQueue, MultiPriorityFifo,
                                         TimingWheel)
from repro.core.backends import make_list
from repro.core.element import Element
from repro.core.interfaces import PieoList
from repro.experiments.runner import Table

RANK_SPACE = 1_000.0
TIME_SPACE = 100.0


def _workload(size: int, seed: int) -> List[Element]:
    rng = random.Random(seed)
    return [Element(flow_id=index, rank=rng.uniform(0, RANK_SPACE),
                    send_time=rng.uniform(0, TIME_SPACE))
            for index in range(size)]


def _service_order(structure: PieoList, elements: Sequence[Element],
                   service_interval: float) -> List[int]:
    """Drain ``structure`` at one element per ``service_interval``.

    The finite service rate lets a backlog of simultaneously eligible
    elements build up — the regime where rank ordering matters and
    approximation error becomes visible.
    """
    for element in elements:
        structure.enqueue(element.copy())
    order: List[int] = []
    now = 0.0
    while len(structure):
        served = structure.dequeue(now)
        if served is None:
            # Advance the clock: to the next eligibility instant when it
            # is in the future, else by a small step (a head-of-line
            # blocked structure can hide an already-eligible element).
            candidate = structure.min_send_time()
            now = candidate if candidate > now else now + TIME_SPACE / 100
            continue
        order.append(served.flow_id)
        now += service_interval
    return order


def approx_structures_table(size: int = 200, seed: int = 5,
                            bucket_counts: Sequence[int] = (4, 16, 64),
                            ) -> Table:
    """Order deviation of each approximate structure vs exact PIEO."""
    elements = _workload(size, seed)
    # Serve at ~half the mean eligibility rate so a backlog forms while
    # elements are still being released.
    service_interval = TIME_SPACE / size * 2
    ideal = _service_order(make_list("reference"), elements,
                           service_interval)
    table = Table(
        title=(f"Approximate structures vs exact PIEO "
               f"({size} elements, random ranks/send-times)"),
        headers=["structure", "buckets", "max_deviation", "kendall_tau"],
    )
    table.add_row("pieo (exact)", "-", 0, 0.0)
    candidates: List[tuple] = []
    for buckets in bucket_counts:
        candidates.append(("calendar_queue", buckets,
                           CalendarQueue(buckets, RANK_SPACE / buckets)))
        candidates.append(("timing_wheel", buckets,
                           TimingWheel(buckets, TIME_SPACE / buckets)))
        candidates.append(("multi_priority_fifo", buckets,
                           MultiPriorityFifo(buckets,
                                             RANK_SPACE / buckets)))
    for name, buckets, structure in candidates:
        order = _service_order(structure, elements, service_interval)
        table.add_row(name, buckets, max_deviation(ideal, order),
                      round(kendall_tau_distance(ideal, order), 4))
    table.add_note("Deviation shrinks as bucket counts grow (the "
                   "hard-to-tune parameter) but never reaches the exact "
                   "order PIEO produces by construction.")
    return table
