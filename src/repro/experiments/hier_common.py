"""Shared setup for the Section 6.3 programmability experiments.

Topology (paper): a two-level hierarchical scheduler with ten level-2
nodes and ten flows per node (100 flows total); one backlogged packet
generator per flow; a 40 Gbps link; MTU-granularity scheduling.  Token
Bucket enforces per-node rate limits at level 2; WF2Q+ shares each node's
rate across its flows at level 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.sched.hierarchical import HierarchicalScheduler, two_level_tree
from repro.sched.token_bucket import TokenBucket
from repro.sched.wf2q import WF2Qplus
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.generators import BackloggedSource
from repro.sim.link import Link, gbps
from repro.sim.packet import MTU_BYTES

NUM_NODES = 10
FLOWS_PER_NODE = 10
LINK_GBPS = 40.0
WARMUP_FRACTION = 0.1


@dataclass
class HierRun:
    """Results of one hierarchical-scheduler simulation."""

    engine: TransmitEngine
    sim: Simulator
    duration: float
    node_rates_bps: Dict[str, float]
    flow_rates_bps: Dict[str, float]


def node_of(flow_id: str) -> str:
    """The level-2 node owning a leaf flow id like "n3.f7"."""
    return flow_id.split(".")[0]


def run_hierarchy(node_rate_gbps: Sequence[float],
                  duration: float = 0.02,
                  flow_weights: Optional[List[float]] = None,
                  packet_bytes: int = MTU_BYTES,
                  list_factory: Optional[Callable] = None,
                  flows_per_node: int = FLOWS_PER_NODE,
                  tracer=None, metrics=None,
                  event_queue: str = "reference",
                  drain: Optional[bool] = None) -> HierRun:
    """Simulate the Section 6.3 topology and measure achieved rates.

    ``node_rate_gbps[i]`` is node i's Token Bucket rate limit.  Rates are
    measured after a warm-up window.  ``tracer``/``metrics``
    (:mod:`repro.obs`) observe the whole stack: simulator timers, link
    serialization, per-level enqueue/dequeue, and packet
    arrivals/departures.  ``event_queue`` selects the simulator's
    pending-event backend (results are bit-identical across backends);
    ``drain`` forces the transmit engine's batched fast path on/off
    (default: automatic — on only for unobserved runs).
    """
    sim = Simulator(tracer=tracer, metrics=metrics, queue=event_queue)
    link = Link(gbps(LINK_GBPS), tracer=tracer)
    node_rates = [gbps(rate) for rate in node_rate_gbps]
    root, leaves = two_level_tree(
        TokenBucket(),
        [WF2Qplus() for _ in node_rates],
        flows_per_node=flows_per_node,
        node_rate_bps=node_rates,
        flow_weights=flow_weights,
    )
    scheduler = HierarchicalScheduler(root, link_rate_bps=link.rate_bps,
                                      list_factory=list_factory,
                                      tracer=tracer, metrics=metrics)
    engine = TransmitEngine(sim, scheduler, link,
                            tracer=tracer, metrics=metrics, drain=drain)
    for flow in leaves:
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2, size_bytes=packet_bytes)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)
    sim.run_until(duration)
    warmup = duration * WARMUP_FRACTION
    node_rates_measured = engine.recorder.rate_bps(
        start=warmup, end=duration, key=node_of)
    flow_rates_measured = engine.recorder.rate_bps(
        start=warmup, end=duration)
    return HierRun(engine=engine, sim=sim, duration=duration,
                   node_rates_bps=node_rates_measured,
                   flow_rates_bps=flow_rates_measured)


def default_node_rates() -> List[float]:
    """Varying per-node rate limits (Gbps) summing under the 40 Gbps
    link, mirroring "we assign varying rate-limit values to each node"."""
    return [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]
