"""CLI: regenerate every paper figure/table.

Usage::

    python -m repro.experiments                  # everything
    python -m repro.experiments fig11            # one experiment by keyword
    python -m repro.experiments --backend fast rate
    python -m repro.experiments --list-backends

``--backend`` selects the ordered-list engine (from the
:mod:`repro.core.backends` registry) for the experiments that exercise a
software list: the Fig. 2 expressiveness replay and the software
scheduling-rate table.  The cycle-accurate figures (fig8-fig10, the
ablations) always run on the ``"hardware"`` model — their entire point is
the accounting.
"""

from __future__ import annotations

import argparse
import inspect
import sys

from repro.experiments import (alms_table, all_nodes_table,
                               approx_structures_table, clock_table,
                               deviation_sweep, example_table,
                               fair_queue_table, pipeline_table,
                               rate_limit_table, rate_table,
                               scalability_table,
                               shaping_comparison_table,
                               software_rate_table, sram_table,
                               structure_comparison_table,
                               sublist_ablation_table,
                               trigger_ablation_table)

EXPERIMENTS = {
    "fig2": (example_table, deviation_sweep),
    "fig8": (alms_table,),
    "fig9": (sram_table,),
    "fig10": (clock_table,),
    "fig11": (rate_limit_table, all_nodes_table),
    "fig12": (fair_queue_table,),
    "rate": (rate_table, software_rate_table),
    "scalability": (scalability_table,),
    "ablation": (sublist_ablation_table, approx_structures_table,
                 trigger_ablation_table),
    "pipeline": (pipeline_table,),
    "shaping": (shaping_comparison_table,),
    "structures": (structure_comparison_table,),
}


def _print_charts() -> None:
    from repro.experiments.charts import (fig8_chart, fig10_chart,
                                          fig11_chart)
    for chart_fn in (fig8_chart, fig10_chart, fig11_chart):
        print(chart_fn())
        print()


def _call(table_fn, backend):
    """Pass ``backend`` only to experiments that accept it, so the
    cycle-accurate tables stay untouched by the flag."""
    if (backend is not None
            and "backend" in inspect.signature(table_fn).parameters):
        return table_fn(backend=backend)
    return table_fn()


def main(argv) -> int:
    """CLI entry point: print the selected (or all) experiments."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.")
    parser.add_argument(
        "keys", nargs="*",
        help=f"experiments to run: {', '.join(EXPERIMENTS)}, charts "
             "(default: all)")
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="ordered-list backend for software-list experiments "
             "(see --list-backends)")
    parser.add_argument(
        "--list-backends", action="store_true",
        help="list registered ordered-list backends and exit")
    args = parser.parse_args(argv[1:])

    if args.list_backends:
        from repro.core.backends import available_backends, get_backend
        for name in available_backends():
            print(f"{name:12s} {get_backend(name).description}")
        return 0
    if args.backend is not None:
        from repro.core.backends import get_backend
        from repro.errors import ConfigurationError
        try:
            get_backend(args.backend)  # fail fast on unknown names
        except ConfigurationError as error:
            print(error)
            return 2

    keys = args.keys if args.keys else list(EXPERIMENTS) + ["charts"]
    for key in keys:
        if key == "charts":
            _print_charts()
            continue
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; choose from "
                  f"{', '.join(EXPERIMENTS)}, charts")
            return 2
        for table_fn in EXPERIMENTS[key]:
            print(_call(table_fn, args.backend).to_text())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
