"""CLI: regenerate every paper figure/table.

Usage::

    python -m repro.experiments            # everything
    python -m repro.experiments fig11      # one experiment by keyword
"""

from __future__ import annotations

import sys

from repro.experiments import (alms_table, all_nodes_table,
                               approx_structures_table, clock_table,
                               deviation_sweep, example_table,
                               fair_queue_table, pipeline_table,
                               rate_limit_table, rate_table,
                               scalability_table,
                               shaping_comparison_table, sram_table,
                               structure_comparison_table,
                               sublist_ablation_table,
                               trigger_ablation_table)

EXPERIMENTS = {
    "fig2": (example_table, deviation_sweep),
    "fig8": (alms_table,),
    "fig9": (sram_table,),
    "fig10": (clock_table,),
    "fig11": (rate_limit_table, all_nodes_table),
    "fig12": (fair_queue_table,),
    "rate": (rate_table,),
    "scalability": (scalability_table,),
    "ablation": (sublist_ablation_table, approx_structures_table,
                 trigger_ablation_table),
    "pipeline": (pipeline_table,),
    "shaping": (shaping_comparison_table,),
    "structures": (structure_comparison_table,),
}


def _print_charts() -> None:
    from repro.experiments.charts import (fig8_chart, fig10_chart,
                                          fig11_chart)
    for chart_fn in (fig8_chart, fig10_chart, fig11_chart):
        print(chart_fn())
        print()


def main(argv) -> int:
    """CLI entry point: print the selected (or all) experiments."""
    keys = argv[1:] if len(argv) > 1 else list(EXPERIMENTS) + ["charts"]
    for key in keys:
        if key == "charts":
            _print_charts()
            continue
        if key not in EXPERIMENTS:
            print(f"unknown experiment {key!r}; choose from "
                  f"{', '.join(EXPERIMENTS)}, charts")
            return 2
        for table_fn in EXPERIMENTS[key]:
            print(table_fn().to_text())
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
