"""CLI: regenerate every paper figure/table.

Usage::

    python -m repro.experiments                  # everything
    python -m repro.experiments fig11            # one experiment by keyword
    python -m repro.experiments --backend fast rate
    python -m repro.experiments --list-backends
    python -m repro.experiments fig11 --trace t.jsonl --metrics m.json
    python -m repro.experiments fig11 --trace t.jsonl --analyze
    python -m repro.experiments fig12 --event-queue calendar --jobs 4
    python -m repro.experiments incast --ports 4 --drop-policy red
    python -m repro.experiments incast --algorithm wfq --trace t.jsonl
    python -m repro.experiments --list-algorithms
    python -m repro.experiments fig12 --jobs 4 --heartbeat
    python -m repro.experiments fig11 --trace t.jsonl --profile-runtime

``--backend`` selects the ordered-list engine (from the
:mod:`repro.core.backends` registry) for the experiments that exercise a
software list: the Fig. 2 expressiveness replay and the software
scheduling-rate table.  The cycle-accurate figures (fig8-fig10, the
ablations) always run on the ``"hardware"`` model — their entire point is
the accounting.

``--trace FILE`` streams structured events (JSONL, one JSON object per
line) from every simulation-driven experiment that supports
observability (fig11, fig12); ``--metrics FILE`` writes the aggregated
counters/gauges/histograms as JSON after the run.  ``--duration SECONDS``
overrides the simulated duration of those experiments (handy for quick
traced runs).  ``--analyze`` pipes the finished ``--trace`` file through
``python -m repro.obs summarize`` for per-flow latency attribution and
then through ``python -m repro.conformance check --trace`` so every
traced experiment run doubles as a conformance audit (non-zero exit on
any violated invariant).

``--event-queue NAME`` selects the simulator's pending-event backend
(from the :mod:`repro.sim.events` registry; see
``--list-event-queues``) and ``--jobs N`` shards sweep-style
experiments' points over N worker processes.  Both are
result-preserving: tables and traces stay byte-identical to the
defaults (DESIGN.md section 9).

``--heartbeat`` reports sweep liveness (points completed, per-point
wall time, ETA, worker health) on stderr — and, when tracing, as
``sweep.heartbeat`` mark events (wall-clock fields, so the trace is no
longer byte-reproducible).  ``--profile-runtime [FILE]`` samples the
host call stack for the whole run and writes a per-component wall-time
attribution report (:mod:`repro.obs.runtime`): JSON to ``FILE``, to
``<trace>.runtime.json`` when only ``--trace`` is given (where
``python -m repro.obs summarize`` picks it up automatically), or text
to stderr with neither.

The multi-port incast experiment additionally honours ``--ports N``
(output-port count), ``--drop-policy NAME`` (shared-buffer admission,
from the :mod:`repro.sim.buffer` registry; see
``--list-drop-policies``), and ``--algorithm NAME`` (per-port
scheduler, from the :mod:`repro.sched.registry` catalogue; see
``--list-algorithms``).  DESIGN.md section 10 covers the dataplane
composition.

The multi-switch experiments (``fct``, ``fabric-incast``) run whole
:mod:`repro.net` fabrics — routed hosts, per-switch shared buffers,
seeded ECMP — and additionally honour ``--workload NAME`` (heavy-tail
flow-size distribution for ``fct``: web-search, data-mining, pareto).
DESIGN.md section 13 covers the fabric layer.

::

    python -m repro.experiments fct --algorithm fcfs --jobs 3
    python -m repro.experiments fct --workload web-search --trace t.jsonl
    python -m repro.experiments fabric-incast --drop-policy red
"""

from __future__ import annotations

import argparse
import contextlib
import inspect
import sys

from repro.experiments import (alms_table, all_nodes_table,
                               approx_structures_table, clock_table,
                               deviation_sweep, example_table,
                               fabric_incast_table, fair_queue_table,
                               fct_table, incast_table,
                               pipeline_table,
                               rate_limit_table, rate_table,
                               scalability_table,
                               shaping_comparison_table,
                               software_rate_table, sram_table,
                               structure_comparison_table,
                               sublist_ablation_table,
                               trigger_ablation_table)

EXPERIMENTS = {
    "fig2": (example_table, deviation_sweep),
    "fig8": (alms_table,),
    "fig9": (sram_table,),
    "fig10": (clock_table,),
    "fig11": (rate_limit_table, all_nodes_table),
    "fig12": (fair_queue_table,),
    "incast": (incast_table,),
    "fabric-incast": (fabric_incast_table,),
    "fct": (fct_table,),
    "rate": (rate_table, software_rate_table),
    "scalability": (scalability_table,),
    "ablation": (sublist_ablation_table, approx_structures_table,
                 trigger_ablation_table),
    "pipeline": (pipeline_table,),
    "shaping": (shaping_comparison_table,),
    "structures": (structure_comparison_table,),
}

#: Reusable no-op scope for the unprofiled path.
_NULL_PHASE = contextlib.nullcontext()


def _write_runtime_report(report, dest, trace_path) -> None:
    """Emit a ``--profile-runtime`` report: JSON to a file, or text to
    stderr when the destination is ``-`` (the traceless default)."""
    import json
    if dest == "":
        dest = (f"{trace_path}.runtime.json" if trace_path is not None
                else "-")
    if dest == "-":
        print(report.to_text(), file=sys.stderr)
        return
    with open(dest, "w") as handle:
        json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
        handle.write("\n")
    print(f"runtime profile -> {dest}", file=sys.stderr)


def _print_charts() -> None:
    from repro.experiments.charts import (fig8_chart, fig10_chart,
                                          fig11_chart)
    for chart_fn in (fig8_chart, fig10_chart, fig11_chart):
        print(chart_fn())
        print()


def _call(table_fn, backend, tracer=None, metrics=None, duration=None,
          event_queue=None, jobs=None, ports=None, drop_policy=None,
          algorithm=None, workload=None, heartbeat=None):
    """Pass each option only to experiments that accept it, so the
    cycle-accurate tables stay untouched by the flags."""
    parameters = inspect.signature(table_fn).parameters
    kwargs = {}
    if heartbeat is not None and "heartbeat" in parameters:
        kwargs["heartbeat"] = heartbeat
    if backend is not None and "backend" in parameters:
        kwargs["backend"] = backend
    if tracer is not None and "tracer" in parameters:
        kwargs["tracer"] = tracer
    if metrics is not None and "metrics" in parameters:
        kwargs["metrics"] = metrics
    if duration is not None and "duration" in parameters:
        kwargs["duration"] = duration
    if event_queue is not None and "event_queue" in parameters:
        kwargs["event_queue"] = event_queue
    if jobs is not None and "jobs" in parameters:
        kwargs["jobs"] = jobs
    if ports is not None and "ports" in parameters:
        kwargs["ports"] = ports
    if drop_policy is not None and "drop_policy" in parameters:
        kwargs["drop_policy"] = drop_policy
    if algorithm is not None and "algorithm" in parameters:
        kwargs["algorithm"] = algorithm
    if workload is not None and "workload" in parameters:
        kwargs["workload"] = workload
    return table_fn(**kwargs)


def main(argv) -> int:
    """CLI entry point: print the selected (or all) experiments."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the paper's figures and tables.")
    parser.add_argument(
        "keys", nargs="*",
        help=f"experiments to run: {', '.join(EXPERIMENTS)}, charts "
             "(default: all)")
    parser.add_argument(
        "--backend", default=None, metavar="NAME",
        help="ordered-list backend for software-list experiments "
             "(see --list-backends)")
    parser.add_argument(
        "--list-backends", action="store_true",
        help="list registered ordered-list backends and exit")
    parser.add_argument(
        "--trace", default=None, metavar="FILE",
        help="stream structured trace events (JSONL) from "
             "observability-aware experiments to FILE")
    parser.add_argument(
        "--metrics", default=None, metavar="FILE",
        help="write aggregated metrics (JSON) from observability-aware "
             "experiments to FILE")
    parser.add_argument(
        "--duration", default=None, type=float, metavar="SECONDS",
        help="override the simulated duration of simulation-driven "
             "experiments")
    parser.add_argument(
        "--analyze", action="store_true",
        help="after the run, summarize the --trace file with "
             "'python -m repro.obs summarize' (requires --trace)")
    parser.add_argument(
        "--event-queue", default=None, metavar="NAME",
        help="simulator pending-event backend for simulation-driven "
             "experiments (see --list-event-queues); results are "
             "bit-identical across backends")
    parser.add_argument(
        "--list-event-queues", action="store_true",
        help="list registered event-queue backends and exit")
    parser.add_argument(
        "--jobs", default=None, type=int, metavar="N",
        help="shard sweep points of sweep-style experiments (fig11, "
             "fig12, incast) over N worker processes; output is "
             "byte-identical to --jobs 1")
    parser.add_argument(
        "--ports", default=None, type=int, metavar="N",
        help="number of output ports for multi-port experiments "
             "(incast; default 4)")
    parser.add_argument(
        "--drop-policy", default=None, metavar="NAME",
        help="shared-buffer drop policy for multi-port experiments "
             "(see --list-drop-policies)")
    parser.add_argument(
        "--list-drop-policies", action="store_true",
        help="list registered shared-buffer drop policies and exit")
    parser.add_argument(
        "--algorithm", default=None, metavar="NAME",
        help="per-port scheduling algorithm for experiments that "
             "accept one (incast; see --list-algorithms)")
    parser.add_argument(
        "--list-algorithms", action="store_true",
        help="list registered scheduling algorithms and exit")
    parser.add_argument(
        "--workload", default=None, metavar="NAME",
        help="flow-size workload for the fct experiment: web-search, "
             "data-mining, or pareto (default pareto)")
    parser.add_argument(
        "--profile-runtime", nargs="?", const="", default=None,
        metavar="FILE",
        help="profile host wall-clock time during the run and write a "
             "component-attribution report (JSON) to FILE; with no "
             "FILE, defaults to <trace>.runtime.json when --trace is "
             "given, else prints the report to stderr")
    parser.add_argument(
        "--heartbeat", action="store_true",
        help="report sweep liveness (points done, per-point wall time, "
             "ETA) on stderr and, with --trace, as heartbeat mark "
             "events (wall-clock fields make the trace "
             "non-reproducible)")
    args = parser.parse_args(argv[1:])

    if args.list_backends:
        from repro.core.backends import available_backends, get_backend
        for name in available_backends():
            print(f"{name:12s} {get_backend(name).description}")
        return 0
    if args.list_event_queues:
        from repro.sim.events import (available_event_queues,
                                      get_event_queue)
        for name in available_event_queues():
            print(f"{name:12s} {get_event_queue(name).description}")
        return 0
    if args.list_drop_policies:
        from repro.sim.buffer import (available_drop_policies,
                                      get_drop_policy)
        for name in available_drop_policies():
            print(f"{name:14s} {get_drop_policy(name).description}")
        return 0
    if args.list_algorithms:
        from repro.sched.registry import (available_algorithms,
                                          get_algorithm)
        for name in available_algorithms():
            print(f"{name:16s} {get_algorithm(name).description}")
        return 0
    if args.drop_policy is not None:
        from repro.errors import ConfigurationError
        from repro.sim.buffer import get_drop_policy
        try:
            get_drop_policy(args.drop_policy)  # fail fast
        except ConfigurationError as error:
            print(error)
            return 2
    if args.algorithm is not None:
        from repro.errors import ConfigurationError
        from repro.sched.registry import get_algorithm
        try:
            get_algorithm(args.algorithm)  # fail fast
        except ConfigurationError as error:
            print(error)
            return 2
    if args.workload is not None:
        from repro.net.workload import WORKLOADS
        if args.workload not in WORKLOADS:
            print(f"unknown workload {args.workload!r}; choose from "
                  f"{', '.join(WORKLOADS)}")
            return 2
    if args.ports is not None and args.ports < 1:
        print(f"--ports must be >= 1, got {args.ports}")
        return 2
    if args.event_queue is not None:
        from repro.errors import ConfigurationError
        from repro.sim.events import get_event_queue
        try:
            get_event_queue(args.event_queue)  # fail fast
        except ConfigurationError as error:
            print(error)
            return 2
    if args.jobs is not None and args.jobs < 1:
        print(f"--jobs must be >= 1, got {args.jobs}")
        return 2
    if args.backend is not None:
        from repro.core.backends import get_backend
        from repro.errors import ConfigurationError
        try:
            get_backend(args.backend)  # fail fast on unknown names
        except ConfigurationError as error:
            print(error)
            return 2
    if args.duration is not None and args.duration <= 0:
        print(f"--duration must be positive, got {args.duration}")
        return 2
    if args.analyze and args.trace is None:
        print("--analyze requires --trace FILE")
        return 2

    tracer = None
    metrics = None
    if args.trace is not None:
        from repro.obs import Tracer
        tracer = Tracer.open_jsonl(args.trace)
    if args.metrics is not None:
        from repro.obs import MetricsRegistry
        metrics = MetricsRegistry()
    heartbeat = None
    if args.heartbeat:
        from repro.obs.runtime import SweepHeartbeat
        heartbeat = SweepHeartbeat(tracer=tracer)
    profiler = None
    if args.profile_runtime is not None:
        from repro.obs.runtime import RuntimeProfiler
        profiler = RuntimeProfiler()
        profiler.start()

    keys = args.keys if args.keys else list(EXPERIMENTS) + ["charts"]
    try:
        for key in keys:
            if key == "charts":
                _print_charts()
                continue
            if key not in EXPERIMENTS:
                print(f"unknown experiment {key!r}; choose from "
                      f"{', '.join(EXPERIMENTS)}, charts")
                return 2
            for table_fn in EXPERIMENTS[key]:
                with (profiler.phase(key) if profiler is not None
                      else _NULL_PHASE):
                    table = _call(table_fn, args.backend, tracer=tracer,
                                  metrics=metrics,
                                  duration=args.duration,
                                  event_queue=args.event_queue,
                                  jobs=args.jobs, ports=args.ports,
                                  drop_policy=args.drop_policy,
                                  algorithm=args.algorithm,
                                  workload=args.workload,
                                  heartbeat=heartbeat)
                print(table.to_text())
                print()
    finally:
        if tracer is not None:
            tracer.close()
            print(f"trace: {tracer.emitted} events -> {args.trace}",
                  file=sys.stderr)
        if metrics is not None:
            metrics.write_json(args.metrics)
            print(f"metrics -> {args.metrics}", file=sys.stderr)
        if profiler is not None:
            profiler.stop()
            _write_runtime_report(profiler.report(),
                                  args.profile_runtime, args.trace)
    if args.analyze:
        from repro.conformance.__main__ import main as conf_main
        from repro.obs.__main__ import main as obs_main
        print()
        status = obs_main(["repro.obs", "summarize", args.trace])
        if status:
            return status
        # Conformance audit of the same trace: the universal
        # invariants (conservation, per-flow FIFO, link overlap) per
        # sweep segment; non-zero on any violation.
        print()
        return conf_main(["check", "--trace", args.trace])
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
