"""End-to-end flow completion time on a leaf-spine fabric.

The whole point of a programmable packet scheduler is what it does to
*flows*, not packets — so this experiment runs the full
:mod:`repro.net` stack: a leaf-spine fabric of
:class:`~repro.net.switch.FabricSwitch` dataplanes, hosts driving
open-loop Poisson flow arrivals with heavy-tailed sizes
(:mod:`repro.net.workload`), seeded-deterministic ECMP, and a
:class:`~repro.net.fct.FctCollector` reducing deliveries to the
normalized-FCT (slowdown) percentiles that the pFabric / PIAS /
SP-PIFO evaluation lineage reports.

One table row per offered load.  The short/long split (100 KB
threshold) is where scheduling policy is visible: under ``fcfs``
(one logical FIFO per port) short flows queue behind megabyte flows
and their p99 slowdown blows up with load; under a fair queueing
policy (``drr``, ``sfq``, ``wf2q+``) short flows keep near-ideal FCT
because each flow owns a fair share of every hop.  Run the experiment
twice with different ``--algorithm`` values to see the gap.

Sweep mechanics are identical to the other experiments: points are
seeded by index (packet ids AND every workload RNG derive from it), so
``--jobs N`` is byte-identical to sequential, and traced runs shard
with mark-delimited merge.
"""

from __future__ import annotations

import io
from typing import Optional, Sequence, Tuple

from repro.experiments.runner import Table, point_seed, run_sweep
from repro.net.fabric import Fabric
from repro.net.topology import leaf_spine
from repro.net.workload import OpenLoopWorkload, make_size_sampler
from repro.obs import Tracer
from repro.obs.runtime import NULL_HEARTBEAT
from repro.sim.packet import reset_packet_ids

#: Offered loads (fraction of host uplink capacity) to sweep.
DEFAULT_LOADS = (0.2, 0.5, 0.8)
#: Default fabric shape: 2 leaves x 2 spines, 2 hosts per leaf.
LEAVES = 2
SPINES = 2
HOSTS_PER_LEAF = 2
#: Shared buffer per switch (KiB).
BUFFER_KIB = 256
#: Flow arrivals stop at this simulated time; the run then drains.
DEFAULT_DURATION = 0.01


def build_fct_fabric(load: float, *, workload: str = "pareto",
                     leaves: int = LEAVES, spines: int = SPINES,
                     hosts_per_leaf: int = HOSTS_PER_LEAF,
                     algorithm: str = "drr",
                     drop_policy: str = "tail-drop",
                     buffer_kib: int = BUFFER_KIB,
                     duration: float = DEFAULT_DURATION,
                     backend: Optional[str] = None,
                     event_queue: str = "reference",
                     seed: int = 0,
                     tracer=None, metrics=None) -> Fabric:
    """Build the leaf-spine fabric and start every host's open-loop
    workload (arrivals stop at ``duration``; run ``fabric.sim`` past it
    to drain).  ``seed`` feeds ECMP hashing and every per-host RNG."""
    topology = leaf_spine(leaves=leaves, spines=spines,
                          hosts_per_leaf=hosts_per_leaf)
    fabric = Fabric(topology, algorithm=algorithm, backend=backend,
                    event_queue=event_queue,
                    buffer_bytes=buffer_kib * 1024,
                    drop_policy=drop_policy, seed=seed,
                    tracer=tracer, metrics=metrics)
    for host in topology.hosts:
        sampler = make_size_sampler(
            workload, rng=None)  # rng built by the workload per host
        generator = OpenLoopWorkload(fabric, host, load=load,
                                     sampler=sampler,
                                     end_time=duration, seed=seed)
        # Per-host sampler RNG: reuse the workload's own seeded RNG so
        # sizes are a pure function of (seed, host) too.
        sampler.rng = generator.rng
        generator.start(at=0.0)
    return fabric


def _fct_point(spec: Tuple, tracer=None,
               metrics=None) -> Tuple[dict, str]:
    """One FCT sweep point (module-level: picklable for ``--jobs``)."""
    (index, load, workload, leaves, spines, hosts_per_leaf, algorithm,
     drop_policy, buffer_kib, duration, backend, event_queue,
     traced) = spec
    seed = point_seed(index)
    reset_packet_ids(seed)
    sink = None
    if tracer is None and traced:
        sink = io.StringIO()
        tracer = Tracer(capacity=0, sink=sink)
    fabric = build_fct_fabric(load, workload=workload, leaves=leaves,
                              spines=spines,
                              hosts_per_leaf=hosts_per_leaf,
                              algorithm=algorithm,
                              drop_policy=drop_policy,
                              buffer_kib=buffer_kib, duration=duration,
                              backend=backend, event_queue=event_queue,
                              seed=seed, tracer=tracer, metrics=metrics)
    fabric.sim.run()
    conservation = fabric.conservation()
    if not conservation["balanced"]:
        raise AssertionError(
            f"fabric conservation violated at load={load}: "
            f"{conservation}")
    reordered = fabric.collector.reordered_total()
    if reordered:
        raise AssertionError(
            f"{reordered} reordered deliveries at load={load}: ECMP "
            "must be per-flow constant")
    stats = dict(fabric.collector.slowdown_stats())
    stats["drops"] = conservation["drops"]
    return stats, sink.getvalue() if sink is not None else ""


def fct_table(loads: Sequence[float] = DEFAULT_LOADS,
              workload: str = "pareto", leaves: int = LEAVES,
              spines: int = SPINES,
              hosts_per_leaf: int = HOSTS_PER_LEAF,
              algorithm: str = "drr",
              drop_policy: str = "tail-drop",
              buffer_kib: int = BUFFER_KIB,
              duration: float = DEFAULT_DURATION,
              backend: Optional[str] = None,
              tracer=None, metrics=None,
              event_queue: str = "reference",
              jobs: int = 1, heartbeat=None) -> Table:
    """FCT slowdown vs offered load on a leaf-spine fabric.

    Slowdown = measured FCT / ideal FCT along the flow's routed path;
    p50/p99 reported for all flows and split short (<= 100 KB) vs
    long.  ``--jobs`` shards loads over processes byte-identically;
    ``event_queue`` and ``backend`` are result-preserving
    substitutions, same as every other experiment.
    """
    hosts = leaves * hosts_per_leaf
    table = Table(
        title=(f"FCT on leaf-spine {leaves}x{spines} "
               f"({hosts} hosts), workload={workload}, "
               f"algorithm={algorithm}, policy={drop_policy}"),
        headers=["load", "flows", "done", "p50", "p99",
                 "short_p50", "short_p99", "long_p50", "long_p99",
                 "drops"],
    )
    specs = [(index, load, workload, leaves, spines, hosts_per_leaf,
              algorithm, drop_policy, buffer_kib, duration, backend,
              event_queue, tracer is not None)
             for index, load in enumerate(loads)]
    sharded = jobs > 1 and metrics is None
    if sharded:
        outcomes = run_sweep(_fct_point, specs, jobs=jobs,
                             heartbeat=heartbeat)
        if tracer is not None:
            for spec, (_, lines) in zip(specs, outcomes):
                tracer.mark(0.0, "fct.sweep", load=spec[1],
                            algorithm=algorithm)
                tracer.absorb_jsonl(lines.splitlines())
    else:
        pulse = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        pulse.begin(len(specs), jobs=1)
        outcomes = []
        for spec in specs:
            if tracer is not None:
                tracer.mark(0.0, "fct.sweep", load=spec[1],
                            algorithm=algorithm)
            with pulse.point(spec[0]):
                outcomes.append(_fct_point(spec, tracer=tracer,
                                           metrics=metrics))
        pulse.finish()
    for spec, (stats, _) in zip(specs, outcomes):
        table.add_row(spec[1], stats["flows"], stats["completed"],
                      round(stats["all_p50"], 3),
                      round(stats["all_p99"], 3),
                      round(stats["short_p50"], 3),
                      round(stats["short_p99"], 3),
                      round(stats["long_p50"], 3),
                      round(stats["long_p99"], 3),
                      stats["drops"])
    table.add_note("slowdown = FCT / ideal FCT on the flow's routed "
                   "path; short <= 100 KB.  Fabric-wide conservation "
                   "and zero reordering asserted per row.  Compare "
                   "--algorithm fcfs vs drr/sfq to see fair queueing "
                   "protect short-flow p99.")
    return table
