"""Ablation: input- vs output-triggered Pre-Enqueue (Section 3.2.1).

"The trade-off is that while the output-triggered model can provide more
precise guarantees for certain shaping policies, it also puts the
Pre-Enqueue function on the critical path of scheduling."

Scenario quantifying the precision side: a flow with a deep backlog is
token-bucket shaped at a low rate; mid-run the control plane raises its
rate limit 4x.

* output-triggered: tokens/send-times are computed at head-of-line time,
  so the very next packet uses the new rate — adaptation is immediate;
* input-triggered: every queued packet was stamped with rank/send_time
  at arrival under the *old* rate, so the flow keeps transmitting at the
  stale rate until the pre-change backlog drains.

The table reports the achieved rate in consecutive windows after the
change, plus the adaptation lag.
"""

from __future__ import annotations

from typing import List, Optional

from repro.experiments.runner import Table
from repro.sched.base import TriggerModel
from repro.sched.control import ControlPlane
from repro.sched.framework import PieoScheduler
from repro.sched.token_bucket import TokenBucket
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.link import Link, gbps
from repro.sim.packet import Packet

OLD_RATE_GBPS = 1.0
NEW_RATE_GBPS = 4.0
CHANGE_AT = 0.5e-3
#: Deep enough that the backlog outlives the measurement under either
#: trigger model (no drain artefacts).
BACKLOG_PACKETS = 800
WINDOW = 0.2e-3


def run_trigger_model(trigger: TriggerModel,
                      duration: float = 2.5e-3) -> List[float]:
    """Achieved rate (Gbps) per WINDOW bucket after the rate change."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TokenBucket(), trigger=trigger,
                              link_rate_bps=link.rate_bps)
    flow = scheduler.add_flow(FlowQueue("f",
                                        rate_bps=gbps(OLD_RATE_GBPS)))
    engine = TransmitEngine(sim, scheduler, link)
    control = ControlPlane(scheduler)
    for _ in range(BACKLOG_PACKETS):
        engine.arrival_sink("f", Packet("f", arrival_time=0.0))
    sim.schedule(CHANGE_AT, lambda: (
        control.set_rate_limit("f", gbps(NEW_RATE_GBPS), now=sim.now),
        engine.kick()))
    sim.run_until(duration)
    series = engine.recorder.rate_timeseries(bucket_seconds=WINDOW)
    start_bucket = int(CHANGE_AT / WINDOW) + 1
    # Drop the final (partial) window.
    return [rate / 1e9 for rate in series.get("f", [])[start_bucket:-1]]


def adaptation_lag_windows(rates: List[float],
                           threshold: float = 0.9) -> Optional[int]:
    """Windows until the achieved rate reaches threshold * new rate."""
    for index, rate in enumerate(rates):
        if rate >= threshold * NEW_RATE_GBPS:
            return index
    return None


def trigger_ablation_table() -> Table:
    """Adaptation lag after a rate change, per trigger model."""
    table = Table(
        title=("Ablation: trigger model vs shaping precision "
               f"(rate limit {OLD_RATE_GBPS} -> {NEW_RATE_GBPS} Gbps at "
               f"t={CHANGE_AT * 1e3:.1f} ms, {BACKLOG_PACKETS}-packet "
               "backlog)"),
        headers=["trigger", "windows_to_adapt",
                 "rate_in_first_window_gbps", "rate_after_adapt_gbps"],
    )
    for trigger in (TriggerModel.OUTPUT, TriggerModel.INPUT):
        rates = run_trigger_model(trigger)
        lag = adaptation_lag_windows(rates)
        table.add_row(trigger.value,
                      lag if lag is not None else "never",
                      round(rates[0], 2) if rates else "-",
                      round(rates[lag], 2) if lag is not None else "-")
    table.add_note("Output-triggered adapts in the first window (tokens "
                   "evaluated at head-of-line time); input-triggered "
                   "serves its stale-stamped backlog first — the "
                   "Section 3.2.1 precision trade-off. One window = "
                   f"{WINDOW * 1e6:.0f} us.")
    return table
