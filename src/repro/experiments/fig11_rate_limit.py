"""Fig. 11: rate-limit enforcement accuracy.

"We sample a random level-2 node, and show that PIEO scheduler very
accurately enforces the rate-limit on that node."  The experiment sweeps
the sampled node's configured rate limit and reports achieved vs
configured rate (all other nodes keep the default assignment).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.hier_common import (NUM_NODES, default_node_rates,
                                           run_hierarchy)
from repro.experiments.runner import Table

#: Sampled node index (deterministic stand-in for the paper's "random").
SAMPLED_NODE = 6

DEFAULT_SWEEP_GBPS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0)


def rate_limit_table(sweep_gbps: Sequence[float] = DEFAULT_SWEEP_GBPS,
                     duration: float = 0.02,
                     node_index: int = SAMPLED_NODE,
                     tracer=None, metrics=None) -> Table:
    """Fig. 11's sweep: configured vs achieved rate on one node.

    ``tracer``/``metrics`` observe every simulation in the sweep; a
    ``mark`` event delimits each sweep point in the trace stream.
    """
    table = Table(
        title=(f"Fig. 11: rate-limit enforcement on node n{node_index} "
               "(Token Bucket at level 2)"),
        headers=["configured_gbps", "achieved_gbps", "error_pct"],
    )
    worst = 0.0
    for target in sweep_gbps:
        rates = default_node_rates()
        rates[node_index] = target
        if tracer is not None:
            tracer.mark(0.0, "fig11.sweep", configured_gbps=target,
                        node=f"n{node_index}")
        run = run_hierarchy(rates, duration=duration,
                            tracer=tracer, metrics=metrics)
        achieved = run.node_rates_bps.get(f"n{node_index}", 0.0) / 1e9
        error = abs(achieved - target) / target * 100.0
        worst = max(worst, error)
        table.add_row(target, round(achieved, 4), round(error, 3))
    table.add_note(f"worst-case enforcement error {worst:.3f}% across the "
                   f"sweep ({NUM_NODES} nodes, 40 Gbps link); the paper "
                   "reports 'very accurate' enforcement.")
    return table


def all_nodes_table(duration: float = 0.02,
                    tracer=None, metrics=None) -> Table:
    """Enforcement across *all* ten nodes simultaneously."""
    rates = default_node_rates()
    if tracer is not None:
        tracer.mark(0.0, "fig11.all_nodes")
    run = run_hierarchy(rates, duration=duration,
                        tracer=tracer, metrics=metrics)
    table = Table(
        title="Fig. 11 (companion): simultaneous enforcement, all nodes",
        headers=["node", "configured_gbps", "achieved_gbps", "error_pct"],
    )
    for index, target in enumerate(rates):
        achieved = run.node_rates_bps.get(f"n{index}", 0.0) / 1e9
        error = abs(achieved - target) / target * 100.0
        table.add_row(f"n{index}", target, round(achieved, 4),
                      round(error, 3))
    return table
