"""Fig. 11: rate-limit enforcement accuracy.

"We sample a random level-2 node, and show that PIEO scheduler very
accurately enforces the rate-limit on that node."  The experiment sweeps
the sampled node's configured rate limit and reports achieved vs
configured rate (all other nodes keep the default assignment).

The sweep runs through :func:`repro.experiments.runner.run_sweep`: each
point is an independent simulation seeded from its index
(:func:`~repro.experiments.runner.point_seed`), so ``jobs > 1`` shards
points across worker processes with output byte-identical to the
sequential run — including the ``mark``-delimited trace stream, which
sharded workers serialize locally and the parent re-emits in point
order.
"""

from __future__ import annotations

import io
from typing import Sequence, Tuple

from repro.experiments.hier_common import (NUM_NODES, default_node_rates,
                                           run_hierarchy)
from repro.experiments.runner import Table, point_seed, run_sweep
from repro.obs import Tracer
from repro.obs.runtime import NULL_HEARTBEAT
from repro.sim.packet import reset_packet_ids

#: Sampled node index (deterministic stand-in for the paper's "random").
SAMPLED_NODE = 6

DEFAULT_SWEEP_GBPS = (0.5, 1.0, 2.0, 4.0, 6.0, 8.0)

#: Reserved sweep-point index for the companion all-nodes run, so its
#: packet-id namespace never collides with the sweep's points inside a
#: shared trace stream.
_ALL_NODES_POINT = 1000


def _rate_limit_point(spec: Tuple, tracer=None,
                      metrics=None) -> Tuple[float, str]:
    """One fig11 sweep point.  Module-level so ``--jobs`` can pickle it
    into a worker process.

    Returns ``(achieved_bps, trace_jsonl)``.  When running sharded (no
    shared tracer passed) with tracing requested, the point's events are
    serialized into ``trace_jsonl`` for the parent to merge; otherwise
    the string is empty.
    """
    index, target, node_index, duration, event_queue, traced = spec
    reset_packet_ids(point_seed(index))
    sink = None
    if tracer is None and traced:
        sink = io.StringIO()
        tracer = Tracer(capacity=0, sink=sink)
    rates = default_node_rates()
    rates[node_index] = target
    run = run_hierarchy(rates, duration=duration, tracer=tracer,
                        metrics=metrics, event_queue=event_queue)
    achieved = run.node_rates_bps.get(f"n{node_index}", 0.0)
    return achieved, sink.getvalue() if sink is not None else ""


def rate_limit_table(sweep_gbps: Sequence[float] = DEFAULT_SWEEP_GBPS,
                     duration: float = 0.02,
                     node_index: int = SAMPLED_NODE,
                     tracer=None, metrics=None,
                     event_queue: str = "reference",
                     jobs: int = 1, heartbeat=None) -> Table:
    """Fig. 11's sweep: configured vs achieved rate on one node.

    ``tracer``/``metrics`` observe every simulation in the sweep; a
    ``mark`` event delimits each sweep point in the trace stream.
    ``event_queue`` selects the simulator's pending-event backend and
    ``jobs`` shards sweep points over processes — both leave every
    result byte-identical.  (``metrics`` aggregation is in-process, so a
    metrics-observed sweep always runs sequentially.)  ``heartbeat``
    (:class:`repro.obs.runtime.SweepHeartbeat`) reports sweep liveness
    on stderr/trace without touching results.
    """
    table = Table(
        title=(f"Fig. 11: rate-limit enforcement on node n{node_index} "
               "(Token Bucket at level 2)"),
        headers=["configured_gbps", "achieved_gbps", "error_pct"],
    )
    specs = [(index, target, node_index, duration, event_queue,
              tracer is not None)
             for index, target in enumerate(sweep_gbps)]
    sharded = jobs > 1 and metrics is None
    if sharded:
        outcomes = run_sweep(_rate_limit_point, specs, jobs=jobs,
                             heartbeat=heartbeat)
        if tracer is not None:
            for spec, (_, lines) in zip(specs, outcomes):
                tracer.mark(0.0, "fig11.sweep", configured_gbps=spec[1],
                            node=f"n{node_index}")
                tracer.absorb_jsonl(lines.splitlines())
    else:
        pulse = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        pulse.begin(len(specs), jobs=1)
        outcomes = []
        for spec in specs:
            if tracer is not None:
                tracer.mark(0.0, "fig11.sweep", configured_gbps=spec[1],
                            node=f"n{node_index}")
            with pulse.point(spec[0]):
                outcomes.append(_rate_limit_point(spec, tracer=tracer,
                                                  metrics=metrics))
        pulse.finish()
    worst = 0.0
    for spec, (achieved_bps, _) in zip(specs, outcomes):
        target = spec[1]
        achieved = achieved_bps / 1e9
        error = abs(achieved - target) / target * 100.0
        worst = max(worst, error)
        table.add_row(target, round(achieved, 4), round(error, 3))
    table.add_note(f"worst-case enforcement error {worst:.3f}% across the "
                   f"sweep ({NUM_NODES} nodes, 40 Gbps link); the paper "
                   "reports 'very accurate' enforcement.")
    return table


def all_nodes_table(duration: float = 0.02,
                    tracer=None, metrics=None,
                    event_queue: str = "reference") -> Table:
    """Enforcement across *all* ten nodes simultaneously."""
    reset_packet_ids(point_seed(_ALL_NODES_POINT))
    rates = default_node_rates()
    if tracer is not None:
        tracer.mark(0.0, "fig11.all_nodes")
    run = run_hierarchy(rates, duration=duration,
                        tracer=tracer, metrics=metrics,
                        event_queue=event_queue)
    table = Table(
        title="Fig. 11 (companion): simultaneous enforcement, all nodes",
        headers=["node", "configured_gbps", "achieved_gbps", "error_pct"],
    )
    for index, target in enumerate(rates):
        achieved = run.node_rates_bps.get(f"n{index}", 0.0) / 1e9
        error = abs(achieved - target) / target * 100.0
        table.add_row(f"n{index}", target, round(achieved, 4),
                      round(error, 3))
    return table
