"""Terminal-friendly charts for the paper's figures.

The paper's evaluation figures are line plots (resource/clock vs size)
and enforcement plots (achieved vs configured rate).  This module renders
the same series as dependency-free ASCII charts so ``python -m
repro.experiments`` and the markdown report show the *shapes*, not just
the numbers.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence


def ascii_chart(series: Dict[str, Sequence[float]],
                x_labels: Sequence,
                title: str = "",
                height: int = 12,
                y_label: str = "",
                markers: str = "*o+x#@",
                y_max: Optional[float] = None) -> str:
    """Render one or more y-series over a shared categorical x axis.

    Values beyond ``y_max`` (when given) are clipped to the top row,
    which is how Fig. 8 shows PIFO shooting off the chart.
    """
    if not series:
        return title
    if height < 2:
        raise ValueError("height must be >= 2")
    names = list(series)
    columns = len(x_labels)
    for name in names:
        if len(series[name]) != columns:
            raise ValueError(
                f"series {name!r} has {len(series[name])} points for "
                f"{columns} x labels")
    finite = [value for name in names for value in series[name]
              if not math.isinf(value) and not math.isnan(value)]
    top = y_max if y_max is not None else (max(finite) if finite else 1.0)
    if top <= 0:
        top = 1.0

    grid = [[" "] * columns for _ in range(height)]
    for index, name in enumerate(names):
        marker = markers[index % len(markers)]
        for column, value in enumerate(series[name]):
            if math.isnan(value):
                continue
            clipped = min(value, top)
            row = height - 1 - int(round(
                (clipped / top) * (height - 1)))
            cell = grid[row][column]
            grid[row][column] = marker if cell == " " else "&"

    width = max(len(str(label)) for label in x_labels) + 1
    lines: List[str] = []
    if title:
        lines.append(title)
    axis_width = 10
    for row_index, row in enumerate(grid):
        if row_index == 0:
            prefix = f"{_fmt_tick(top):>{axis_width}} |"
        elif row_index == height - 1:
            prefix = f"{_fmt_tick(0.0):>{axis_width}} |"
        elif row_index == height // 2:
            prefix = f"{_fmt_tick(top / 2):>{axis_width}} |"
        else:
            prefix = " " * axis_width + " |"
        lines.append(prefix + "".join(
            cell.center(width) for cell in row))
    lines.append(" " * axis_width + " +" + "-" * (width * columns))
    lines.append(" " * axis_width + "  " + "".join(
        str(label).center(width) for label in x_labels))
    legend = "   ".join(f"{markers[i % len(markers)]} = {name}"
                        for i, name in enumerate(names))
    if y_label:
        legend = f"y: {y_label}   " + legend
    lines.append(" " * axis_width + "  " + legend)
    return "\n".join(lines)


def _fmt_tick(value: float) -> str:
    if value == 0:
        return "0"
    if value >= 1000:
        return f"{value / 1000:.3g}k"
    return f"{value:.3g}"


def fig8_chart() -> str:
    """Fig. 8 as a chart: %ALMs vs size, PIEO vs PIFO (clipped at
    100 %)."""
    from repro.experiments.fig8_alms import DEFAULT_SIZES, alms_table
    table = alms_table()
    return ascii_chart(
        {"pieo": table.column("pieo_alms_pct"),
         "pifo": table.column("pifo_alms_pct")},
        x_labels=[f"{round(size / 1000)}K" if size >= 1000 else size
                  for size in DEFAULT_SIZES],
        title="Fig. 8 (shape): % ALMs vs scheduler size (clipped at "
              "100%)",
        y_label="% ALMs",
        y_max=100.0,
    )


def fig10_chart() -> str:
    """Fig. 10 as a chart: clock rate vs size."""
    from repro.experiments.fig10_clock import DEFAULT_SIZES, clock_table
    table = clock_table()
    return ascii_chart(
        {"pieo": table.column("pieo_mhz"),
         "pifo": table.column("pifo_mhz")},
        x_labels=[f"{round(size / 1000)}K" if size >= 1000 else size
                  for size in DEFAULT_SIZES],
        title="Fig. 10 (shape): clock rate vs scheduler size",
        y_label="MHz",
    )


def fig11_chart(duration: float = 0.01) -> str:
    """Fig. 11 as a chart: achieved vs configured node rate."""
    from repro.experiments.fig11_rate_limit import (DEFAULT_SWEEP_GBPS,
                                                    rate_limit_table)
    table = rate_limit_table(duration=duration)
    return ascii_chart(
        {"configured": table.column("configured_gbps"),
         "achieved": table.column("achieved_gbps")},
        x_labels=[f"{rate}G" for rate in DEFAULT_SWEEP_GBPS],
        title="Fig. 11 (shape): achieved vs configured rate limit "
              "(markers coincide: '&')",
        y_label="Gbps",
    )
