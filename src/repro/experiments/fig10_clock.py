"""Fig. 10: clock rate achieved by the scheduler circuit vs size.

Paper anchors (Stratix V): PIEO runs at ~80 MHz at its largest evaluated
size; the PIFO baseline clocked at 57 MHz (at 1 K, its maximum size).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import Table
from repro.hw.clock import pieo_clock_mhz, pifo_clock_mhz
from repro.hw.device import STRATIX_V, Device
from repro.hw.resources import max_capacity

DEFAULT_SIZES = (1_024, 2_048, 4_096, 8_192, 16_384, 30_000, 32_768)

PAPER_ANCHORS = {
    ("pieo", 30_000): 80.0,  # "even at 80 MHz ..." (Section 6.2)
    ("pifo", 1_024): 57.0,   # "PIFO's design ... clocked at 57 MHz"
}


def clock_table(sizes: Sequence[int] = DEFAULT_SIZES,
                device: Device = STRATIX_V) -> Table:
    """Fig. 10's series: achievable clock rate at each size."""
    table = Table(
        title=f"Fig. 10: scheduler clock rate on {device.name} (MHz)",
        headers=["size", "pieo_mhz", "pifo_mhz", "pifo_synthesizable",
                 "paper_anchor_mhz"],
    )
    pifo_limit = max_capacity("pifo", device)
    for size in sizes:
        anchor = PAPER_ANCHORS.get(("pieo", size),
                                   PAPER_ANCHORS.get(("pifo", size), "-"))
        table.add_row(size, round(pieo_clock_mhz(size, device), 1),
                      round(pifo_clock_mhz(size, device), 1),
                      size <= pifo_limit, anchor)
    table.add_note("Clock rate falls with circuit complexity; PIFO rows "
                   "beyond its fit limit are extrapolations (it cannot be "
                   "synthesized there at all).")
    return table
