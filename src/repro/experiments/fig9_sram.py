"""Fig. 9: percentage of SRAM consumed vs scheduler size.

Paper anchor: "even with 2x SRAM overhead (Invariant 1), the total SRAM
consumption for PIEO's implementation is fairly modest" on the 6.5 MB
(52 Mbit) Stratix V.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.runner import Table
from repro.hw.device import STRATIX_V, Device
from repro.hw.sram import sram_overhead_factor, sram_report

DEFAULT_SIZES = (1_024, 2_048, 4_096, 8_192, 16_384, 30_000, 32_768)


def sram_table(sizes: Sequence[int] = DEFAULT_SIZES,
               device: Device = STRATIX_V) -> Table:
    """Fig. 9's series: SRAM footprint of PIEO at each size."""
    table = Table(
        title=f"Fig. 9: % SRAM consumed on {device.name} "
              f"({device.sram_bits // (1024 * 1024)} Mbit)",
        headers=["size", "sublists", "raw_mbit", "blocks", "sram_pct",
                 "overhead_x", "fits"],
    )
    for size in sizes:
        report = sram_report(size, device)
        table.add_row(size, report.num_sublists,
                      round(report.raw_bits / (1024 * 1024), 2),
                      report.blocks_required, round(report.percent, 1),
                      round(sram_overhead_factor(size), 2), report.fits)
    table.add_note("Invariant 1 bounds slot over-provisioning at 2x; "
                   "consumption stays 'fairly modest' even at 30 K+.")
    return table
