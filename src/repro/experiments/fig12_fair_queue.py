"""Fig. 12: fair-queue enforcement within a level-2 node.

"For each rate-limit value assigned to the chosen level-2 node, PIEO
scheduler very accurately enforces fair queuing across all the flows
within that level-2 node" — WF2Q+ at level 1 splits the node's Token
Bucket rate equally (or by weight) across its ten flows.

Like fig11, the sweep goes through
:func:`repro.experiments.runner.run_sweep`: points are seeded from
their index and ``jobs > 1`` shards them over processes with output
byte-identical to the sequential run (mark-delimited trace merge
included).
"""

from __future__ import annotations

import io
from typing import List, Optional, Sequence, Tuple

from repro.analysis.fairness import jains_index
from repro.experiments.fig11_rate_limit import SAMPLED_NODE
from repro.experiments.hier_common import (FLOWS_PER_NODE,
                                           default_node_rates,
                                           run_hierarchy)
from repro.experiments.runner import Table, point_seed, run_sweep
from repro.obs import Tracer
from repro.obs.runtime import NULL_HEARTBEAT
from repro.sim.packet import reset_packet_ids

DEFAULT_SWEEP_GBPS = (0.5, 1.0, 2.0, 4.0, 8.0)


def _fair_queue_point(spec: Tuple, tracer=None,
                      metrics=None) -> Tuple[List[float], str]:
    """One fig12 sweep point (module-level: picklable for ``--jobs``).

    Returns ``(per_flow_gbps_sorted_by_flow_id, trace_jsonl)``; the
    trace string is filled only when running sharded with tracing
    requested (the parent merges it).
    """
    (index, target, node_index, duration, event_queue,
     flow_weights, traced) = spec
    reset_packet_ids(point_seed(index))
    sink = None
    if tracer is None and traced:
        sink = io.StringIO()
        tracer = Tracer(capacity=0, sink=sink)
    rates = default_node_rates()
    rates[node_index] = target
    run = run_hierarchy(rates, duration=duration,
                        flow_weights=flow_weights,
                        tracer=tracer, metrics=metrics,
                        event_queue=event_queue)
    flow_rates = [rate / 1e9 for flow_id, rate
                  in sorted(run.flow_rates_bps.items())
                  if flow_id.startswith(f"n{node_index}.")]
    return flow_rates, sink.getvalue() if sink is not None else ""


def fair_queue_table(sweep_gbps: Sequence[float] = DEFAULT_SWEEP_GBPS,
                     duration: float = 0.02,
                     node_index: int = SAMPLED_NODE,
                     flow_weights: Optional[List[float]] = None,
                     tracer=None, metrics=None,
                     event_queue: str = "reference",
                     jobs: int = 1, heartbeat=None) -> Table:
    """Fig. 12's sweep: per-flow shares inside the sampled node.

    ``tracer``/``metrics`` observe every simulation in the sweep; a
    ``mark`` event delimits each sweep point in the trace stream.
    ``event_queue`` selects the simulator's pending-event backend and
    ``jobs`` shards sweep points over processes — both leave every
    result byte-identical.  (``metrics`` aggregation is in-process, so a
    metrics-observed sweep always runs sequentially.)
    """
    weighted = flow_weights is not None
    table = Table(
        title=(f"Fig. 12: fair-queue enforcement inside node "
               f"n{node_index} (WF2Q+ at level 1"
               f"{', weighted' if weighted else ''})"),
        headers=["node_rate_gbps", "expected_per_flow_gbps",
                 "min_flow_gbps", "max_flow_gbps", "jain_index"],
    )
    specs = [(index, target, node_index, duration, event_queue,
              flow_weights, tracer is not None)
             for index, target in enumerate(sweep_gbps)]
    sharded = jobs > 1 and metrics is None
    if sharded:
        outcomes = run_sweep(_fair_queue_point, specs, jobs=jobs,
                             heartbeat=heartbeat)
        if tracer is not None:
            for spec, (_, lines) in zip(specs, outcomes):
                tracer.mark(0.0, "fig12.sweep", node_rate_gbps=spec[1],
                            node=f"n{node_index}")
                tracer.absorb_jsonl(lines.splitlines())
    else:
        pulse = heartbeat if heartbeat is not None else NULL_HEARTBEAT
        pulse.begin(len(specs), jobs=1)
        outcomes = []
        for spec in specs:
            if tracer is not None:
                tracer.mark(0.0, "fig12.sweep", node_rate_gbps=spec[1],
                            node=f"n{node_index}")
            with pulse.point(spec[0]):
                outcomes.append(_fair_queue_point(spec, tracer=tracer,
                                                  metrics=metrics))
        pulse.finish()
    for spec, (flow_rates, _) in zip(specs, outcomes):
        target = spec[1]
        if weighted:
            weights = [flow_weights[i % len(flow_weights)]
                       for i in range(FLOWS_PER_NODE)]
            normalized = [rate / weight
                          for rate, weight in zip(flow_rates, weights)]
            expected = target / sum(weights)
            table.add_row(target, round(expected, 4),
                          round(min(normalized), 4),
                          round(max(normalized), 4),
                          round(jains_index(normalized), 5))
        else:
            expected = target / FLOWS_PER_NODE
            table.add_row(target, round(expected, 4),
                          round(min(flow_rates), 4),
                          round(max(flow_rates), 4),
                          round(jains_index(flow_rates), 5))
    table.add_note("Jain's index 1.0 = perfectly fair; min/max per-flow "
                   "rates should bracket the expected equal share "
                   "tightly." + (" Weighted rows normalize rate/weight."
                                 if weighted else ""))
    return table
