"""Machine-readable benchmark results: the ``BENCH_*.json`` schema.

One ``BENCH_<scenario>.json`` file at the repository root records one
scenario's measured performance trajectory point.  The schema
(version :data:`SCHEMA_VERSION`):

.. code-block:: json

    {
      "schema_version": 1,
      "scenario": "hier",
      "metrics": {
        "normalized": {"unit": "packets/sec per calibration Mops/sec",
                       "median": 123.4, "iqr": 1.2,
                       "samples": [122.9, 123.4, 124.0],
                       "gated": true},
        "raw_rate": {"unit": "packets/sec", "...": "gated: false"},
        "calibration_mops": {"unit": "Mops/sec", "...": "gated: false"},
        "wall_s": {"unit": "seconds", "...": "gated: false"}
      },
      "counts": {"packets": 4242},
      "attribution": {
        "interval_s": 0.002, "samples": 310,
        "components": {"sim.events": 0.41, "core.backends": 0.22},
        "attributed_fraction": 0.97, "overhead_s": 0.003
      },
      "provenance": {"git_commit": "abc1234", "run_date": "2026-08-08",
                     "rounds": 3, "quick": false}
    }

Only metrics with ``"gated": true`` participate in the
:mod:`repro.bench.compare` regression gate — the calibration-normalized
scores, whose host dependence cancels to first order.  Raw rates, wall
times, and calibration scores are recorded for context but never gated.
``attribution`` is ``null`` when the run was not profiled.

This module is also the one shared writer for the human-readable
``bench_results/*.txt`` tables: :func:`write_table_text` prepends the
provenance header (git commit, calibration score, schema version, run
date — the date is always passed in explicitly so writers stay
deterministic under test).
"""

from __future__ import annotations

import json
import pathlib
import statistics
import subprocess
from typing import Dict, Optional, Sequence

#: Version stamped on (and required from) every BENCH json file.
SCHEMA_VERSION = 1

#: Top-level keys every BENCH record must carry.
REQUIRED_KEYS = ("schema_version", "scenario", "metrics", "counts",
                 "attribution", "provenance")

#: Keys every metric entry must carry.
METRIC_KEYS = ("unit", "median", "iqr", "samples", "gated")


class BenchFormatError(ValueError):
    """A BENCH json file is missing, malformed, or wrong-versioned."""


def bench_filename(scenario: str) -> str:
    return f"BENCH_{scenario}.json"


def bench_path(directory, scenario: str) -> pathlib.Path:
    return pathlib.Path(directory) / bench_filename(scenario)


def git_commit(cwd=None) -> str:
    """Short commit hash of the working tree, or ``"unknown"``."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=cwd, capture_output=True, text=True, timeout=10)
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if output.returncode != 0:
        return "unknown"
    return output.stdout.strip() or "unknown"


def make_metric(unit: str, samples: Sequence[float],
                gated: bool = False) -> Dict[str, object]:
    """One metric entry: median/IQR plus the raw samples."""
    values = [float(value) for value in samples]
    if not values:
        raise ValueError("a metric needs at least one sample")
    if len(values) >= 2:
        quartiles = statistics.quantiles(values, n=4,
                                         method="inclusive")
        iqr = quartiles[2] - quartiles[0]
    else:
        iqr = 0.0
    return {"unit": unit, "median": statistics.median(values),
            "iqr": iqr, "samples": values, "gated": bool(gated)}


def make_provenance(run_date: str, commit: Optional[str] = None,
                    rounds: int = 1, quick: bool = False,
                    **extra) -> Dict[str, object]:
    """Provenance block; ``run_date`` is always passed in explicitly."""
    record: Dict[str, object] = {
        "git_commit": commit if commit is not None else git_commit(),
        "run_date": run_date,
        "rounds": rounds,
        "quick": bool(quick),
    }
    record.update(extra)
    return record


def make_result(scenario: str, metrics: Dict[str, Dict[str, object]],
                counts: Dict[str, int],
                attribution: Optional[Dict[str, object]],
                provenance: Dict[str, object]) -> Dict[str, object]:
    record = {
        "schema_version": SCHEMA_VERSION,
        "scenario": scenario,
        "metrics": metrics,
        "counts": counts,
        "attribution": attribution,
        "provenance": provenance,
    }
    return validate_result(record)


def validate_result(record, source: str = "BENCH record"):
    """Validate a BENCH record against the schema; returns it.

    Raises :class:`BenchFormatError` naming the offending key, so a
    corrupted trajectory file fails loudly instead of silently gating
    against garbage.
    """
    if not isinstance(record, dict):
        raise BenchFormatError(f"{source}: not a JSON object")
    for key in REQUIRED_KEYS:
        if key not in record:
            raise BenchFormatError(f"{source}: missing key {key!r}")
    if record["schema_version"] != SCHEMA_VERSION:
        raise BenchFormatError(
            f"{source}: unsupported schema_version "
            f"{record['schema_version']!r} (expected {SCHEMA_VERSION})")
    if not isinstance(record["scenario"], str) or not record["scenario"]:
        raise BenchFormatError(f"{source}: scenario must be a "
                               "non-empty string")
    metrics = record["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        raise BenchFormatError(f"{source}: metrics must be a non-empty "
                               "object")
    for name, metric in metrics.items():
        if not isinstance(metric, dict):
            raise BenchFormatError(
                f"{source}: metric {name!r} is not an object")
        for key in METRIC_KEYS:
            if key not in metric:
                raise BenchFormatError(
                    f"{source}: metric {name!r} missing key {key!r}")
        if not isinstance(metric["samples"], list) \
                or not metric["samples"]:
            raise BenchFormatError(
                f"{source}: metric {name!r} samples must be a "
                "non-empty list")
        for key in ("median", "iqr"):
            if not isinstance(metric[key], (int, float)) \
                    or isinstance(metric[key], bool):
                raise BenchFormatError(
                    f"{source}: metric {name!r} {key} must be a number")
    if not isinstance(record["counts"], dict):
        raise BenchFormatError(f"{source}: counts must be an object")
    attribution = record["attribution"]
    if attribution is not None:
        if not isinstance(attribution, dict):
            raise BenchFormatError(
                f"{source}: attribution must be an object or null")
        components = attribution.get("components")
        if not isinstance(components, dict):
            raise BenchFormatError(
                f"{source}: attribution.components must be an object")
    if not isinstance(record["provenance"], dict):
        raise BenchFormatError(f"{source}: provenance must be an object")
    return record


def gated_metrics(record) -> Dict[str, Dict[str, object]]:
    return {name: metric
            for name, metric in record["metrics"].items()
            if metric.get("gated")}


def write_bench(path, record) -> pathlib.Path:
    path = pathlib.Path(path)
    validate_result(record, source=str(path))
    path.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return path


def load_bench(path):
    """Read and validate one BENCH json file.

    Raises :class:`BenchFormatError` on a missing file, invalid JSON, or
    a record that fails schema validation.
    """
    path = pathlib.Path(path)
    try:
        text = path.read_text()
    except FileNotFoundError:
        raise BenchFormatError(f"{path}: no such BENCH file") from None
    try:
        record = json.loads(text)
    except json.JSONDecodeError as error:
        raise BenchFormatError(
            f"{path}: invalid JSON ({error.msg} at line "
            f"{error.lineno})") from error
    return validate_result(record, source=str(path))


# ----------------------------------------------------------------------
# Shared writer for the human-readable bench_results/*.txt tables
# ----------------------------------------------------------------------
def provenance_header(run_date: str, commit: Optional[str] = None,
                      calibration_mops: Optional[float] = None) -> str:
    """Comment header stamped on every generated table artifact."""
    lines = [
        f"# repro bench artifact (schema v{SCHEMA_VERSION})",
        f"# git-commit: {commit if commit is not None else git_commit()}",
        f"# run-date: {run_date}",
        "# calibration-mops: "
        + (f"{calibration_mops:.3f}" if calibration_mops is not None
           else "n/a"),
    ]
    return "\n".join(lines) + "\n"


def write_table_text(path, text: str, run_date: str,
                     commit: Optional[str] = None,
                     calibration_mops: Optional[float] = None
                     ) -> pathlib.Path:
    """Write one table artifact with its provenance header.

    The single shared writer for ``bench_results/*.txt``: header lines
    are ``#``-prefixed so anything that consumes the tables can skip
    them, and ``run_date`` is explicit so writers stay deterministic.
    """
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    header = provenance_header(run_date, commit=commit,
                               calibration_mops=calibration_mops)
    path.write_text(header + "\n" + text.rstrip("\n") + "\n")
    return path


def strip_provenance(text: str) -> str:
    """Drop the provenance header from a table artifact's text."""
    lines = [line for line in text.splitlines()
             if not line.startswith("#")]
    while lines and not lines[0].strip():
        lines.pop(0)
    return "\n".join(lines) + ("\n" if lines else "")


def read_table_text(path) -> str:
    """Read a table artifact back without its provenance header."""
    return strip_provenance(pathlib.Path(path).read_text())
