"""Regression gate over the ``BENCH_*.json`` trajectory.

Compares a *current* set of BENCH records against committed
*baselines*: every metric marked ``"gated": true`` in the baseline must
stay within ``tolerance`` of its baseline median.  The comparison is a
gate, not a report — exit codes (surfaced by ``python -m repro.bench
compare``):

* ``0`` — every gated metric within tolerance;
* ``1`` — at least one gated metric regressed (or went missing from
  the current run);
* ``2`` — a baseline is missing or a file is malformed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.bench.results import (BenchFormatError, bench_path,
                                 gated_metrics, load_bench)

#: Fail when a gated median drops more than this fraction below its
#: baseline (matches the perf_smoke gate).
DEFAULT_TOLERANCE = 0.30

EXIT_OK = 0
EXIT_REGRESSION = 1
EXIT_ERROR = 2


@dataclass
class MetricComparison:
    """One gated metric's baseline-vs-current verdict."""

    scenario: str
    metric: str
    baseline: float
    current: Optional[float]
    tolerance: float

    @property
    def ratio(self) -> Optional[float]:
        if self.current is None or self.baseline == 0:
            return None
        return self.current / self.baseline

    @property
    def regressed(self) -> bool:
        if self.current is None:
            return True
        floor = self.baseline * (1.0 - self.tolerance)
        return self.current < floor

    def describe(self) -> str:
        if self.current is None:
            return (f"{self.scenario}.{self.metric}: MISSING from "
                    f"current run (baseline {self.baseline:.3f})")
        verdict = "REGRESSED" if self.regressed else "ok"
        delta = ((self.current - self.baseline) / self.baseline * 100
                 if self.baseline else float("nan"))
        return (f"{self.scenario}.{self.metric}: {verdict} "
                f"(baseline {self.baseline:.3f}, "
                f"current {self.current:.3f}, {delta:+.1f}%, "
                f"tolerance -{self.tolerance:.0%})")


def compare_records(baseline: Dict, current: Dict,
                    tolerance: float = DEFAULT_TOLERANCE
                    ) -> List[MetricComparison]:
    """Compare every baseline-gated metric; returns one row each."""
    if baseline["scenario"] != current["scenario"]:
        raise BenchFormatError(
            f"scenario mismatch: baseline {baseline['scenario']!r} vs "
            f"current {current['scenario']!r}")
    comparisons = []
    for name, metric in gated_metrics(baseline).items():
        current_metric = current["metrics"].get(name)
        comparisons.append(MetricComparison(
            scenario=baseline["scenario"], metric=name,
            baseline=float(metric["median"]),
            current=(float(current_metric["median"])
                     if current_metric is not None else None),
            tolerance=tolerance))
    return comparisons


def compare_dirs(baseline_dir, current_dir, scenarios,
                 tolerance: float = DEFAULT_TOLERANCE
                 ) -> Tuple[List[MetricComparison], List[str], int]:
    """Gate ``scenarios`` between two directories of BENCH files.

    Returns ``(comparisons, errors, exit_code)`` with the exit-code
    contract from the module docstring.
    """
    comparisons: List[MetricComparison] = []
    errors: List[str] = []
    for scenario in scenarios:
        try:
            baseline = load_bench(bench_path(baseline_dir, scenario))
            current = load_bench(bench_path(current_dir, scenario))
            comparisons.extend(
                compare_records(baseline, current, tolerance))
        except BenchFormatError as error:
            errors.append(str(error))
    if errors:
        return comparisons, errors, EXIT_ERROR
    if any(row.regressed for row in comparisons):
        return comparisons, errors, EXIT_REGRESSION
    return comparisons, errors, EXIT_OK
