"""CLI: measure, gate, and report the BENCH_*.json perf trajectory.

Usage::

    python -m repro.bench run [--quick] [--scenario NAME ...]
                              [--out-dir DIR] [--rounds N]
                              [--no-profile] [--run-date DATE]
    python -m repro.bench compare --current-dir DIR
                              [--baseline-dir DIR] [--tolerance X]
                              [--scenario NAME ...] [--quick]
    python -m repro.bench report [--dir DIR] [--scenario NAME ...]
    python -m repro.bench list

``run`` measures each scenario with the interleaved calibration-loop
protocol (see :mod:`repro.bench.harness`) and writes one schema-versioned
``BENCH_<scenario>.json`` per scenario into ``--out-dir`` (default: the
current directory — the repo root holds the committed trajectory).
``compare`` gates a current run against committed baselines and exits
non-zero on regression (1) or missing/malformed files (2).  ``report``
pretty-prints BENCH files including the component wall-time
attribution.
"""

from __future__ import annotations

import argparse
import datetime
import pathlib
import sys

from repro.bench.compare import (DEFAULT_TOLERANCE, EXIT_ERROR,
                                 compare_dirs)
from repro.bench.harness import available_scenarios, measure_scenario
from repro.bench.results import (BenchFormatError, bench_path,
                                 load_bench, write_bench)
from repro.errors import ConfigurationError


def _selected_scenarios(args) -> list:
    if args.scenario:
        return list(args.scenario)
    return available_scenarios(quick=getattr(args, "quick", False))


def _cmd_run(args) -> int:
    run_date = args.run_date or datetime.date.today().isoformat()
    out_dir = pathlib.Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for name in _selected_scenarios(args):
        record = measure_scenario(
            name, quick=args.quick, rounds=args.rounds,
            profile=not args.no_profile, run_date=run_date)
        path = write_bench(bench_path(out_dir, name), record)
        normalized = record["metrics"]["normalized"]
        attribution = record["attribution"]
        attributed = (f"{attribution['attributed_fraction'] * 100:.1f}%"
                      if attribution is not None else "n/a")
        print(f"{name}: normalized {normalized['median']:.3f} "
              f"(iqr {normalized['iqr']:.3f}, "
              f"{normalized['unit']}), attribution {attributed} "
              f"-> {path}")
    return 0


def _cmd_compare(args) -> int:
    scenarios = _selected_scenarios(args)
    comparisons, errors, exit_code = compare_dirs(
        args.baseline_dir, args.current_dir, scenarios,
        tolerance=args.tolerance)
    for error in errors:
        print(error, file=sys.stderr)
    for row in comparisons:
        print(row.describe())
    if exit_code == 0:
        print("OK")
    elif exit_code == 1:
        print("FAIL: gated benchmark metric regressed beyond "
              f"{args.tolerance:.0%} tolerance", file=sys.stderr)
    return exit_code


def _cmd_report(args) -> int:
    directory = pathlib.Path(args.dir)
    scenarios = args.scenario or sorted(
        path.name[len("BENCH_"):-len(".json")]
        for path in directory.glob("BENCH_*.json"))
    if not scenarios:
        print(f"no BENCH_*.json files in {directory}", file=sys.stderr)
        return EXIT_ERROR
    status = 0
    for name in scenarios:
        try:
            record = load_bench(bench_path(directory, name))
        except BenchFormatError as error:
            print(error, file=sys.stderr)
            status = EXIT_ERROR
            continue
        provenance = record["provenance"]
        print(f"== {record['scenario']} "
              f"(commit {provenance.get('git_commit', '?')}, "
              f"{provenance.get('run_date', '?')}, "
              f"rounds={provenance.get('rounds', '?')}"
              f"{', quick' if provenance.get('quick') else ''})")
        for metric_name, metric in sorted(record["metrics"].items()):
            gate = " [gated]" if metric.get("gated") else ""
            print(f"  {metric_name:<18s} median {metric['median']:.3f} "
                  f"iqr {metric['iqr']:.3f} ({metric['unit']}){gate}")
        if record["counts"]:
            print("  counts: " + ", ".join(
                f"{key}={value}"
                for key, value in sorted(record["counts"].items())))
        attribution = record["attribution"]
        if attribution is not None:
            print(f"  attribution ({attribution['samples']} samples @ "
                  f"{attribution['interval_s'] * 1e3:.1f} ms, "
                  f"{attribution['attributed_fraction'] * 100:.1f}% "
                  "attributed, overhead "
                  f"{attribution['overhead_s']:.4f} s):")
            for component, fraction in sorted(
                    attribution["components"].items(),
                    key=lambda item: -item[1]):
                print(f"    {component:<22s} {fraction * 100:6.1f}%")
        print()
    return status


def _cmd_list(args) -> int:
    from repro.bench.harness import SCENARIOS
    for name, scenario in SCENARIOS.items():
        quick = "quick" if scenario.quick else "full-only"
        print(f"{name:10s} [{quick}] {scenario.description} "
              f"({scenario.unit})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Measure, gate, and report the BENCH_*.json "
                    "performance trajectory.")
    sub = parser.add_subparsers(dest="command", required=True)

    def add_scenarios(command):
        command.add_argument("--scenario", action="append", default=[],
                             metavar="NAME",
                             help="scenario to include (repeatable; "
                             "default: the quick set for --quick, all "
                             "otherwise)")

    run = sub.add_parser("run", help="measure scenarios and write "
                         "BENCH_<scenario>.json files")
    add_scenarios(run)
    run.add_argument("--quick", action="store_true",
                     help="CI mode: fewer rounds, quick scenario set")
    run.add_argument("--out-dir", default=".", metavar="DIR",
                     help="directory for BENCH_*.json (default: .)")
    run.add_argument("--rounds", type=int, default=None, metavar="N",
                     help="override interleaved calibrate/run rounds")
    run.add_argument("--no-profile", action="store_true",
                     help="skip the sampling profiler (no attribution "
                     "block)")
    run.add_argument("--run-date", default=None, metavar="DATE",
                     help="provenance run date (default: today)")
    run.set_defaults(handler=_cmd_run)

    compare = sub.add_parser("compare", help="gate current BENCH files "
                             "against baselines; non-zero on "
                             "regression")
    add_scenarios(compare)
    compare.add_argument("--baseline-dir", default=".", metavar="DIR",
                         help="directory holding committed baselines "
                         "(default: .)")
    compare.add_argument("--current-dir", required=True, metavar="DIR",
                         help="directory holding the current run's "
                         "BENCH files")
    compare.add_argument("--tolerance", type=float,
                         default=DEFAULT_TOLERANCE, metavar="X",
                         help="allowed fractional drop below baseline "
                         f"(default {DEFAULT_TOLERANCE})")
    compare.add_argument("--quick", action="store_true",
                         help="gate only the quick scenario set")
    compare.set_defaults(handler=_cmd_compare)

    report = sub.add_parser("report", help="pretty-print BENCH files "
                            "with attribution")
    add_scenarios(report)
    report.add_argument("--dir", default=".", metavar="DIR",
                        help="directory holding BENCH files "
                        "(default: .)")
    report.set_defaults(handler=_cmd_report)

    lister = sub.add_parser("list", help="list registered scenarios")
    lister.set_defaults(handler=_cmd_list)
    return parser


def main(argv) -> int:
    args = build_parser().parse_args(argv[1:])
    if getattr(args, "rounds", None) is not None and args.rounds < 1:
        print(f"--rounds must be >= 1, got {args.rounds}",
              file=sys.stderr)
        return 2
    try:
        return args.handler(args)
    except ConfigurationError as error:
        print(error, file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
