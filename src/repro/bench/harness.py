"""Benchmark harness: calibration-normalized scenario measurement.

The repo's perf trajectory is tracked as *normalized* throughput: raw
packets/sec is meaningless across machines (and noisy even on one box),
so every scenario score is divided by :func:`calibration_score` — a
fixed pure-Python loop whose instruction mix (integer LCG, tuple heapq
churn, dict traffic) resembles the simulator's hot path — measured **in
the same process, interleaved with the workload**.  The normalized
ratio cancels host speed to first order; this is the same protocol
``benchmarks/perf_smoke.py`` gates CI with (it imports the calibration
loop from here).

Five scenarios are registered:

* ``hier`` — the single-link fig12 fast configuration (hierarchical
  Token Bucket + WF2Q+ over 100 flows);
* ``incast`` — a 4-port shared-buffer dataplane under 2x
  oversubscription (classifier/admission/multi-engine path);
* ``fabric`` — a leaf-spine :mod:`repro.net` fabric carrying
  open-loop Pareto flows at 0.5 load (routing/forwarding/multi-switch
  path);
* ``backend`` — mixed primitive ops through the ``fast`` ordered-list
  engine at N=4096;
* ``analyze`` — the offline analyzer (`TraceAnalysis` + flows + audit)
  over a traced hier run.

:func:`measure_scenario` runs a scenario for several interleaved
calibrate/run rounds with a :class:`~repro.obs.runtime.RuntimeProfiler`
sampling the workload, and returns a schema-valid BENCH record
(:mod:`repro.bench.results`) holding normalized medians/IQR, raw rates,
wall times, event/packet counts, component wall-time attribution, and
the host calibration score.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.bench import results
from repro.errors import ConfigurationError
from repro.obs.runtime import DEFAULT_INTERVAL_S, RuntimeProfiler

#: Iterations of the calibration loop (about 50 ms of pure Python).
CALIBRATION_ITERATIONS = 300_000
#: Default interleaved calibrate/run rounds.
DEFAULT_ROUNDS = 3
#: Rounds in ``--quick`` mode.
QUICK_ROUNDS = 2

#: Simulated durations shared with ``benchmarks/perf_smoke.py`` — kept
#: identical between quick and full modes so committed baselines and
#: quick CI runs measure the same workload.
HIER_DURATION = 0.003
INCAST_DURATION = 0.002
INCAST_BUFFER_KIB = 64

BACKEND_NAME = "fast"
BACKEND_CAPACITY = 4_096
BACKEND_OPERATIONS = 20_000
BACKEND_OPERATIONS_QUICK = 5_000

ANALYZE_DURATION = 0.002

FABRIC_DURATION = 0.002
FABRIC_LOAD = 0.5


def calibration_score(iterations: int = CALIBRATION_ITERATIONS) -> float:
    """Mops/sec of a fixed pure-Python loop shaped like the sim's hot
    path (integer LCG, tuple heap push/pop, dict get/set)."""
    heap: list = []
    table: dict = {}
    state = 12345
    start = time.perf_counter()
    for index in range(iterations):
        state = (1103515245 * state + 12345) % 2147483648
        heapq.heappush(heap, (state, index))
        if len(heap) > 64:
            _, evicted = heapq.heappop(heap)
            table[evicted & 255] = evicted
    elapsed = time.perf_counter() - start
    return iterations / elapsed / 1e6


# ----------------------------------------------------------------------
# Scenario registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Scenario:
    """One registered benchmark workload."""

    name: str
    description: str
    unit: str
    #: Included in ``--quick`` runs (the default CI trajectory set).
    quick: bool
    #: ``run(quick) -> (rate_per_sec, counts)``.
    run: Callable[[bool], Tuple[float, Dict[str, int]]]


def _run_hier(quick: bool) -> Tuple[float, Dict[str, int]]:
    from repro.experiments.hier_common import (default_node_rates,
                                               run_hierarchy)
    from repro.sim.packet import reset_packet_ids
    reset_packet_ids(0)
    start = time.perf_counter()
    run = run_hierarchy(default_node_rates(), duration=HIER_DURATION,
                        event_queue="calendar", drain=True)
    elapsed = time.perf_counter() - start
    packets = len(run.engine.recorder)
    return packets / elapsed, {"packets": packets}


def _run_incast(quick: bool) -> Tuple[float, Dict[str, int]]:
    from repro.experiments.incast import build_incast
    from repro.sim.events import Simulator
    from repro.sim.packet import reset_packet_ids
    reset_packet_ids(0)
    start = time.perf_counter()
    sim = Simulator(queue="calendar")
    dataplane = build_incast(sim,
                             buffer_bytes=INCAST_BUFFER_KIB * 1024,
                             duration=INCAST_DURATION,
                             drop_policy="longest-queue")
    sim.run_until(INCAST_DURATION)
    elapsed = time.perf_counter() - start
    conservation = dataplane.conservation()
    return conservation["arrivals"] / elapsed, {
        "packets": conservation["arrivals"],
        "delivered": conservation["departures"],
        "drops": conservation["drops"],
    }


def _run_backend(quick: bool) -> Tuple[float, Dict[str, int]]:
    from repro.experiments.scheduling_rate import software_ops_per_sec
    operations = (BACKEND_OPERATIONS_QUICK if quick
                  else BACKEND_OPERATIONS)
    rate = software_ops_per_sec(BACKEND_NAME, BACKEND_CAPACITY,
                                operations=operations)
    return rate, {"ops": operations}


def _run_analyze(quick: bool) -> Tuple[float, Dict[str, int]]:
    from repro.experiments.hier_common import (default_node_rates,
                                               run_hierarchy)
    from repro.obs import TraceAnalysis, Tracer
    from repro.sim.packet import reset_packet_ids
    reset_packet_ids(0)
    tracer = Tracer()
    run_hierarchy(default_node_rates(), duration=ANALYZE_DURATION,
                  tracer=tracer)
    records = [event.to_dict() for event in tracer.events]
    start = time.perf_counter()
    analysis = TraceAnalysis(records)
    analysis.flows()
    analysis.audit()
    elapsed = time.perf_counter() - start
    return len(records) / elapsed, {"events": len(records)}


def _run_fabric(quick: bool) -> Tuple[float, Dict[str, int]]:
    from repro.experiments.fct import build_fct_fabric
    from repro.sim.packet import reset_packet_ids
    reset_packet_ids(0)
    start = time.perf_counter()
    fabric = build_fct_fabric(FABRIC_LOAD, workload="pareto",
                              event_queue="calendar",
                              duration=FABRIC_DURATION)
    fabric.sim.run()
    elapsed = time.perf_counter() - start
    conservation = fabric.conservation()
    stats = fabric.collector.slowdown_stats()
    # Per-hop arrivals: the multi-switch analogue of packets/sec (one
    # unit of dataplane work per packet per hop).
    return conservation["arrivals"] / elapsed, {
        "hop_arrivals": conservation["arrivals"],
        "flows": stats["flows"],
        "completed": stats["completed"],
    }


SCENARIOS: Dict[str, Scenario] = {
    "hier": Scenario(
        "hier", "single-link fig12 fast config (TB + WF2Q+, 100 flows)",
        "packets/sec", quick=True, run=_run_hier),
    "incast": Scenario(
        "incast", "4-port shared-buffer incast, 2x oversubscription",
        "packets/sec", quick=True, run=_run_incast),
    "fabric": Scenario(
        "fabric", "leaf-spine fct fabric (routed hosts, pareto flows, "
        f"load {FABRIC_LOAD})", "hop-arrivals/sec", quick=True,
        run=_run_fabric),
    "backend": Scenario(
        "backend", "mixed primitive ops through the fast list engine "
        f"at N={BACKEND_CAPACITY}", "ops/sec", quick=False,
        run=_run_backend),
    "analyze": Scenario(
        "analyze", "TraceAnalysis + flows + audit over a traced hier "
        "run", "events/sec", quick=False, run=_run_analyze),
}


def available_scenarios(quick: bool = False):
    """Registered scenario names (quick-mode subset when asked)."""
    return [name for name, scenario in SCENARIOS.items()
            if scenario.quick or not quick]


def get_scenario(name: str) -> Scenario:
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown bench scenario {name!r}; available: "
            f"{', '.join(SCENARIOS)}") from None


# ----------------------------------------------------------------------
# Measurement
# ----------------------------------------------------------------------
def measure_scenario(name: str, *, quick: bool = False,
                     rounds: Optional[int] = None,
                     profile: bool = True,
                     interval_s: float = DEFAULT_INTERVAL_S,
                     run_date: str = "unknown",
                     commit: Optional[str] = None) -> Dict[str, object]:
    """Measure one scenario; returns a schema-valid BENCH record.

    Each round interleaves one :func:`calibration_score` with one
    workload run (profiled by a sampling
    :class:`~repro.obs.runtime.RuntimeProfiler` when ``profile``), so
    the normalized score per round divides rates measured under the
    same instantaneous host conditions.
    """
    scenario = get_scenario(name)
    if rounds is None:
        rounds = QUICK_ROUNDS if quick else DEFAULT_ROUNDS
    if rounds < 1:
        raise ValueError("rounds must be >= 1")
    normalized = []
    raw_rates = []
    calibrations = []
    walls = []
    counts: Dict[str, int] = {}
    combined = None
    for _ in range(rounds):
        calibration = calibration_score()
        profiler = (RuntimeProfiler(interval_s=interval_s)
                    if profile else None)
        began = time.perf_counter()
        if profiler is not None:
            with profiler, profiler.phase(name):
                rate, counts = scenario.run(quick)
        else:
            rate, counts = scenario.run(quick)
        walls.append(time.perf_counter() - began)
        calibrations.append(calibration)
        raw_rates.append(rate)
        normalized.append(rate / calibration)
        if profiler is not None:
            report = profiler.report()
            combined = (report if combined is None
                        else combined.merge(report))
    attribution = None
    if combined is not None:
        attribution = {
            "interval_s": combined.interval_s,
            "samples": combined.total_samples,
            "components": {component: round(fraction, 4)
                           for component, fraction
                           in combined.fractions().items()},
            "attributed_fraction": round(
                combined.attributed_fraction(), 4),
            "overhead_s": round(combined.overhead_s, 6),
        }
    metrics = {
        "normalized": results.make_metric(
            f"{scenario.unit} per calibration Mops/sec", normalized,
            gated=True),
        "raw_rate": results.make_metric(scenario.unit, raw_rates),
        "calibration_mops": results.make_metric("Mops/sec",
                                                calibrations),
        "wall_s": results.make_metric("seconds", walls),
    }
    provenance = results.make_provenance(run_date, commit=commit,
                                         rounds=rounds, quick=quick)
    return results.make_result(name, metrics, counts, attribution,
                               provenance)
