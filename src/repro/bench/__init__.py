"""Benchmark harness and machine-readable perf trajectory.

``repro.bench`` is the wall-clock counterpart of the sim-time
experiment tables: it measures registered scenarios with an interleaved
calibration-loop protocol (:mod:`repro.bench.harness`), records the
results as schema-versioned ``BENCH_<scenario>.json`` files at the repo
root (:mod:`repro.bench.results`), and gates the trajectory against
committed baselines (:mod:`repro.bench.compare`).  ``python -m
repro.bench run|compare|report`` is the CLI.

The submodules are imported lazily by the CLI; importing
:mod:`repro.bench` itself stays dependency-free so
``benchmarks/perf_smoke.py`` can pull the shared calibration loop
without dragging in the experiment stack.
"""

from repro.bench.results import (SCHEMA_VERSION, BenchFormatError,
                                 bench_filename, bench_path, git_commit,
                                 load_bench, make_metric,
                                 make_provenance, make_result,
                                 provenance_header, read_table_text,
                                 strip_provenance, validate_result,
                                 write_bench, write_table_text)

__all__ = [
    "SCHEMA_VERSION",
    "BenchFormatError",
    "bench_filename",
    "bench_path",
    "git_commit",
    "load_bench",
    "make_metric",
    "make_provenance",
    "make_result",
    "provenance_header",
    "read_table_text",
    "strip_provenance",
    "validate_result",
    "write_bench",
    "write_table_text",
]
