"""PIEO as an abstract dictionary data type (Section 8).

"PIEO primitive can be viewed as an abstract dictionary data type, which
maintains a collection of (key, value) pairs, indexed by key, and allows
operations such as search, insert, delete and update ... it can also very
efficiently support certain other key dictionary operations considered
traditionally challenging, such as filtering a set of keys within a
range, as PIEO implementation described in Section 5 can be naturally
extended to support predicates of the form a <= key <= b."

This module realizes that reading: keys map to ranks (so the ordered list
keeps keys sorted), and range filtering uses the dequeue-side range
predicate.  All operations are O(1)-cycle on the hardware design
(4 clock cycles each, Section 5.2); ``pop_range`` additionally
demonstrates the a <= key <= b filter.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterator, List, Optional, Tuple, Union

from repro.core.backends import DEFAULT_BACKEND, make_list
from repro.core.element import ALWAYS_ELIGIBLE, Element
from repro.core.interfaces import PieoList
from repro.errors import CapacityError


class PieoDict:
    """An ordered mapping backed by a PIEO ordered list.

    Keys must be numeric (they become ranks); values are arbitrary.
    Iteration yields keys in sorted order — for free, since the PIEO
    ordered list *is* the sort.

    Parameters
    ----------
    backend:
        Either a backend *name* resolved through
        :mod:`repro.core.backends` (``"reference"``, ``"hardware"``,
        ``"fast"``, ...) or an explicit :class:`PieoList` instance to
        store entries in.  Pass ``"hardware"`` to run the dictionary on
        the cycle-accurate hardware model.
    """

    def __init__(self,
                 backend: Union[str, PieoList, None] = None) -> None:
        if backend is None:
            backend = DEFAULT_BACKEND
        self._list = (make_list(backend) if isinstance(backend, str)
                      else backend)

    # -- dict protocol ------------------------------------------------------
    def __len__(self) -> int:
        return len(self._list)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._list

    def __iter__(self) -> Iterator[float]:
        return (element.rank for element in self._list.snapshot())

    def keys(self) -> List[float]:
        return list(self)

    def items(self) -> List[Tuple[float, Any]]:
        return [(element.rank, element.payload)
                for element in self._list.snapshot()]

    def values(self) -> List[Any]:
        return [element.payload for element in self._list.snapshot()]

    # -- operations (all O(1) hardware time) ---------------------------------
    def insert(self, key: float, value: Any = None) -> None:
        """Insert a (key, value) pair; replaces an existing key."""
        self._list.dequeue_flow(key)
        try:
            self._list.enqueue(Element(flow_id=key, rank=key,
                                       send_time=ALWAYS_ELIGIBLE,
                                       payload=value))
        except CapacityError:
            raise
    __setitem__ = insert

    def search(self, key: float, default: Any = None) -> Any:
        """Return the value for ``key`` without removing it."""
        for element in self._list.snapshot():
            if element.flow_id == key:
                return element.payload
        return default
    get = search

    def __getitem__(self, key: float) -> Any:
        sentinel = object()
        value = self.search(key, sentinel)
        if value is sentinel:
            raise KeyError(key)
        return value

    def delete(self, key: float) -> Optional[Any]:
        """Remove ``key``; returns its value (None if absent), matching
        the primitive's NULL semantics."""
        element = self._list.dequeue_flow(key)
        return element.payload if element is not None else None

    def __delitem__(self, key: float) -> None:
        if self._list.dequeue_flow(key) is None:
            raise KeyError(key)

    def update(self, key: float, value: Any) -> bool:
        """Update an existing key in place (dequeue(f) + enqueue, the
        Section 4.4 asynchronous-update idiom).  Returns False if the key
        is absent."""
        element = self._list.dequeue_flow(key)
        if element is None:
            return False
        element.payload = value
        self._list.enqueue(element)
        return True

    # -- ordered / range operations -----------------------------------------
    def min_key(self) -> Optional[float]:
        element = self._list.peek(now=0)
        return element.rank if element is not None else None

    def pop_min(self) -> Optional[Tuple[float, Any]]:
        element = self._list.dequeue(now=0)
        if element is None:
            return None
        return element.rank, element.payload

    def range_keys(self, low: float, high: float) -> List[float]:
        """All keys with low <= key <= high, in sorted order."""
        return [element.rank for element in self._list.snapshot()
                if low <= element.rank <= high]

    def pop_range(self, low: float, high: float,
                  limit: Optional[int] = None) -> List[Tuple[float, Any]]:
        """Extract up to ``limit`` smallest keys in [low, high] — the
        Section 8 range-filter predicate, one extraction per primitive
        operation."""
        extracted: List[Tuple[float, Any]] = []
        while limit is None or len(extracted) < limit:
            candidates = self.range_keys(low, high)
            if not candidates:
                break
            element = self._list.dequeue_flow(candidates[0])
            extracted.append((element.rank, element.payload))
        return extracted
