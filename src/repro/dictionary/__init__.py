"""PIEO as an abstract dictionary data type (Section 8)."""

from repro.dictionary.pieo_dict import PieoDict

__all__ = ["PieoDict"]
