"""PIEO: Fast, Scalable, and Programmable Packet Scheduler in Hardware.

A complete Python reproduction of Shrivastav, SIGCOMM 2019: the PIEO
(Push-In-Extract-Out) scheduling primitive, a cycle-accurate model of its
O(sqrt(N)) hardware design, a fast software engine for big simulations,
the PIFO and FIFO baselines, the programming framework with every
scheduling algorithm from the paper, a discrete-event network substrate,
and the full evaluation harness.

Quickstart
----------
>>> from repro import Element, make_list
>>> pieo = make_list("fast")
>>> pieo.enqueue(Element(flow_id="a", rank=10, send_time=5))
>>> pieo.enqueue(Element(flow_id="b", rank=3, send_time=50))
>>> pieo.dequeue(now=7).flow_id   # "b" has smaller rank but is ineligible
'a'

The same call with ``"reference"`` or ``"hardware"`` swaps in the
semantic oracle or the cycle-accurate hardware model — see
:mod:`repro.core.backends`.
"""

from repro.core import (ALWAYS_ELIGIBLE, NEVER_ELIGIBLE, DEFAULT_BACKEND,
                        BackendSpec, Element, FastPieo, Instrumentation,
                        NullInstrumentation, NULL_INSTRUMENTATION, OpCounters,
                        OrderedList, PieoHardwareList, PieoList,
                        PifoDesignPieoList, PifoHardwareList, ReferencePieo,
                        available_backends, get_backend, make_factory,
                        make_list, register_backend, unregister_backend)
from repro.errors import (CapacityError, ConfigurationError,
                          DuplicateFlowError, InvariantViolation, ReproError,
                          SimulationError, UnknownFlowError)

__version__ = "1.0.0"

__all__ = [
    "ALWAYS_ELIGIBLE",
    "NEVER_ELIGIBLE",
    "Element",
    "OpCounters",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "OrderedList",
    "PieoHardwareList",
    "PieoList",
    "PifoDesignPieoList",
    "PifoHardwareList",
    "ReferencePieo",
    "FastPieo",
    "BackendSpec",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "make_factory",
    "make_list",
    "register_backend",
    "unregister_backend",
    "CapacityError",
    "ConfigurationError",
    "DuplicateFlowError",
    "InvariantViolation",
    "ReproError",
    "SimulationError",
    "UnknownFlowError",
    "__version__",
]
