"""PIEO: Fast, Scalable, and Programmable Packet Scheduler in Hardware.

A complete Python reproduction of Shrivastav, SIGCOMM 2019: the PIEO
(Push-In-Extract-Out) scheduling primitive, a cycle-accurate model of its
O(sqrt(N)) hardware design, the PIFO and FIFO baselines, the programming
framework with every scheduling algorithm from the paper, a discrete-event
network substrate, and the full evaluation harness.

Quickstart
----------
>>> from repro import Element, ReferencePieo
>>> pieo = ReferencePieo()
>>> pieo.enqueue(Element(flow_id="a", rank=10, send_time=5))
>>> pieo.enqueue(Element(flow_id="b", rank=3, send_time=50))
>>> pieo.dequeue(now=7).flow_id   # "b" has smaller rank but is ineligible
'a'
"""

from repro.core import (ALWAYS_ELIGIBLE, NEVER_ELIGIBLE, Element, OpCounters,
                        OrderedList, PieoHardwareList, PieoList,
                        PifoDesignPieoList, PifoHardwareList, ReferencePieo)
from repro.errors import (CapacityError, ConfigurationError,
                          DuplicateFlowError, InvariantViolation, ReproError,
                          SimulationError, UnknownFlowError)

__version__ = "1.0.0"

__all__ = [
    "ALWAYS_ELIGIBLE",
    "NEVER_ELIGIBLE",
    "Element",
    "OpCounters",
    "OrderedList",
    "PieoHardwareList",
    "PieoList",
    "PifoDesignPieoList",
    "PifoHardwareList",
    "ReferencePieo",
    "CapacityError",
    "ConfigurationError",
    "DuplicateFlowError",
    "InvariantViolation",
    "ReproError",
    "SimulationError",
    "UnknownFlowError",
    "__version__",
]
