"""Per-packet latency and jitter analysis.

The paper's motivation (Section 1) is precision: protocols that "require
packets to be transmitted at precise times on the wire, in some cases at
nanosecond-level precision".  These helpers quantify scheduling delay
(arrival to wire) and pacing jitter from simulation output.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Sequence

from repro.sim.packet import Packet


@dataclass(frozen=True)
class LatencyStats:
    """Summary statistics of a delay population (seconds)."""

    count: int
    mean: float
    minimum: float
    maximum: float
    p50: float
    p99: float
    stddev: float


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted sequence."""
    if not sorted_values:
        return math.nan
    if not 0.0 <= fraction <= 1.0:
        raise ValueError("fraction must be in [0, 1]")
    rank = max(0, min(len(sorted_values) - 1,
                      math.ceil(fraction * len(sorted_values)) - 1))
    return sorted_values[rank]


def summarize(values: Iterable[float]) -> LatencyStats:
    """Summarize a population of delays."""
    population = sorted(values)
    if not population:
        return LatencyStats(0, math.nan, math.nan, math.nan, math.nan,
                            math.nan, math.nan)
    count = len(population)
    mean = sum(population) / count
    variance = sum((value - mean) ** 2 for value in population) / count
    return LatencyStats(
        count=count,
        mean=mean,
        minimum=population[0],
        maximum=population[-1],
        p50=percentile(population, 0.50),
        p99=percentile(population, 0.99),
        stddev=math.sqrt(variance),
    )


def packet_delays(packets: Iterable[Packet],
                  flow_id: Optional[Hashable] = None) -> List[float]:
    """Arrival-to-departure delays of transmitted packets."""
    delays = []
    for packet in packets:
        if packet.departure_time is None:
            continue
        if flow_id is not None and packet.flow_id != flow_id:
            continue
        delays.append(packet.departure_time - packet.arrival_time)
    return delays


def delay_stats_by_flow(packets: Iterable[Packet],
                        ) -> Dict[Hashable, LatencyStats]:
    by_flow: Dict[Hashable, List[float]] = {}
    for packet in packets:
        if packet.departure_time is None:
            continue
        by_flow.setdefault(packet.flow_id, []).append(
            packet.departure_time - packet.arrival_time)
    return {flow_id: summarize(delays)
            for flow_id, delays in by_flow.items()}


def pacing_jitter(gaps: Sequence[float],
                  target_gap: float) -> LatencyStats:
    """Deviation of inter-departure gaps from a pacing target.

    The precision metric for shaped traffic: perfect pacing gives an
    all-zero population.
    """
    if target_gap <= 0:
        raise ValueError("target gap must be positive")
    return summarize(abs(gap - target_gap) for gap in gaps)
