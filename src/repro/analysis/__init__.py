"""Measurement and analysis helpers for the evaluation harness."""

from repro.analysis.deviation import (inversions, kendall_tau_distance,
                                      max_deviation, mean_deviation,
                                      positionwise_deviation)
from repro.analysis.fairness import (jains_index, max_relative_error,
                                     normalized_shares,
                                     weighted_jains_index)
from repro.analysis.latency import (LatencyStats, delay_stats_by_flow,
                                    packet_delays, pacing_jitter,
                                    percentile, summarize)

__all__ = [
    "inversions",
    "kendall_tau_distance",
    "max_deviation",
    "mean_deviation",
    "positionwise_deviation",
    "jains_index",
    "max_relative_error",
    "normalized_shares",
    "weighted_jains_index",
    "LatencyStats",
    "delay_stats_by_flow",
    "packet_delays",
    "pacing_jitter",
    "percentile",
    "summarize",
]
