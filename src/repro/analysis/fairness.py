"""Fairness metrics for the fair-queuing experiments (Fig. 12)."""

from __future__ import annotations

from typing import Dict, Hashable, Sequence


def jains_index(allocations: Sequence[float]) -> float:
    """Jain's fairness index: 1.0 = perfectly fair, 1/n = maximally
    unfair.  Defined as (sum x)^2 / (n * sum x^2)."""
    values = [value for value in allocations]
    if not values:
        return 1.0
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return (total * total) / (len(values) * squares)


def weighted_jains_index(allocations: Dict[Hashable, float],
                         weights: Dict[Hashable, float]) -> float:
    """Jain's index over weight-normalized allocations x_i / w_i."""
    normalized = [allocations[key] / weights[key]
                  for key in allocations if weights.get(key, 0) > 0]
    return jains_index(normalized)


def max_relative_error(achieved: Dict[Hashable, float],
                       target: Dict[Hashable, float]) -> float:
    """Worst-case |achieved - target| / target across keys; the rate-limit
    accuracy metric for Fig. 11."""
    worst = 0.0
    for key, expected in target.items():
        if expected <= 0:
            continue
        error = abs(achieved.get(key, 0.0) - expected) / expected
        if error > worst:
            worst = error
    return worst


def normalized_shares(achieved: Dict[Hashable, float]) -> Dict[Hashable,
                                                               float]:
    """Each key's fraction of the total allocation."""
    total = sum(achieved.values())
    if total <= 0:
        return {key: 0.0 for key in achieved}
    return {key: value / total for key, value in achieved.items()}
