"""Scheduling-order deviation metrics (the Fig. 2 / Section 2.3 claim
that PIFO emulations deviate by up to O(N) positions from ideal)."""

from __future__ import annotations

from typing import Dict, List, Sequence


def positionwise_deviation(ideal: Sequence, actual: Sequence,
                           ) -> List[int]:
    """Per-element |ideal position - actual position|.

    Both sequences must contain the same elements exactly once.
    """
    if sorted(map(str, ideal)) != sorted(map(str, actual)):
        raise ValueError("sequences must be permutations of each other")
    actual_position: Dict[str, int] = {
        str(name): index for index, name in enumerate(actual)}
    return [abs(index - actual_position[str(name)])
            for index, name in enumerate(ideal)]


def max_deviation(ideal: Sequence, actual: Sequence) -> int:
    deviations = positionwise_deviation(ideal, actual)
    return max(deviations) if deviations else 0


def mean_deviation(ideal: Sequence, actual: Sequence) -> float:
    deviations = positionwise_deviation(ideal, actual)
    if not deviations:
        return 0.0
    return sum(deviations) / len(deviations)


def inversions(ideal: Sequence, actual: Sequence) -> int:
    """Number of pairs served in the opposite order from ideal."""
    position = {str(name): index for index, name in enumerate(actual)}
    count = 0
    names = [str(name) for name in ideal]
    for i in range(len(names)):
        for j in range(i + 1, len(names)):
            if position[names[i]] > position[names[j]]:
                count += 1
    return count


def kendall_tau_distance(ideal: Sequence, actual: Sequence) -> float:
    """Normalized inversion count in [0, 1]."""
    n = len(ideal)
    if n < 2:
        return 0.0
    return inversions(ideal, actual) / (n * (n - 1) / 2)
