"""Exception hierarchy for the PIEO reproduction library.

All library-specific errors derive from :class:`ReproError` so callers can
catch any library failure with a single ``except`` clause while still being
able to discriminate the precise failure mode.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class CapacityError(ReproError):
    """An ordered list or queue was asked to hold more elements than its
    fixed hardware capacity allows."""


class DuplicateFlowError(ReproError):
    """An element with a flow id already present in the ordered list was
    enqueued.

    The PIEO scheduler keeps at most one entry per flow in the ordered list
    (the entry represents the packet at the head of that flow's FIFO queue),
    and the hardware design tracks a single sublist id per flow to implement
    ``dequeue(f)``.  Duplicate entries would make that mapping ambiguous.
    """


class UnknownFlowError(ReproError):
    """An operation referenced a flow id that is not registered."""


class InvariantViolation(ReproError):
    """An internal hardware-model invariant was violated.

    Raised by the self-checking machinery of the cycle-accurate models
    (e.g. Invariant 1 of the paper: no two consecutive partially-full
    sublists).  Seeing this exception indicates a bug in the model, never
    a user error.
    """


class ConfigurationError(ReproError):
    """A component was constructed or programmed with invalid parameters."""


class SimulationError(ReproError):
    """The discrete-event simulation reached an inconsistent state."""
