"""Instrumentation protocol: the semantics/accounting split.

The ordered-list implementations in this package serve two distinct
masters:

* the **cycle-accurate hardware models** exist to make claims about the
  paper's hardware design, so every primitive operation must charge
  cycles, SRAM ports, comparators, and encoders to an
  :class:`repro.core.opstats.OpCounters`;
* the **software engines** (the reference oracle and the fast backend)
  exist to *run simulations*, where per-operation accounting is pure
  overhead.

:class:`Instrumentation` is the seam between the two: it names the
charging interface that :class:`~repro.core.opstats.OpCounters` already
implements, and :class:`NullInstrumentation` provides a do-nothing stand-in
so a hardware model can be run with accounting disabled (and so software
backends never need to grow accounting at all).  Models keep exposing the
active instrumentation as their ``counters`` attribute, preserving the
existing ``structure.counters.cycles`` idiom wherever an
:class:`OpCounters` is in place.
"""

from __future__ import annotations

from typing import Dict, Protocol, runtime_checkable


@runtime_checkable
class Instrumentation(Protocol):
    """What a hardware model needs in order to charge its work.

    :class:`repro.core.opstats.OpCounters` is the canonical recording
    implementation; :class:`NullInstrumentation` discards everything.
    """

    def charge_op(self, name: str, cycles: int) -> None:
        """Record one completed primitive operation of ``cycles`` cycles."""

    def charge_compare(self, width: int) -> None:
        """Record one parallel compare over ``width`` lanes."""

    def charge_encode(self) -> None:
        """Record one priority-encoder activation."""

    def charge_sram_read(self, sublists: int = 1) -> None:
        """Record SRAM sublist reads."""

    def charge_sram_write(self, sublists: int = 1) -> None:
        """Record SRAM sublist writes."""


class NullInstrumentation:
    """Accounting sink that records nothing.

    Pass to a cycle-accurate model (or install via the backend registry's
    ``instrument=False`` config) when only the model's *semantics* are
    wanted and the charging overhead is not.
    """

    def charge_op(self, name: str, cycles: int) -> None:
        pass

    def charge_compare(self, width: int) -> None:
        pass

    def charge_encode(self) -> None:
        pass

    def charge_sram_read(self, sublists: int = 1) -> None:
        pass

    def charge_sram_write(self, sublists: int = 1) -> None:
        pass

    def reset(self) -> None:
        pass

    def snapshot(self) -> Dict[str, float]:
        """Match :meth:`OpCounters.snapshot`; always empty."""
        return {}


#: Shared stateless no-op instance (NullInstrumentation holds no state, so
#: one instance can serve every structure).
NULL_INSTRUMENTATION = NullInstrumentation()
