"""Backend registry: every ordered-list engine, selectable by name.

The PIEO paper's layering argument is that *what the list means* is
independent of *what it costs*; this module is that split made concrete
for the whole repository.  Schedulers, experiments, the dictionary, and
the benchmark harness all obtain their ordered lists here, so swapping
the engine under an entire simulation is a one-word config change::

    from repro.core.backends import make_list
    pieo = make_list("fast", capacity=4096)

Built-in backends
-----------------
``"reference"``
    :class:`~repro.core.reference.ReferencePieo` — the semantic oracle.
    Simple, exact, slow.
``"hardware"``
    :class:`~repro.core.pieo.PieoHardwareList` — the cycle-accurate
    O(sqrt N) model of the Section 5 design, charging cycles/SRAM/
    comparators per operation.  Config: ``sublist_size``, ``self_check``,
    ``instrument`` (``False`` swaps in a no-op
    :class:`~repro.core.instrumentation.NullInstrumentation`).
``"fast"``
    :class:`~repro.core.fastlist.FastPieo` — exact semantics on an
    index-accelerated chunked structure with no accounting; the engine
    for big simulations.  Config: ``chunk_size``.
``"pifo-design"``
    :class:`~repro.core.pifo.PifoDesignPieoList` — footnote 7: PIEO
    semantics on PIFO's O(N) flip-flop design.
``"pheap"``
    :class:`~repro.baselines.pheap.PHeap` — the Section 7 pipelined-heap
    baseline (exact PIEO semantics, heap-shaped costs).
``"traced"``
    :class:`~repro.obs.traced_list.TracedList` — the observability
    decorator over any other backend.  Config: ``inner`` (wrapped
    backend name, default the registry default), ``tracer``,
    ``metrics``, ``clock``, plus any inner-backend config passed
    through.  With the default null observers it is a transparent
    delegate, so it participates in the conformance/differential
    matrices like every other backend.

User extensions register with :func:`register_backend`; the conformance
and differential test matrices pick up every registered backend
automatically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Optional, Tuple

from repro.core.interfaces import PieoList
from repro.errors import ConfigurationError

#: Factory signature: ``factory(capacity, **config) -> PieoList``.
#: ``capacity`` may be ``None`` for backends that support an unbounded
#: list; bounded-only backends receive :data:`DEFAULT_CAPACITY` instead.
BackendFactory = Callable[..., PieoList]

#: Capacity handed to bounded-only backends when the caller asked for an
#: unbounded list (e.g. the schedulers' default ordered lists).
DEFAULT_CAPACITY = 4096

#: The backend the framework layers fall back to when none is named.
DEFAULT_BACKEND = "reference"


@dataclass(frozen=True)
class BackendSpec:
    """One registry entry."""

    name: str
    factory: BackendFactory
    description: str = ""
    #: False when the implementation needs a finite capacity; such
    #: backends get :data:`DEFAULT_CAPACITY` when asked for ``None``.
    unbounded_ok: bool = True


_REGISTRY: Dict[str, BackendSpec] = {}


def register_backend(name: str, factory: BackendFactory, *,
                     description: str = "", unbounded_ok: bool = True,
                     overwrite: bool = False) -> None:
    """Register (or, with ``overwrite=True``, replace) a backend.

    ``factory`` is called as ``factory(capacity, **config)`` and must
    return a :class:`~repro.core.interfaces.PieoList`.
    """
    if not name or not isinstance(name, str):
        raise ConfigurationError("backend name must be a non-empty string")
    if name in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"backend {name!r} already registered "
            "(pass overwrite=True to replace it)")
    _REGISTRY[name] = BackendSpec(name=name, factory=factory,
                                  description=description,
                                  unbounded_ok=unbounded_ok)


def unregister_backend(name: str) -> None:
    """Remove a backend (chiefly for tests cleaning up extensions)."""
    _REGISTRY.pop(name, None)


def available_backends() -> Tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)


def get_backend(name: str) -> BackendSpec:
    """Look up a backend spec; raises ``ConfigurationError`` on unknowns."""
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise ConfigurationError(
            f"unknown ordered-list backend {name!r}; "
            f"registered backends: {known}") from None


def make_list(name: str = DEFAULT_BACKEND,
              capacity: Optional[int] = None, **config) -> PieoList:
    """Instantiate the named backend.

    ``capacity=None`` asks for an unbounded list; backends that require a
    bound (the hardware models) get :data:`DEFAULT_CAPACITY` instead.
    Remaining keyword arguments are backend-specific config (e.g.
    ``sublist_size=8`` for ``"hardware"``, ``chunk_size=32`` for
    ``"fast"``).
    """
    spec = get_backend(name)
    if capacity is None and not spec.unbounded_ok:
        capacity = DEFAULT_CAPACITY
    return spec.factory(capacity, **config)


def make_factory(name: str = DEFAULT_BACKEND,
                 **config) -> Callable[[Optional[int]], PieoList]:
    """A ``capacity -> PieoList`` factory for the named backend.

    This is the shape :class:`~repro.sched.hierarchical
    .HierarchicalScheduler` consumes for its per-level physical PIEOs.
    """
    get_backend(name)  # fail fast on unknown names
    return lambda capacity=None: make_list(name, capacity=capacity,
                                           **config)


# ----------------------------------------------------------------------
# Built-in backends
# ----------------------------------------------------------------------
def _reference_factory(capacity: Optional[int]) -> PieoList:
    from repro.core.reference import ReferencePieo
    return ReferencePieo(capacity)


def _hardware_factory(capacity: Optional[int],
                      sublist_size: Optional[int] = None,
                      self_check: bool = False,
                      instrument: bool = True) -> PieoList:
    from repro.core.instrumentation import NULL_INSTRUMENTATION
    from repro.core.pieo import PieoHardwareList
    instrumentation = None if instrument else NULL_INSTRUMENTATION
    return PieoHardwareList(capacity, sublist_size=sublist_size,
                            self_check=self_check,
                            instrumentation=instrumentation)


def _fast_factory(capacity: Optional[int],
                  chunk_size: Optional[int] = None) -> PieoList:
    from repro.core.fastlist import DEFAULT_CHUNK_SIZE, FastPieo
    return FastPieo(capacity, chunk_size=chunk_size or DEFAULT_CHUNK_SIZE)


def _pifo_design_factory(capacity: Optional[int]) -> PieoList:
    from repro.core.pifo import PifoDesignPieoList
    return PifoDesignPieoList(capacity)


def _pheap_factory(capacity: Optional[int]) -> PieoList:
    from repro.baselines.pheap import PHeap
    return PHeap(capacity)


def _traced_factory(capacity: Optional[int],
                    inner: Optional[str] = None,
                    tracer=None, metrics=None, clock=None,
                    **inner_config) -> PieoList:
    from repro.obs.traced_list import TracedList
    inner_name = inner or DEFAULT_BACKEND
    if inner_name == "traced":
        raise ConfigurationError("cannot nest the traced backend")
    inner_list = make_list(inner_name, capacity=capacity, **inner_config)
    return TracedList(inner_list, tracer=tracer, metrics=metrics,
                      clock=clock)


register_backend(
    "reference", _reference_factory,
    description="semantic oracle: sorted array + linear eligibility scan")
register_backend(
    "hardware", _hardware_factory, unbounded_ok=False,
    description="cycle-accurate O(sqrt N) model of the Section 5 design")
register_backend(
    "fast", _fast_factory,
    description="index-accelerated software engine, no accounting")
register_backend(
    "pifo-design", _pifo_design_factory, unbounded_ok=False,
    description="footnote 7: PIEO semantics on PIFO's O(N) design")
register_backend(
    "pheap", _pheap_factory, unbounded_ok=False,
    description="Section 7 pipelined-heap baseline")
register_backend(
    "traced", _traced_factory,
    description="tracing/metrics decorator over another backend "
                "(config: inner=NAME, tracer=, metrics=)")
