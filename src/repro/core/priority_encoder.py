"""Priority encoder and parallel comparator helpers.

Fig. 5 of the paper: "A priority encoder takes as input a bit vector and
returns the smallest index containing 1."  Enqueue and dequeue both work by
running parallel comparisons over an array (the pointer array or one
sublist) and feeding the resulting bit vector to a priority encoder.

These helpers are pure functions; the cycle-accurate models charge their
comparator/encoder usage to their own operation counters.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence, TypeVar

T = TypeVar("T")


def priority_encode(bits: Sequence[bool]) -> Optional[int]:
    """Return the smallest index whose bit is set, or ``None`` if all zero."""
    for index, bit in enumerate(bits):
        if bit:
            return index
    return None


def priority_encode_last(bits: Sequence[bool]) -> Optional[int]:
    """Return the *largest* index whose bit is set, or ``None`` if all zero.

    Used where the hardware flips the input bit order (e.g. finding the
    last non-empty sublist).
    """
    for index in range(len(bits) - 1, -1, -1):
        if bits[index]:
            return index
    return None


def parallel_compare(items: Sequence[T],
                     predicate: Callable[[T], bool]) -> List[bool]:
    """Evaluate ``predicate`` on every item "in parallel".

    Models one comparator per item; the caller charges ``len(items)``
    comparator activations for the cycle in which this runs.
    """
    return [predicate(item) for item in items]


def first_match(items: Sequence[T],
                predicate: Callable[[T], bool]) -> Optional[int]:
    """Parallel compare + priority encode in one step."""
    return priority_encode(parallel_compare(items, predicate))
