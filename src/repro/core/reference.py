"""Reference (software oracle) implementation of the PIEO primitive.

This implementation is *semantically exact* with respect to Section 3.1 of
the paper and deliberately simple: an array kept sorted by ``(rank, seq)``
with a linear eligibility scan at dequeue.  It makes no performance or
hardware-fidelity claims — it exists so the cycle-accurate hardware model
(:mod:`repro.core.pieo`) can be differentially tested against it, and as a
convenient pure-software PIEO for simulations where hardware accounting is
not needed.

Two storage modes share the same observable semantics:

* **flat** (the default): one array sorted by ``(rank, seq)``, exactly
  the paper's mental model;
* **grouped**: per-group sorted arrays, entered lazily on the first
  single-group ``dequeue``/``peek``.  Logical-PIEO views
  (:class:`repro.sched.hierarchical.LogicalPieoView`) issue *only*
  single-group operations, and maintaining a global sorted array next to
  the per-group ones doubles every insert/remove for no benefit — the
  grouped mode keeps only the per-group arrays and derives the global
  (rank, seq) order on demand for the rare whole-list operation
  (``snapshot``, flat ``dequeue``/``peek``, ``min_send_time``).  Keys are
  unique (the FIFO ``seq`` breaks rank ties), so the derived order is
  exactly the flat order and results are bit-identical.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.errors import CapacityError, DuplicateFlowError


class ReferencePieo(PieoList):
    """Exact-semantics PIEO ordered list.

    Parameters
    ----------
    capacity:
        Maximum number of resident elements.  Defaults to unbounded
        (``None``) for pure-software use; pass a value to mirror a
        hardware list of fixed size.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._items: List[Element] = []
        self._keys: List[Tuple] = []  # parallel (rank, seq) keys for bisect
        self._resident: Dict[Hashable, Element] = {}
        self._next_seq = 0
        # Grouped storage mode (see module docstring): entered on the
        # first single-group dequeue/peek; flat (ungrouped) use never
        # pays for it.
        self._grouped = False
        self._group_items: Dict[int, List[Element]] = {}
        self._group_keys: Dict[int, List[Tuple]] = {}

    # ------------------------------------------------------------------
    # OrderedList interface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        if self._capacity is None:
            return int(2 ** 62)
        return self._capacity

    def __len__(self) -> int:
        return len(self._resident)

    def enqueue(self, element: Element) -> None:
        if (self._capacity is not None
                and len(self._resident) >= self._capacity):
            raise CapacityError(
                f"ReferencePieo full (capacity {self._capacity})")
        if element.flow_id in self._resident:
            raise DuplicateFlowError(
                f"flow {element.flow_id!r} already resident")
        element.seq = self._next_seq
        self._next_seq += 1
        key = (element.rank, element.seq)
        if self._grouped:
            self._group_insert(element, key)
        else:
            position = bisect.bisect_left(self._keys, key)
            self._items.insert(position, element)
            self._keys.insert(position, key)
        self._resident[element.flow_id] = element

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        element = self._resident.get(flow_id)
        if element is None:
            return None
        if self._grouped:
            self._group_remove(element)
            del self._resident[flow_id]
            return element
        return self._pop(self._index_of(element))

    def snapshot(self) -> List[Element]:
        if not self._grouped:
            return list(self._items)
        groups = [pairs for pairs in self._group_items.values() if pairs]
        if len(groups) == 1:
            return list(groups[0])
        merged: List[Tuple[Tuple, Element]] = []
        for group, items in self._group_items.items():
            merged.extend(zip(self._group_keys[group], items))
        merged.sort(key=lambda pair: pair[0])
        return [element for _, element in merged]

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._resident

    def find(self, flow_id: Hashable) -> Optional[Element]:
        return self._resident.get(flow_id)

    # ------------------------------------------------------------------
    # PieoList interface
    # ------------------------------------------------------------------
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        if group_range is not None and group_range[0] == group_range[1]:
            if not self._grouped:
                self._enter_grouped_mode()
            items = self._group_items.get(group_range[0])
            if items:
                for position, element in enumerate(items):
                    if element.send_time <= now:
                        items.pop(position)
                        self._group_keys[element.group].pop(position)
                        del self._resident[element.flow_id]
                        return element
            return None
        if self._grouped:
            found = self._best_across_groups(now, group_range)
            if found is None:
                return None
            group, position = found
            element = self._group_items[group].pop(position)
            self._group_keys[group].pop(position)
            del self._resident[element.flow_id]
            return element
        position = self._first_eligible(now, group_range)
        if position is None:
            return None
        return self._pop(position)

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        if group_range is not None and group_range[0] == group_range[1]:
            if not self._grouped:
                self._enter_grouped_mode()
            items = self._group_items.get(group_range[0])
            if items:
                for element in items:
                    if element.send_time <= now:
                        return element
            return None
        if self._grouped:
            found = self._best_across_groups(now, group_range)
            if found is None:
                return None
            group, position = found
            return self._group_items[group][position]
        position = self._first_eligible(now, group_range)
        if position is None:
            return None
        return self._items[position]

    def min_send_time(self) -> Time:
        if self._grouped:
            smallest = math.inf
            for items in self._group_items.values():
                for element in items:
                    if element.send_time < smallest:
                        smallest = element.send_time
            return smallest
        if not self._items:
            return math.inf
        return min(element.send_time for element in self._items)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _first_eligible(self, now: Time,
                        group_range: Optional[Tuple[int, int]],
                        ) -> Optional[int]:
        # The predicate is inlined (rather than Element.is_eligible) —
        # this scan dominates scheduling-decision cost in profiles.
        if group_range is None:
            for position, element in enumerate(self._items):
                if element.send_time <= now:
                    return position
        else:
            lo, hi = group_range
            for position, element in enumerate(self._items):
                if element.send_time <= now and lo <= element.group <= hi:
                    return position
        return None

    def _best_across_groups(self, now: Time,
                            group_range: Optional[Tuple[int, int]],
                            ) -> Optional[Tuple[int, int]]:
        """(group, position) of the smallest-keyed eligible element in
        grouped mode.  Each group array is key-sorted, so its first
        eligible element is its candidate; the global winner is the
        smallest candidate key."""
        lo_hi = group_range
        best_key = None
        best = None
        for group, items in self._group_items.items():
            if lo_hi is not None and not lo_hi[0] <= group <= lo_hi[1]:
                continue
            keys = self._group_keys[group]
            for position, element in enumerate(items):
                if element.send_time <= now:
                    key = keys[position]
                    if best_key is None or key < best_key:
                        best_key = key
                        best = (group, position)
                    break
        return best

    def _enter_grouped_mode(self) -> None:
        for element, key in zip(self._items, self._keys):
            self._group_items.setdefault(element.group, []).append(element)
            self._group_keys.setdefault(element.group, []).append(key)
        self._items.clear()
        self._keys.clear()
        self._grouped = True

    def _group_insert(self, element: Element, key: Tuple) -> None:
        keys = self._group_keys.get(element.group)
        if keys is None:
            self._group_items[element.group] = [element]
            self._group_keys[element.group] = [key]
            return
        position = bisect.bisect_left(keys, key)
        keys.insert(position, key)
        self._group_items[element.group].insert(position, element)

    def _group_remove(self, element: Element) -> None:
        keys = self._group_keys[element.group]
        items = self._group_items[element.group]
        position = bisect.bisect_left(keys, (element.rank, element.seq))
        while items[position] is not element:
            position += 1
        keys.pop(position)
        items.pop(position)

    def _index_of(self, element: Element) -> int:
        position = bisect.bisect_left(self._keys,
                                      (element.rank, element.seq))
        while self._items[position] is not element:
            position += 1
        return position

    def _pop(self, position: int) -> Element:
        element = self._items.pop(position)
        self._keys.pop(position)
        del self._resident[element.flow_id]
        return element
