"""Reference (software oracle) implementation of the PIEO primitive.

This implementation is *semantically exact* with respect to Section 3.1 of
the paper and deliberately simple: an array kept sorted by ``(rank, seq)``
with a linear eligibility scan at dequeue.  It makes no performance or
hardware-fidelity claims — it exists so the cycle-accurate hardware model
(:mod:`repro.core.pieo`) can be differentially tested against it, and as a
convenient pure-software PIEO for simulations where hardware accounting is
not needed.
"""

from __future__ import annotations

import bisect
import math
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.errors import CapacityError, DuplicateFlowError


class ReferencePieo(PieoList):
    """Exact-semantics PIEO ordered list.

    Parameters
    ----------
    capacity:
        Maximum number of resident elements.  Defaults to unbounded
        (``None``) for pure-software use; pass a value to mirror a
        hardware list of fixed size.
    """

    def __init__(self, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        self._capacity = capacity
        self._items: List[Element] = []
        self._keys: List[Tuple] = []  # parallel (rank, seq) keys for bisect
        self._resident: Dict[Hashable, Element] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------
    # OrderedList interface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        if self._capacity is None:
            return int(2 ** 62)
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def enqueue(self, element: Element) -> None:
        if self._capacity is not None and len(self._items) >= self._capacity:
            raise CapacityError(
                f"ReferencePieo full (capacity {self._capacity})")
        if element.flow_id in self._resident:
            raise DuplicateFlowError(
                f"flow {element.flow_id!r} already resident")
        element.seq = self._next_seq
        self._next_seq += 1
        key = element.sort_key()
        position = bisect.bisect_left(self._keys, key)
        self._items.insert(position, element)
        self._keys.insert(position, key)
        self._resident[element.flow_id] = element

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        element = self._resident.get(flow_id)
        if element is None:
            return None
        position = self._index_of(element)
        return self._pop(position)

    def snapshot(self) -> List[Element]:
        return list(self._items)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._resident

    # ------------------------------------------------------------------
    # PieoList interface
    # ------------------------------------------------------------------
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        position = self._first_eligible(now, group_range)
        if position is None:
            return None
        return self._pop(position)

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        position = self._first_eligible(now, group_range)
        if position is None:
            return None
        return self._items[position]

    def min_send_time(self) -> Time:
        if not self._items:
            return math.inf
        return min(element.send_time for element in self._items)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _first_eligible(self, now: Time,
                        group_range: Optional[Tuple[int, int]],
                        ) -> Optional[int]:
        for position, element in enumerate(self._items):
            if element.is_eligible(now, group_range):
                return position
        return None

    def _index_of(self, element: Element) -> int:
        position = bisect.bisect_left(self._keys, element.sort_key())
        while self._items[position] is not element:
            position += 1
        return position

    def _pop(self, position: int) -> Element:
        element = self._items.pop(position)
        self._keys.pop(position)
        del self._resident[element.flow_id]
        return element
