"""Core scheduling primitives: elements, predicates, PIEO, PIFO, and the
ordered-list backend registry."""

from repro.core.backends import (DEFAULT_BACKEND, BackendSpec,
                                 available_backends, get_backend, make_factory,
                                 make_list, register_backend,
                                 unregister_backend)
from repro.core.element import (ALWAYS_ELIGIBLE, NEVER_ELIGIBLE, Element,
                                Rank, Time)
from repro.core.fastlist import FastPieo
from repro.core.instrumentation import (NULL_INSTRUMENTATION, Instrumentation,
                                        NullInstrumentation)
from repro.core.interfaces import OrderedList, PieoList
from repro.core.opstats import OpCounters
from repro.core.pieo import CYCLES_PER_OP, PieoHardwareList
from repro.core.pifo import (PIFO_CYCLES_PER_OP, PifoDesignPieoList,
                             PifoHardwareList)
from repro.core.reference import ReferencePieo

__all__ = [
    "ALWAYS_ELIGIBLE",
    "NEVER_ELIGIBLE",
    "Element",
    "Rank",
    "Time",
    "OrderedList",
    "PieoList",
    "OpCounters",
    "Instrumentation",
    "NullInstrumentation",
    "NULL_INSTRUMENTATION",
    "CYCLES_PER_OP",
    "PieoHardwareList",
    "PIFO_CYCLES_PER_OP",
    "PifoDesignPieoList",
    "PifoHardwareList",
    "ReferencePieo",
    "FastPieo",
    "BackendSpec",
    "DEFAULT_BACKEND",
    "available_backends",
    "get_backend",
    "make_factory",
    "make_list",
    "register_backend",
    "unregister_backend",
]
