"""Core scheduling primitives: elements, predicates, PIEO, and PIFO."""

from repro.core.element import (ALWAYS_ELIGIBLE, NEVER_ELIGIBLE, Element,
                                Rank, Time)
from repro.core.interfaces import OrderedList, PieoList
from repro.core.opstats import OpCounters
from repro.core.pieo import CYCLES_PER_OP, PieoHardwareList
from repro.core.pifo import (PIFO_CYCLES_PER_OP, PifoDesignPieoList,
                             PifoHardwareList)
from repro.core.reference import ReferencePieo

__all__ = [
    "ALWAYS_ELIGIBLE",
    "NEVER_ELIGIBLE",
    "Element",
    "Rank",
    "Time",
    "OrderedList",
    "PieoList",
    "OpCounters",
    "CYCLES_PER_OP",
    "PieoHardwareList",
    "PIFO_CYCLES_PER_OP",
    "PifoDesignPieoList",
    "PifoHardwareList",
    "ReferencePieo",
]
