"""Operation accounting shared by the cycle-accurate hardware models.

The paper's evaluation is driven by three hardware quantities:

* clock cycles per primitive operation (4 for PIEO, Section 5.2),
* SRAM port usage (two sublists per cycle on dual-port SRAM, Section 6.2),
* parallel comparator / priority-encoder activations (the O(sqrt(N)) vs
  O(N) scalability argument, Sections 1 and 5.1).

Every model charges its work to an :class:`OpCounters` instance so tests
and benchmarks can assert cycle counts and derive scheduling rates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class OpCounters:
    """Mutable counters for one hardware structure."""

    cycles: int = 0
    sram_sublist_reads: int = 0
    sram_sublist_writes: int = 0
    comparator_activations: int = 0
    encoder_activations: int = 0
    flipflop_shifts: int = 0
    ops: Dict[str, int] = field(default_factory=dict)

    def charge_op(self, name: str, cycles: int) -> None:
        """Record one completed primitive operation of ``cycles`` cycles."""
        self.ops[name] = self.ops.get(name, 0) + 1
        self.cycles += cycles

    def charge_compare(self, width: int) -> None:
        """Record one parallel compare over ``width`` lanes."""
        self.comparator_activations += width

    def charge_encode(self) -> None:
        self.encoder_activations += 1

    def charge_sram_read(self, sublists: int = 1) -> None:
        self.sram_sublist_reads += sublists

    def charge_sram_write(self, sublists: int = 1) -> None:
        self.sram_sublist_writes += sublists

    def total_ops(self) -> int:
        return sum(self.ops.values())

    def reset(self) -> None:
        self.cycles = 0
        self.sram_sublist_reads = 0
        self.sram_sublist_writes = 0
        self.comparator_activations = 0
        self.encoder_activations = 0
        self.flipflop_shifts = 0
        self.ops = {}

    def snapshot(self) -> Dict[str, float]:
        """Return a plain-dict view, convenient for reports."""
        view: Dict[str, float] = {
            "cycles": self.cycles,
            "sram_sublist_reads": self.sram_sublist_reads,
            "sram_sublist_writes": self.sram_sublist_writes,
            "comparator_activations": self.comparator_activations,
            "encoder_activations": self.encoder_activations,
            "flipflop_shifts": self.flipflop_shifts,
            "total_ops": self.total_ops(),
        }
        for name, count in self.ops.items():
            view[f"op:{name}"] = count
        return view
