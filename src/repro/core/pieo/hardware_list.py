"""Cycle-accurate model of the PIEO scheduler hardware design (Section 5).

The model reproduces the micro-architecture of Fig. 5 exactly:

* the ordered list is stored as an array of ``2 * ceil(N / s)`` sublists of
  size ``s = ceil(sqrt(N))`` in (modelled) SRAM;
* a pointer array (*Ordered-Sublist-Array*) in flip-flops orders the
  sublists by their smallest rank, with empty sublists parked in a suffix
  partition;
* every primitive operation — ``enqueue(f)``, ``dequeue()``,
  ``dequeue(f)`` — executes the four-cycle sequence of Section 5.2,
  reading at most two sublists (the two ports of dual-port SRAM) and
  running parallel compares + priority encoders over O(sqrt(N)) lanes;
* **Invariant 1** is maintained: there are never two consecutive
  partially-full sublists in the pointer array, bounding the number of
  sublists at ``2 * ceil(N / s)`` (the paper's 2x SRAM overhead).

Cycle, SRAM-port, comparator, and encoder usage are charged to an
:class:`repro.core.opstats.OpCounters` so scheduling rate and scalability
experiments can be driven from the model.

One documented extension beyond the paper's prose: ``dequeue`` accepts an
optional ``group_range`` filter used by hierarchical scheduling
(Section 4.3).  The per-sublist ``smallest_send_time`` summary does not
capture group membership, so when a group filter is active the model may
have to examine more than one candidate sublist before finding a
qualifying element; each extra sublist examined is charged one extra cycle
and one extra SRAM read, a conservative cost model for the wider predicate
evaluation the paper sketches.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.instrumentation import Instrumentation
from repro.core.interfaces import PieoList
from repro.core.opstats import OpCounters
from repro.core.pieo.structures import OrderedSublistArray, Sublist
from repro.errors import (CapacityError, DuplicateFlowError,
                          InvariantViolation)

#: Clock cycles per primitive operation (Section 5.2 / Section 6.2).
CYCLES_PER_OP = 4


@dataclass
class OpTrace:
    """Record of the last primitive operation, for worked-example tests
    mirroring Figs. 6 and 7."""

    op: str
    selected_sublist: Optional[int] = None
    neighbor_sublist: Optional[int] = None
    used_fresh_sublist: bool = False
    position_in_sublist: Optional[int] = None
    moved_flow: Optional[Hashable] = None
    extra_sublists_scanned: int = 0
    sublists_read: List[int] = field(default_factory=list)
    sublists_written: List[int] = field(default_factory=list)


def default_sublist_size(capacity: int) -> int:
    """The paper's choice: sublists of size ceil(sqrt(N))."""
    return max(1, math.isqrt(capacity - 1) + 1) if capacity > 1 else 1


class PieoHardwareList(PieoList):
    """The PIEO ordered list exactly as built in hardware.

    Parameters
    ----------
    capacity:
        Maximum number of resident elements (``N``).
    sublist_size:
        Elements per sublist; defaults to ``ceil(sqrt(N))``.  Exposed for
        the sublist-size ablation benchmark.
    self_check:
        When true, run the full invariant checker after every primitive
        operation.  Slow; used by the test suite.
    instrumentation:
        Where cycle/SRAM/comparator work is charged.  Defaults to a fresh
        :class:`~repro.core.opstats.OpCounters` (cycle-exact accounting);
        pass :data:`~repro.core.instrumentation.NULL_INSTRUMENTATION` to
        run the model without accounting.  Exposed as ``counters``.
    """

    def __init__(self, capacity: int,
                 sublist_size: Optional[int] = None,
                 self_check: bool = False,
                 instrumentation: Optional[Instrumentation] = None) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self.sublist_size = (default_sublist_size(capacity)
                             if sublist_size is None else sublist_size)
        if self.sublist_size < 1:
            raise ValueError("sublist_size must be >= 1")
        self.num_sublists = 2 * math.ceil(capacity / self.sublist_size)
        self.sublists: List[Sublist] = [
            Sublist(i, self.sublist_size) for i in range(self.num_sublists)
        ]
        self.pointer_array = OrderedSublistArray(self.num_sublists)
        self.counters: Instrumentation = (
            OpCounters() if instrumentation is None else instrumentation)
        self.last_trace: Optional[OpTrace] = None
        self._flow_sublist: Dict[Hashable, int] = {}
        self._count = 0
        self._next_seq = 0
        self._self_check = self_check

    # ------------------------------------------------------------------
    # OrderedList interface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return self._count

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._flow_sublist

    def snapshot(self) -> List[Element]:
        elements: List[Element] = []
        for entry in self.pointer_array.nonempty_entries():
            elements.extend(self.sublists[entry.sublist_id].entries)
        return elements

    # ------------------------------------------------------------------
    # enqueue(f) — Section 5.2, Fig. 6
    # ------------------------------------------------------------------
    def enqueue(self, element: Element) -> None:
        if self._count >= self._capacity:
            raise CapacityError(
                f"PIEO full (capacity {self._capacity})")
        if element.flow_id in self._flow_sublist:
            raise DuplicateFlowError(
                f"flow {element.flow_id!r} already resident")
        element.seq = self._next_seq
        self._next_seq += 1
        trace = OpTrace(op="enqueue")

        # Cycle 1: parallel compare (smallest_rank > f.rank) over the
        # pointer array + priority encode; empty sublists compare as +inf.
        self.counters.charge_compare(len(self.pointer_array))
        self.counters.charge_encode()
        if self.pointer_array.num_nonempty == 0:
            self._enqueue_into_fresh(element, destination=0, trace=trace)
            self._finish_op(trace, cycles=CYCLES_PER_OP)
            return
        first_larger = self._first_pointer_with_larger_rank(element.rank)
        selected_pos = max(0, first_larger - 1)
        selected_entry = self.pointer_array.entries[selected_pos]
        sublist = self.sublists[selected_entry.sublist_id]
        trace.selected_sublist = sublist.sublist_id

        # Cycle 2: read S from SRAM; if S is full also read S' (the right
        # neighbour if not full, else a fresh empty sublist).
        self._read_sublist(sublist, trace)
        neighbor: Optional[Sublist] = None
        if sublist.is_full:
            neighbor = self._enqueue_overflow_target(selected_pos, trace)
            self._read_sublist(neighbor, trace)

        # Cycle 3: priority encoding inside S (and S') to locate positions.
        self.counters.charge_compare(2 * self.sublist_size)
        self.counters.charge_encode()
        position = sublist.rank_insert_position(element.rank)
        trace.position_in_sublist = position
        if neighbor is not None:
            self.counters.charge_compare(self.sublist_size)
            self.counters.charge_encode()
            if position >= sublist.size:
                moved = element  # new element is the (conceptual) tail
            else:
                moved = sublist.pop_tail()
                sublist.insert_at(position, element)
            neighbor.push_head(moved)
            trace.moved_flow = moved.flow_id
            self._flow_sublist[moved.flow_id] = neighbor.sublist_id
        else:
            sublist.insert_at(position, element)

        # Cycle 4: write back S (and S'), refresh pointer entries.
        if self._flow_sublist.get(element.flow_id) is None:
            self._flow_sublist[element.flow_id] = sublist.sublist_id
        self._write_back(sublist, trace)
        if neighbor is not None:
            self._write_back(neighbor, trace)
        self._count += 1
        self._finish_op(trace, cycles=CYCLES_PER_OP)

    # ------------------------------------------------------------------
    # dequeue() — Section 5.2, Fig. 7
    # ------------------------------------------------------------------
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        trace = OpTrace(op="dequeue")

        # Cycle 1: parallel compare (now >= smallest_send_time) over the
        # pointer array + priority encode.
        self.counters.charge_compare(len(self.pointer_array))
        self.counters.charge_encode()
        selection = self._select_dequeue_sublist(now, group_range, trace)
        if selection is None:
            self.counters.charge_op("dequeue_null", 1)
            self.last_trace = trace
            return None
        selected_pos, position = selection
        return self._extract(selected_pos, position, trace,
                             extra_cycles=trace.extra_sublists_scanned)

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        selection = self._select_dequeue_sublist(now, group_range,
                                                 OpTrace(op="peek"),
                                                 charge=False)
        if selection is None:
            return None
        selected_pos, position = selection
        entry = self.pointer_array.entries[selected_pos]
        return self.sublists[entry.sublist_id].entries[position]

    # ------------------------------------------------------------------
    # dequeue(f) — Section 5.2
    # ------------------------------------------------------------------
    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        trace = OpTrace(op="dequeue_flow")
        sublist_id = self._flow_sublist.get(flow_id)
        if sublist_id is None:
            self.counters.charge_op("dequeue_flow_null", 1)
            self.last_trace = trace
            return None
        # Cycle 1: locate the tracked sublist in the pointer array.
        self.counters.charge_compare(len(self.pointer_array))
        self.counters.charge_encode()
        selected_pos = self.pointer_array.position_of_sublist(sublist_id)
        sublist = self.sublists[sublist_id]
        # Cycle 3's predicate is (f == Rank-Sublist[i].flow_id).
        position = sublist.index_of_flow(flow_id)
        if position is None:
            raise InvariantViolation(
                f"flow map points at sublist {sublist_id} but flow "
                f"{flow_id!r} is not there")
        return self._extract(selected_pos, position, trace)

    # ------------------------------------------------------------------
    # PieoList helpers
    # ------------------------------------------------------------------
    def min_send_time(self) -> Time:
        smallest = math.inf
        for entry in self.pointer_array.nonempty_entries():
            if entry.smallest_send_time < smallest:
                smallest = entry.smallest_send_time
        return smallest

    # ------------------------------------------------------------------
    # Shared extract path (cycles 2-4 of dequeue()/dequeue(f))
    # ------------------------------------------------------------------
    def _extract(self, selected_pos: int, position: int, trace: OpTrace,
                 extra_cycles: int = 0) -> Element:
        entry = self.pointer_array.entries[selected_pos]
        sublist = self.sublists[entry.sublist_id]
        trace.selected_sublist = sublist.sublist_id
        trace.position_in_sublist = position

        # Cycle 2: read S; if S is full, also read a non-full neighbour S'
        # so an element can be moved into S to keep Invariant 1.
        self._read_sublist(sublist, trace)
        neighbor_pos: Optional[int] = None
        if sublist.is_full:
            neighbor_pos = self._dequeue_refill_source(selected_pos)
            if neighbor_pos is not None:
                neighbor_entry = self.pointer_array.entries[neighbor_pos]
                neighbor = self.sublists[neighbor_entry.sublist_id]
                self._read_sublist(neighbor, trace)

        # Cycle 3: priority encode inside S for the dequeue position (done
        # by the caller) and move an element from S' into S if needed.
        self.counters.charge_compare(self.sublist_size)
        self.counters.charge_encode()
        element = sublist.remove_at(position)
        del self._flow_sublist[element.flow_id]
        neighbor = None
        if neighbor_pos is not None:
            neighbor_entry = self.pointer_array.entries[neighbor_pos]
            neighbor = self.sublists[neighbor_entry.sublist_id]
            self.counters.charge_compare(2 * self.sublist_size)
            self.counters.charge_encode()
            if neighbor_pos < selected_pos:
                moved = neighbor.pop_tail()
                sublist.push_head(moved)
            else:
                moved = neighbor.pop_head()
                sublist.push_tail(moved)
            trace.moved_flow = moved.flow_id
            self._flow_sublist[moved.flow_id] = sublist.sublist_id

        # Cycle 4: write back and refresh pointer entries; park any sublist
        # that became empty at the head of the empty partition.
        self._write_back(sublist, trace)
        if neighbor is not None:
            self._write_back(neighbor, trace)
        self._count -= 1
        for maybe_empty in (neighbor, sublist):
            if maybe_empty is not None and maybe_empty.is_empty:
                pos = self.pointer_array.position_of_sublist(
                    maybe_empty.sublist_id)
                self.pointer_array.deactivate(pos)
        self._finish_op(trace, cycles=CYCLES_PER_OP + extra_cycles)
        return element

    # ------------------------------------------------------------------
    # Selection logic
    # ------------------------------------------------------------------
    def _first_pointer_with_larger_rank(self, rank: float) -> int:
        """Priority-encoder output j of cycle 1 of enqueue.

        Returns ``len(pointer_array)`` when no entry matches (only
        possible when there are no empty sublists, whose +inf rank always
        matches).
        """
        for index, entry in enumerate(self.pointer_array.entries):
            if entry.smallest_rank > rank:
                return index
        return len(self.pointer_array)

    def _enqueue_overflow_target(self, selected_pos: int,
                                 trace: OpTrace) -> Sublist:
        """Pick S' for a full selected sublist: the immediate right
        neighbour if not full, else a fresh empty sublist shifted to the
        immediate right of S (Invariant 1)."""
        right_pos = selected_pos + 1
        if right_pos < self.pointer_array.num_nonempty:
            right_entry = self.pointer_array.entries[right_pos]
            right = self.sublists[right_entry.sublist_id]
            if not right.is_full:
                trace.neighbor_sublist = right.sublist_id
                return right
        empty_pos = self.pointer_array.first_empty_position()
        if empty_pos is None:
            raise InvariantViolation(
                "no empty sublist available for overflow; Invariant 1 "
                "bound was exceeded")
        fresh_entry = self.pointer_array.entries[empty_pos]
        self.pointer_array.activate_at(empty_pos, right_pos)
        trace.neighbor_sublist = fresh_entry.sublist_id
        trace.used_fresh_sublist = True
        return self.sublists[fresh_entry.sublist_id]

    def _enqueue_into_fresh(self, element: Element, destination: int,
                            trace: OpTrace) -> None:
        """Enqueue into an entirely empty list."""
        empty_pos = self.pointer_array.first_empty_position()
        if empty_pos is None:
            raise InvariantViolation("empty list but no empty sublist")
        entry = self.pointer_array.entries[empty_pos]
        self.pointer_array.activate_at(empty_pos, destination)
        sublist = self.sublists[entry.sublist_id]
        trace.selected_sublist = sublist.sublist_id
        trace.used_fresh_sublist = True
        trace.position_in_sublist = 0
        self._read_sublist(sublist, trace)
        sublist.insert_at(0, element)
        self._flow_sublist[element.flow_id] = sublist.sublist_id
        self._write_back(sublist, trace)
        self._count += 1

    def _select_dequeue_sublist(self, now: Time,
                                group_range: Optional[Tuple[int, int]],
                                trace: OpTrace,
                                charge: bool = True,
                                ) -> Optional[Tuple[int, int]]:
        """Cycle-1 selection: the first pointer-array position whose
        sublist contains an eligible element, together with the in-sublist
        position of that element.

        Without a group filter this is a single parallel compare on the
        ``smallest_send_time`` summaries.  With a group filter, candidate
        sublists are examined in order (extra scans are charged by the
        caller via ``trace.extra_sublists_scanned``).
        """
        entries = self.pointer_array.nonempty_entries()
        for pointer_pos, entry in enumerate(entries):
            if now < entry.smallest_send_time:
                continue
            sublist = self.sublists[entry.sublist_id]
            position = sublist.first_eligible_index(now, group_range)
            if position is not None:
                return pointer_pos, position
            if group_range is None:
                raise InvariantViolation(
                    f"summary says sublist {entry.sublist_id} has an "
                    f"eligible element at t={now} but none found")
            if charge:
                trace.extra_sublists_scanned += 1
                self.counters.charge_sram_read()
                self.counters.charge_compare(self.sublist_size)
                self.counters.charge_encode()
        return None

    def _dequeue_refill_source(self, selected_pos: int) -> Optional[int]:
        """Pick the pointer position of a non-full, non-empty neighbour of
        S to donate an element (Fig. 7, cycle 2).  Prefers the left
        neighbour; returns None when both neighbours are full or absent,
        in which case S simply becomes partially full."""
        for candidate in (selected_pos - 1, selected_pos + 1):
            if 0 <= candidate < self.pointer_array.num_nonempty:
                entry = self.pointer_array.entries[candidate]
                sublist = self.sublists[entry.sublist_id]
                if not sublist.is_full and not sublist.is_empty:
                    return candidate
        return None

    # ------------------------------------------------------------------
    # SRAM / bookkeeping helpers
    # ------------------------------------------------------------------
    def _read_sublist(self, sublist: Sublist, trace: OpTrace) -> None:
        self.counters.charge_sram_read()
        trace.sublists_read.append(sublist.sublist_id)

    def _write_back(self, sublist: Sublist, trace: OpTrace) -> None:
        self.counters.charge_sram_write()
        trace.sublists_written.append(sublist.sublist_id)
        position = self.pointer_array.position_of_sublist(sublist.sublist_id)
        self.pointer_array.entries[position].refresh(sublist)

    def _finish_op(self, trace: OpTrace, cycles: int) -> None:
        self.counters.charge_op(trace.op, cycles)
        self.last_trace = trace
        if self._self_check:
            self.check()

    # ------------------------------------------------------------------
    # Self checks
    # ------------------------------------------------------------------
    def check(self) -> None:
        """Verify every structural invariant of the design.

        * pointer-array / SRAM consistency,
        * global (rank, arrival) order across the stitched sublists,
        * Invariant 1: no two consecutive partially-full sublists,
        * flow-map consistency and element count.
        """
        self.pointer_array.check(self.sublists)
        for sublist in self.sublists:
            sublist.check()
        elements = self.snapshot()
        if len(elements) != self._count:
            raise InvariantViolation("element count out of sync")
        for left, right in zip(elements, elements[1:]):
            if left.sort_key() > right.sort_key():
                raise InvariantViolation("global rank order broken")
        prefix = self.pointer_array.nonempty_entries()
        for left, right in zip(prefix, prefix[1:]):
            left_full = left.num >= self.sublist_size
            right_full = right.num >= self.sublist_size
            if not left_full and not right_full:
                raise InvariantViolation(
                    "Invariant 1 violated: two consecutive partially-full "
                    f"sublists ({left.sublist_id}, {right.sublist_id})")
        for flow_id, sublist_id in self._flow_sublist.items():
            if self.sublists[sublist_id].index_of_flow(flow_id) is None:
                raise InvariantViolation(
                    f"flow map stale for flow {flow_id!r}")
