"""Storage structures of the PIEO hardware design (Section 5.2, Fig. 5).

Two structures are modelled:

* :class:`Sublist` — one SRAM-resident sublist, holding a *Rank-Sublist*
  (elements ordered by increasing rank, FIFO within equal ranks) and an
  *Eligibility-Sublist* (a sorted copy of the elements' ``send_time``
  values).  A sublist is striped across O(sqrt(N)) dual-port SRAM blocks in
  the real hardware so the whole sublist is read or written in one cycle.

* :class:`PointerEntry` / :class:`OrderedSublistArray` — the flip-flop
  resident pointer array (*Ordered-Sublist-Array*), one entry per sublist,
  ordered by increasing ``smallest_rank`` and dynamically partitioned into
  a non-empty prefix and an empty suffix.

These classes implement *state*; the per-cycle control logic lives in
:class:`repro.core.pieo.hardware_list.PieoHardwareList`.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.element import Element, Time
from repro.errors import InvariantViolation


class Sublist:
    """One sublist: a bounded Rank-Sublist plus its Eligibility-Sublist."""

    __slots__ = ("sublist_id", "size", "entries", "eligibility")

    def __init__(self, sublist_id: int, size: int) -> None:
        if size < 1:
            raise ValueError("sublist size must be >= 1")
        self.sublist_id = sublist_id
        self.size = size
        #: Rank-Sublist: elements in increasing (rank, arrival) order.
        self.entries: List[Element] = []
        #: Eligibility-Sublist: send_time values in increasing order.
        self.eligibility: List[Time] = []

    # -- capacity ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries)

    @property
    def is_full(self) -> bool:
        return len(self.entries) >= self.size

    @property
    def is_empty(self) -> bool:
        return not self.entries

    # -- summaries mirrored into the pointer array ----------------------
    @property
    def smallest_rank(self) -> float:
        return self.entries[0].rank if self.entries else math.inf

    @property
    def smallest_send_time(self) -> Time:
        return self.eligibility[0] if self.eligibility else math.inf

    # -- positional helpers (positions computed by the control logic) ---
    def rank_insert_position(self, rank: float) -> int:
        """Priority-encoder result of the parallel compare
        ``entries[i].rank > rank``: the first strictly-larger index.

        Equal ranks sort *before* the new element, giving the FIFO
        tie-break of Section 3.1.
        """
        for index, entry in enumerate(self.entries):
            if entry.rank > rank:
                return index
        return len(self.entries)

    def insert_at(self, position: int, element: Element) -> None:
        if self.is_full:
            raise InvariantViolation(
                f"insert into full sublist {self.sublist_id}")
        self.entries.insert(position, element)
        bisect.insort(self.eligibility, element.send_time)

    def remove_at(self, position: int) -> Element:
        element = self.entries.pop(position)
        self._eligibility_remove(element.send_time)
        return element

    def pop_tail(self) -> Element:
        return self.remove_at(len(self.entries) - 1)

    def pop_head(self) -> Element:
        return self.remove_at(0)

    def push_head(self, element: Element) -> None:
        self.insert_at(0, element)

    def push_tail(self, element: Element) -> None:
        self.insert_at(len(self.entries), element)

    # -- predicate evaluation -------------------------------------------
    def first_eligible_index(self, now: Time,
                             group_range: Optional[Tuple[int, int]] = None,
                             ) -> Optional[int]:
        """Priority-encoder result over the Rank-Sublist with predicate
        ``now >= entries[i].send_time`` (plus the optional group filter)."""
        for index, entry in enumerate(self.entries):
            if entry.is_eligible(now, group_range):
                return index
        return None

    def index_of_flow(self, flow_id) -> Optional[int]:
        """Priority-encoder result of ``entries[i].flow_id == flow_id``."""
        for index, entry in enumerate(self.entries):
            if entry.flow_id == flow_id:
                return index
        return None

    # -- self checks -----------------------------------------------------
    def check(self) -> None:
        """Verify internal ordering invariants (test hook)."""
        for left, right in zip(self.entries, self.entries[1:]):
            if left.sort_key() > right.sort_key():
                raise InvariantViolation(
                    f"sublist {self.sublist_id} rank order broken")
        for left, right in zip(self.eligibility, self.eligibility[1:]):
            if left > right:
                raise InvariantViolation(
                    f"sublist {self.sublist_id} eligibility order broken")
        expected = sorted(entry.send_time for entry in self.entries)
        if expected != list(self.eligibility):
            raise InvariantViolation(
                f"sublist {self.sublist_id} eligibility desynchronised")

    def _eligibility_remove(self, send_time: Time) -> None:
        position = bisect.bisect_left(self.eligibility, send_time)
        if (position >= len(self.eligibility)
                or self.eligibility[position] != send_time):
            raise InvariantViolation(
                f"send_time {send_time} missing from eligibility sublist "
                f"{self.sublist_id}")
        self.eligibility.pop(position)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        ranks = [entry.rank for entry in self.entries]
        return f"Sublist(id={self.sublist_id}, ranks={ranks})"


@dataclass
class PointerEntry:
    """One flip-flop entry of the Ordered-Sublist-Array (Section 5.2)."""

    sublist_id: int
    smallest_rank: float = math.inf
    smallest_send_time: Time = math.inf
    num: int = 0

    @property
    def is_empty(self) -> bool:
        return self.num == 0

    def refresh(self, sublist: Sublist) -> None:
        """Re-latch the summary fields from the sublist after a write-back
        (cycle 4 of every primitive operation)."""
        self.smallest_rank = sublist.smallest_rank
        self.smallest_send_time = sublist.smallest_send_time
        self.num = len(sublist)


class OrderedSublistArray:
    """The flip-flop pointer array over all sublists.

    Entries are ordered by increasing ``smallest_rank``; all empty sublists
    sit in a suffix partition (Fig. 5: "the section on the left points to
    sublists which are not empty, while the section on the right points to
    all the currently empty sublists").
    """

    def __init__(self, num_sublists: int) -> None:
        self.entries: List[PointerEntry] = [
            PointerEntry(sublist_id=i) for i in range(num_sublists)
        ]
        #: Number of non-empty sublists == start of the empty partition.
        self.num_nonempty = 0

    def __len__(self) -> int:
        return len(self.entries)

    # -- queries ---------------------------------------------------------
    def nonempty_entries(self) -> List[PointerEntry]:
        return self.entries[:self.num_nonempty]

    def position_of_sublist(self, sublist_id: int) -> int:
        """Parallel compare on ``sublist_id`` + priority encode."""
        for position, entry in enumerate(self.entries):
            if entry.sublist_id == sublist_id:
                return position
        raise InvariantViolation(f"sublist {sublist_id} not in pointer array")

    def first_empty_position(self) -> Optional[int]:
        if self.num_nonempty >= len(self.entries):
            return None
        return self.num_nonempty

    # -- re-arrangements (single-cycle shifts in hardware) ----------------
    def move_entry(self, source: int, destination: int) -> None:
        """Shift the entry at ``source`` to ``destination``, sliding the
        intermediate entries by one (hardware does this with a parallel
        shift of the flip-flop array)."""
        entry = self.entries.pop(source)
        self.entries.insert(destination, entry)

    def activate(self, position: int) -> int:
        """Bring the empty sublist at ``position`` into the non-empty
        partition at its tail; return its new position."""
        destination = self.num_nonempty
        self.move_entry(position, destination)
        self.num_nonempty += 1
        return destination

    def activate_at(self, position: int, destination: int) -> None:
        """Bring an empty sublist into the non-empty partition at an
        arbitrary ``destination`` (used when a fresh sublist is shifted to
        the immediate right of a full sublist during enqueue)."""
        if destination > self.num_nonempty:
            raise InvariantViolation("activation beyond nonempty prefix")
        self.move_entry(position, destination)
        self.num_nonempty += 1

    def deactivate(self, position: int) -> None:
        """Move a now-empty sublist to the head of the empty partition."""
        self.num_nonempty -= 1
        self.move_entry(position, self.num_nonempty)

    # -- self checks -------------------------------------------------------
    def check(self, sublists: List[Sublist]) -> None:
        """Verify pointer-array invariants against the SRAM contents."""
        seen = sorted(entry.sublist_id for entry in self.entries)
        if seen != list(range(len(self.entries))):
            raise InvariantViolation("pointer array lost a sublist id")
        for position, entry in enumerate(self.entries):
            sublist = sublists[entry.sublist_id]
            if entry.num != len(sublist):
                raise InvariantViolation(
                    f"pointer num stale at position {position}")
            if entry.num and entry.smallest_rank != sublist.smallest_rank:
                raise InvariantViolation(
                    f"pointer smallest_rank stale at position {position}")
            if (entry.num and
                    entry.smallest_send_time != sublist.smallest_send_time):
                raise InvariantViolation(
                    f"pointer smallest_send_time stale at {position}")
            if position < self.num_nonempty and entry.is_empty:
                raise InvariantViolation(
                    f"empty sublist inside non-empty prefix at {position}")
            if position >= self.num_nonempty and not entry.is_empty:
                raise InvariantViolation(
                    f"non-empty sublist inside empty suffix at {position}")
        prefix = self.nonempty_entries()
        for left, right in zip(prefix, prefix[1:]):
            if left.smallest_rank > right.smallest_rank:
                raise InvariantViolation("pointer array rank order broken")
