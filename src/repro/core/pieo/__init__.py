"""Cycle-accurate model of the PIEO hardware design (Section 5)."""

from repro.core.pieo.hardware_list import (CYCLES_PER_OP, OpTrace,
                                           PieoHardwareList,
                                           default_sublist_size)
from repro.core.pieo.structures import (OrderedSublistArray, PointerEntry,
                                        Sublist)

__all__ = [
    "CYCLES_PER_OP",
    "OpTrace",
    "PieoHardwareList",
    "default_sublist_size",
    "OrderedSublistArray",
    "PointerEntry",
    "Sublist",
]
