"""Abstract interfaces shared by every ordered-list implementation.

Three implementations ship with the library:

* :class:`repro.core.reference.ReferencePieo` — the semantic oracle,
* :class:`repro.core.pieo.PieoHardwareList` — the cycle-accurate model of
  the paper's hardware design (Section 5),
* :class:`repro.core.pifo.PifoHardwareList` — the parallel
  compare-and-shift PIFO baseline [Sivaraman et al., SIGCOMM 2016].

They all speak the same interface so schedulers, tests, and benchmarks can
swap them freely.
"""

from __future__ import annotations

import abc
from typing import Hashable, Iterator, List, Optional, Tuple

from repro.core.element import Element, Time


class OrderedList(abc.ABC):
    """An ordered list of :class:`Element` kept in increasing rank order.

    Equal ranks preserve enqueue (FIFO) order.  The list has a fixed
    capacity, mirroring a hardware structure of fixed size.
    """

    @property
    @abc.abstractmethod
    def capacity(self) -> int:
        """Maximum number of resident elements."""

    @abc.abstractmethod
    def __len__(self) -> int:
        """Number of resident elements."""

    @abc.abstractmethod
    def enqueue(self, element: Element) -> None:
        """Insert ``element`` at the position dictated by its rank
        ("Push-In").

        Raises
        ------
        CapacityError
            If the list is full.
        DuplicateFlowError
            If an element with the same ``flow_id`` is already resident.
        """

    @abc.abstractmethod
    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        """Dequeue the specific element ``flow_id`` (``dequeue(f)``).

        Returns ``None`` if the flow is not resident, matching the paper's
        NULL return.
        """

    @abc.abstractmethod
    def snapshot(self) -> List[Element]:
        """Return resident elements in increasing (rank, seq) order.

        Intended for tests and debugging; makes no claim about cost.
        """

    def __iter__(self) -> Iterator[Element]:
        return iter(self.snapshot())

    def __contains__(self, flow_id: Hashable) -> bool:
        return self.find(flow_id) is not None

    def find(self, flow_id: Hashable) -> Optional[Element]:
        """The resident element for ``flow_id``, or None.

        Non-destructive and rank-agnostic; backends with a residency
        index override this with an O(1) lookup.
        """
        for element in self.snapshot():
            if element.flow_id == flow_id:
                return element
        return None

    def __bool__(self) -> bool:
        return len(self) > 0

    @property
    def is_full(self) -> bool:
        return len(self) >= self.capacity


class PieoList(OrderedList):
    """Ordered list supporting the PIEO "Extract-Out" primitive."""

    @abc.abstractmethod
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        """Dequeue the smallest-ranked *eligible* element ("Extract-Out").

        An element is eligible iff ``now >= element.send_time`` and, when
        ``group_range=(lo, hi)`` is given, ``lo <= element.group <= hi``
        (logical-PIEO extraction, Section 4.3).  Returns ``None`` when no
        eligible element exists.
        """

    @abc.abstractmethod
    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        """Like :meth:`dequeue` but non-destructive.

        Not a paper primitive; provided for simulators that need to know
        whether a dequeue would succeed without consuming the element.
        """

    @abc.abstractmethod
    def min_send_time(self) -> Time:
        """Smallest ``send_time`` among resident elements.

        Returns ``+inf`` when the list is empty.  Simulators use it to jump
        the clock to the next instant at which a dequeue can succeed.
        """
