"""The element type stored in PIEO / PIFO ordered lists.

An :class:`Element` corresponds to one entry of the paper's Rank-Sublist
(Fig. 5): a flow id, a programmable *rank*, and a *send_time* that encodes
the eligibility predicate ``current_time >= send_time`` (Section 5.2).

Two extensions from the paper are carried on the element as well:

* ``group`` — the logical-PIEO index used for hierarchical scheduling
  (Section 4.3).  A non-leaf node ``p`` extracts its logical PIEO from the
  shared physical PIEO by extending the eligibility predicate with
  ``p.start <= f.index <= p.end``; ``group`` is that index.
* ``payload`` — an opaque reference for callers (e.g. the flow object), not
  interpreted by the ordered list.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Hashable, Optional, Tuple, Union

Rank = Union[int, float]
Time = Union[int, float]

#: send_time encoding of a predicate that is always true (Section 5.2:
#: "Predicate that is always true is encoded by assigning send_time to 0").
ALWAYS_ELIGIBLE: Time = 0

#: send_time encoding of a predicate that is always false ("predicate that
#: is always false is encoded by assigning send_time to infinity").
NEVER_ELIGIBLE: Time = math.inf


@dataclass(slots=True)
class Element:
    """One entry of the ordered list.

    Parameters
    ----------
    flow_id:
        Identifier of the flow (or, in a hierarchy, of the child node) that
        this entry schedules.  At most one element per flow id may be
        resident in an ordered list at a time.
    rank:
        Programmable rank; the list is kept ordered by increasing rank.
    send_time:
        Eligibility encoding; the element is eligible at time ``t`` iff
        ``t >= send_time``.  Use :data:`ALWAYS_ELIGIBLE` /
        :data:`NEVER_ELIGIBLE` for constant predicates.
    group:
        Logical-PIEO index for hierarchical scheduling; ignored by flat
        schedulers.
    payload:
        Opaque user data.
    """

    flow_id: Hashable
    rank: Rank
    send_time: Time = ALWAYS_ELIGIBLE
    group: int = 0
    payload: Any = None

    #: Monotonic enqueue sequence number, assigned by the ordered list at
    #: enqueue time.  Used only to break rank ties in FIFO order
    #: (Section 3.1: "If there are multiple eligible elements with the same
    #: smallest rank value, then the element which was enqueued first is
    #: dequeued").
    seq: int = field(default=-1, compare=False)

    def __post_init__(self) -> None:
        if self.rank != self.rank:  # NaN check without importing math here
            raise ValueError("rank must not be NaN")
        if self.send_time != self.send_time:
            raise ValueError("send_time must not be NaN")

    def sort_key(self) -> Tuple[Rank, int]:
        """Total order used by the ordered list: rank, then arrival order."""
        return (self.rank, self.seq)

    def is_eligible(self, now: Time,
                    group_range: Optional[Tuple[int, int]] = None) -> bool:
        """Evaluate the eligibility predicate at time ``now``.

        ``group_range=(lo, hi)`` additionally requires
        ``lo <= self.group <= hi`` — the logical-PIEO extraction predicate
        of Section 4.3.
        """
        if now < self.send_time:
            return False
        if group_range is not None:
            lo, hi = group_range
            if not lo <= self.group <= hi:
                return False
        return True

    def copy(self) -> "Element":
        """Return a shallow copy (payload is shared)."""
        return Element(self.flow_id, self.rank, self.send_time,
                       self.group, self.payload, self.seq)
