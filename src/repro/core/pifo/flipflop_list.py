"""Cycle-accurate model of the PIFO baseline [Sivaraman et al. 2016].

PIFO stores the entire ordered list in flip-flops and associates a
comparator with every element, following the classic parallel
compare-and-shift architecture [Moon et al. 2000]:

* ``enqueue(f)``: one parallel compare over all N resident elements, a
  priority encode, and a single-cycle shift of the tail of the array —
  O(1) time, O(N) comparators and flip-flops;
* ``dequeue()``: pop the head — O(1) time.

This is the scalability baseline for Figs. 8 and 10: resource usage grows
linearly with N, which is what limits PIFO to ~1K elements on the paper's
FPGA (64% of ALMs at 1K).

Two variants are provided:

* :class:`PifoHardwareList` — the PIFO primitive itself (no eligibility
  filtering; dequeue always returns the overall head).
* :class:`PifoDesignPieoList` — the paper's footnote 7: the *PIEO
  primitive* implemented on PIFO's flip-flop design.  Predicates are
  evaluated in parallel in flip-flops in one clock cycle, so each
  primitive op still takes one cycle, but the comparator/flip-flop cost
  remains O(N).  Used by the expressiveness-vs-scalability trade-off
  benchmarks.
"""

from __future__ import annotations

import math
from typing import Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import OrderedList, PieoList
from repro.core.opstats import OpCounters
from repro.errors import CapacityError, DuplicateFlowError

#: Clock cycles per PIFO primitive operation (fully parallel design).
PIFO_CYCLES_PER_OP = 1


class _FlipFlopOrderedList(OrderedList):
    """Shared storage/accounting for the flip-flop based designs."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._items: List[Element] = []
        self._next_seq = 0
        self.counters = OpCounters()

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._items)

    def __contains__(self, flow_id: Hashable) -> bool:
        return any(item.flow_id == flow_id for item in self._items)

    def snapshot(self) -> List[Element]:
        return list(self._items)

    def enqueue(self, element: Element) -> None:
        """Parallel compare-and-shift insertion (one cycle)."""
        if len(self._items) >= self._capacity:
            raise CapacityError(f"PIFO full (capacity {self._capacity})")
        if element.flow_id in self:
            raise DuplicateFlowError(
                f"flow {element.flow_id!r} already resident")
        element.seq = self._next_seq
        self._next_seq += 1
        # One comparator per resident element fires simultaneously.
        self.counters.charge_compare(len(self._items))
        self.counters.charge_encode()
        position = self._insert_position(element.rank)
        # All elements to the right of the insert point shift by one.
        self.counters.flipflop_shifts += len(self._items) - position
        self._items.insert(position, element)
        self.counters.charge_op("enqueue", PIFO_CYCLES_PER_OP)

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        """Remove a specific element (parallel compare on flow id)."""
        self.counters.charge_compare(len(self._items))
        self.counters.charge_encode()
        for position, item in enumerate(self._items):
            if item.flow_id == flow_id:
                self.counters.flipflop_shifts += (
                    len(self._items) - position - 1)
                self.counters.charge_op("dequeue_flow", PIFO_CYCLES_PER_OP)
                return self._items.pop(position)
        self.counters.charge_op("dequeue_flow_null", PIFO_CYCLES_PER_OP)
        return None

    def _insert_position(self, rank: float) -> int:
        for position, item in enumerate(self._items):
            if item.rank > rank:
                return position
        return len(self._items)


class PifoHardwareList(_FlipFlopOrderedList):
    """The PIFO primitive: enqueue by rank, dequeue from the head."""

    def dequeue(self) -> Optional[Element]:
        """Extract the head ("smallest ranked") element, or None."""
        if not self._items:
            self.counters.charge_op("dequeue_null", PIFO_CYCLES_PER_OP)
            return None
        self.counters.flipflop_shifts += len(self._items) - 1
        self.counters.charge_op("dequeue", PIFO_CYCLES_PER_OP)
        return self._items.pop(0)

    def peek(self) -> Optional[Element]:
        return self._items[0] if self._items else None


class PifoDesignPieoList(_FlipFlopOrderedList, PieoList):
    """PIEO semantics on PIFO's O(N) flip-flop design (footnote 7).

    Every resident element's predicate is evaluated in parallel in one
    cycle, so the operation latency matches PIFO while the expressiveness
    matches PIEO.  The price is the O(N) comparator/flip-flop footprint,
    which is exactly the trade-off Section 6.2 discusses.
    """

    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        self.counters.charge_compare(len(self._items))
        self.counters.charge_encode()
        for position, item in enumerate(self._items):
            if item.is_eligible(now, group_range):
                self.counters.flipflop_shifts += (
                    len(self._items) - position - 1)
                self.counters.charge_op("dequeue", PIFO_CYCLES_PER_OP)
                return self._items.pop(position)
        self.counters.charge_op("dequeue_null", PIFO_CYCLES_PER_OP)
        return None

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        for item in self._items:
            if item.is_eligible(now, group_range):
                return item
        return None

    def min_send_time(self) -> Time:
        if not self._items:
            return math.inf
        return min(item.send_time for item in self._items)
