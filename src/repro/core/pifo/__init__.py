"""Cycle-accurate model of the PIFO baseline and its PIEO-capable variant."""

from repro.core.pifo.flipflop_list import (PIFO_CYCLES_PER_OP,
                                           PifoDesignPieoList,
                                           PifoHardwareList)

__all__ = [
    "PIFO_CYCLES_PER_OP",
    "PifoDesignPieoList",
    "PifoHardwareList",
]
