"""Fast software PIEO engine: exact semantics, no hardware accounting.

The reference oracle (:mod:`repro.core.reference`) pays a linear
eligibility scan on every ``dequeue`` and the cycle-accurate model
(:mod:`repro.core.pieo`) additionally pays per-operation cycle/SRAM
charging — both are wasteful when a big simulation only needs the
*meaning* of the ordered list.  :class:`FastPieo` is that meaning, made
fast in software:

* elements live in **rank-ordered chunks** (a classic unrolled sorted
  list), so ``enqueue`` is a bisect into one small chunk instead of an
  insert into one big array;
* each chunk keeps a ``min_send`` summary — the smallest ``send_time``
  of its residents — mirroring the hardware's per-sublist
  ``smallest_send_time``; ``dequeue(now)`` skips whole chunks whose
  summary proves nothing in them is eligible and only scans inside the
  first chunk that can win;
* ``dequeue(f)`` routes by the element's ``(rank, seq)`` key through two
  bisects, never a search.

Semantics are bit-for-bit those of :class:`repro.core.reference
.ReferencePieo` (the differential property suite enforces this): FIFO
tie-break on equal ranks, NULL returns, ``dequeue(f)`` ignoring
eligibility, and the ``group_range`` logical-PIEO filter of Section 4.3.
No :class:`~repro.core.opstats.OpCounters` charging happens anywhere on
these paths — accounting belongs to the hardware models (see
:mod:`repro.core.instrumentation`).
"""

from __future__ import annotations

import math
from bisect import bisect_left
from typing import Dict, Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.errors import CapacityError, DuplicateFlowError

#: Default soft chunk size; chunks split at twice this.  Around sqrt(N)
#: for the simulation sizes this backend targets (1k-100k elements), and
#: small enough that an in-chunk scan stays cheap.
DEFAULT_CHUNK_SIZE = 64


class _Chunk:
    """One run of the rank order: parallel sorted keys/items, a plain
    float list of send times (so eligibility scans and min recomputes
    stay attribute-access free), and the min-send-time summary."""

    __slots__ = ("keys", "items", "sends", "min_send")

    def __init__(self, keys: List[Tuple], items: List[Element],
                 sends: List[Time]) -> None:
        self.keys = keys
        self.items = items
        self.sends = sends
        self.min_send = min(sends) if sends else math.inf


class FastPieo(PieoList):
    """Index-accelerated software PIEO ordered list.

    Parameters
    ----------
    capacity:
        Maximum number of resident elements; ``None`` (default) means
        unbounded, for pure-software use.
    chunk_size:
        Soft chunk length.  Smaller chunks cheapen in-chunk scans and
        inserts; larger chunks cheapen the cross-chunk summary walk.
    """

    def __init__(self, capacity: Optional[int] = None,
                 chunk_size: int = DEFAULT_CHUNK_SIZE) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive")
        if chunk_size < 2:
            raise ValueError("chunk_size must be >= 2")
        self._capacity = capacity
        self._chunk_size = chunk_size
        self._chunks: List[_Chunk] = []
        self._tails: List[Tuple] = []  # last (rank, seq) key per chunk
        self._resident: Dict[Hashable, Element] = {}
        self._next_seq = 0

    # ------------------------------------------------------------------
    # OrderedList interface
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        if self._capacity is None:
            return int(2 ** 62)
        return self._capacity

    def __len__(self) -> int:
        return len(self._resident)

    def __contains__(self, flow_id: Hashable) -> bool:
        return flow_id in self._resident

    def find(self, flow_id: Hashable) -> Optional[Element]:
        return self._resident.get(flow_id)

    def snapshot(self) -> List[Element]:
        elements: List[Element] = []
        for chunk in self._chunks:
            elements.extend(chunk.items)
        return elements

    def enqueue(self, element: Element) -> None:
        if (self._capacity is not None
                and len(self._resident) >= self._capacity):
            raise CapacityError(f"FastPieo full (capacity {self._capacity})")
        if element.flow_id in self._resident:
            raise DuplicateFlowError(
                f"flow {element.flow_id!r} already resident")
        element.seq = self._next_seq
        self._next_seq += 1
        key = element.sort_key()
        if not self._chunks:
            self._chunks.append(_Chunk([key], [element],
                                       [element.send_time]))
            self._tails.append(key)
        else:
            index = bisect_left(self._tails, key)
            if index == len(self._chunks):
                index -= 1  # beyond every tail: append to the last chunk
            chunk = self._chunks[index]
            position = bisect_left(chunk.keys, key)
            chunk.keys.insert(position, key)
            chunk.items.insert(position, element)
            chunk.sends.insert(position, element.send_time)
            if element.send_time < chunk.min_send:
                chunk.min_send = element.send_time
            if position == len(chunk.keys) - 1:
                self._tails[index] = key
            if len(chunk.keys) >= 2 * self._chunk_size:
                self._split(index)
        self._resident[element.flow_id] = element

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        element = self._resident.get(flow_id)
        if element is None:
            return None
        index, position = self._locate(element)
        return self._pop(index, position)

    # ------------------------------------------------------------------
    # PieoList interface
    # ------------------------------------------------------------------
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        found = self._first_eligible(now, group_range)
        if found is None:
            return None
        index, position = found
        return self._pop(index, position)

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        found = self._first_eligible(now, group_range)
        if found is None:
            return None
        index, position = found
        return self._chunks[index].items[position]

    def min_send_time(self) -> Time:
        smallest = math.inf
        for chunk in self._chunks:
            if chunk.min_send < smallest:
                smallest = chunk.min_send
        return smallest

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _first_eligible(self, now: Time,
                        group_range: Optional[Tuple[int, int]],
                        ) -> Optional[Tuple[int, int]]:
        """(chunk index, in-chunk position) of the smallest-keyed eligible
        element.  Chunks are disjoint ranges of the total (rank, seq)
        order, so the first chunk containing any eligible element
        contains *the* winner."""
        if group_range is None:
            for index, chunk in enumerate(self._chunks):
                if chunk.min_send > now:
                    continue
                for position, send in enumerate(chunk.sends):
                    if send <= now:
                        return index, position
            return None
        lo, hi = group_range
        for index, chunk in enumerate(self._chunks):
            if chunk.min_send > now:
                continue
            items = chunk.items
            for position, send in enumerate(chunk.sends):
                if send <= now and lo <= items[position].group <= hi:
                    return index, position
        return None

    def _locate(self, element: Element) -> Tuple[int, int]:
        """Route a resident element to (chunk index, position) through its
        unique (rank, seq) key."""
        key = element.sort_key()
        index = bisect_left(self._tails, key)
        chunk = self._chunks[index]
        position = bisect_left(chunk.keys, key)
        return index, position

    def _pop(self, index: int, position: int) -> Element:
        chunk = self._chunks[index]
        element = chunk.items.pop(position)
        chunk.keys.pop(position)
        send = chunk.sends.pop(position)
        del self._resident[element.flow_id]
        if not chunk.items:
            del self._chunks[index]
            del self._tails[index]
        else:
            if position == len(chunk.keys):
                self._tails[index] = chunk.keys[-1]
            if send <= chunk.min_send:
                chunk.min_send = min(chunk.sends)
        return element

    def _split(self, index: int) -> None:
        chunk = self._chunks[index]
        middle = len(chunk.keys) // 2
        right = _Chunk(chunk.keys[middle:], chunk.items[middle:],
                       chunk.sends[middle:])
        del chunk.keys[middle:]
        del chunk.items[middle:]
        del chunk.sends[middle:]
        chunk.min_send = min(chunk.sends)
        self._chunks.insert(index + 1, right)
        self._tails[index] = chunk.keys[-1]
        self._tails.insert(index + 1, right.keys[-1])
