"""Eligibility-predicate encodings.

Section 3.1 restricts the complexity of predicates so the hardware can
evaluate them in parallel in one cycle: "for most packet scheduling
algorithms, the predicate usually takes the form (t_current >= t_eligible)".
Section 5.2 encodes it as a single ``send_time`` value per element, and
Section 8 notes the implementation "can be naturally extended to support
predicates of the form a <= key <= b".

This module provides small predicate objects covering exactly those forms,
each of which *compiles* to the per-element encoding the hardware stores:

* :class:`TimePredicate`      -> a ``send_time`` value
* :class:`AlwaysTrue` / :class:`AlwaysFalse` -> send_time 0 / infinity
* :class:`GroupRangePredicate`-> a dequeue-side ``(lo, hi)`` group filter,
  used for logical-PIEO extraction in hierarchical scheduling (Section 4.3)
  and for range filtering in the dictionary ADT (Section 8).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.core.element import ALWAYS_ELIGIBLE, NEVER_ELIGIBLE, Time


@dataclass(frozen=True)
class TimePredicate:
    """The canonical predicate ``t_current >= send_time``."""

    send_time: Time

    def __call__(self, now: Time) -> bool:
        return now >= self.send_time

    def encode(self) -> Time:
        """Return the ``send_time`` the hardware stores for this predicate."""
        return self.send_time


class AlwaysTrue(TimePredicate):
    """Predicate that is always true (send_time = 0)."""

    def __init__(self) -> None:
        super().__init__(ALWAYS_ELIGIBLE)


class AlwaysFalse(TimePredicate):
    """Predicate that is always false (send_time = infinity)."""

    def __init__(self) -> None:
        super().__init__(NEVER_ELIGIBLE)


@dataclass(frozen=True)
class GroupRangePredicate:
    """Dequeue-side filter ``lo <= element.group <= hi``.

    In hierarchical scheduling (Section 4.3) a non-leaf node ``p`` owns the
    contiguous index range ``[p.start, p.end]`` of the shared physical PIEO;
    passing this predicate to ``dequeue`` extracts ``p``'s logical PIEO.
    """

    lo: int
    hi: int

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(
                f"empty group range [{self.lo}, {self.hi}]")

    def __call__(self, group: int) -> bool:
        return self.lo <= group <= self.hi

    def as_tuple(self) -> Tuple[int, int]:
        return (self.lo, self.hi)


def encode_send_time(predicate: Optional[TimePredicate]) -> Time:
    """Compile an optional time predicate to its send_time encoding.

    ``None`` means "always eligible" and encodes to 0, matching the default
    behaviour of the programming framework (Section 3.2.1).
    """
    if predicate is None:
        return ALWAYS_ELIGIBLE
    return predicate.encode()


def is_never(send_time: Time) -> bool:
    """True if the encoded predicate can never become true."""
    return math.isinf(send_time) and send_time > 0
