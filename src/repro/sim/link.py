"""Output-link model.

Models the wire of Fig. 1: a fixed-rate serial link that is either idle or
transmitting one packet.  The transmit engine asks the scheduler for the
next packet exactly when the link goes idle ("triggered whenever the link
is idle", Fig. 3).
"""

from __future__ import annotations

from repro.obs.scope import NULL_TRACER
from repro.sim.packet import Packet

GBPS = 1e9


class Link:
    """A fixed-rate transmission link.

    ``tracer`` observes serialization: one ``link_busy`` event per packet
    accepted onto the wire (with its finish time); the transmit engine
    emits the matching ``link_idle`` when a batch completes.
    """

    def __init__(self, rate_bps: float, tracer=None) -> None:
        if rate_bps <= 0:
            raise ValueError("link rate must be positive")
        self.rate_bps = rate_bps
        self.busy_until = 0.0
        self.bytes_sent = 0
        self.packets_sent = 0
        self.busy_time = 0.0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self._traced = self.tracer is not NULL_TRACER

    def transmission_time(self, packet: Packet) -> float:
        """Serialization delay of ``packet`` in seconds."""
        return packet.size_bits / self.rate_bps

    def is_idle(self, now: float) -> bool:
        return now >= self.busy_until

    def transmit(self, packet: Packet, now: float) -> float:
        """Start transmitting ``packet`` at ``now``; returns finish time."""
        if now < self.busy_until:
            raise RuntimeError(
                f"link busy until {self.busy_until}, cannot transmit at "
                f"{now}")
        duration = packet.size_bits / self.rate_bps
        finish = now + duration
        self.busy_until = finish
        self.bytes_sent += packet.size_bytes
        self.packets_sent += 1
        self.busy_time += duration
        if self._traced:
            self.tracer.link_busy(now, until=finish,
                                  flow_id=packet.flow_id)
        return finish

    def utilization(self, elapsed: float) -> float:
        """Fraction of ``elapsed`` seconds the link spent transmitting."""
        if elapsed <= 0:
            return 0.0
        return min(1.0, self.busy_time / elapsed)


def gbps(value: float) -> float:
    """Convenience: convert Gbit/s to bit/s."""
    return value * GBPS
