"""Transmission recording and measurement.

The evaluation (Section 6.3) measures how accurately the scheduler
enforces policies: achieved rate per node (Fig. 11) and per-flow shares
within a node (Fig. 12).  The recorder captures every departure and
derives those measurements.
"""

from __future__ import annotations

from collections import defaultdict
from typing import (Callable, Dict, Hashable, List, NamedTuple, Optional,
                    Sequence)


class Departure(NamedTuple):
    """One packet leaving on the wire.

    A named tuple rather than a dataclass: one is built per transmitted
    packet, and frozen-dataclass construction (``object.__setattr__``
    per field) is measurable in simulation profiles.
    """

    time: float
    flow_id: Hashable
    size_bytes: int
    packet_id: int


class Recorder:
    """Collects departures and computes rates/shares/orderings."""

    def __init__(self) -> None:
        self.departures: List[Departure] = []

    def record(self, time: float, flow_id: Hashable, size_bytes: int,
               packet_id: int) -> None:
        self.departures.append(
            Departure(time, flow_id, size_bytes, packet_id))

    # -- basic views ------------------------------------------------------
    def __len__(self) -> int:
        return len(self.departures)

    def order(self) -> List[Hashable]:
        """Flow ids in departure order (used by the Fig. 2 experiments)."""
        return [departure.flow_id for departure in self.departures]

    def bytes_by_flow(self, start: float = 0.0,
                      end: float = float("inf")) -> Dict[Hashable, int]:
        totals: Dict[Hashable, int] = defaultdict(int)
        for departure in self.departures:
            if start <= departure.time < end:
                totals[departure.flow_id] += departure.size_bytes
        return dict(totals)

    # -- rate measurements --------------------------------------------------
    def rate_bps(self, flow_ids: Optional[Sequence[Hashable]] = None,
                 start: float = 0.0, end: Optional[float] = None,
                 key: Optional[Callable[[Hashable], Hashable]] = None,
                 ) -> Dict[Hashable, float]:
        """Achieved rate in bits/s per flow (or per ``key(flow_id)``
        aggregate) over the window ``[start, end)``."""
        if end is None:
            end = self.departures[-1].time if self.departures else start
        window = end - start
        if window <= 0:
            return {}
        wanted = set(flow_ids) if flow_ids is not None else None
        totals: Dict[Hashable, float] = defaultdict(float)
        for departure in self.departures:
            if not start <= departure.time < end:
                continue
            if wanted is not None and departure.flow_id not in wanted:
                continue
            bucket = key(departure.flow_id) if key else departure.flow_id
            totals[bucket] += departure.size_bytes * 8
        return {bucket: bits / window for bucket, bits in totals.items()}

    def aggregate_rate_bps(self, start: float = 0.0,
                           end: Optional[float] = None) -> float:
        rates = self.rate_bps(start=start, end=end, key=lambda _fid: "all")
        return rates.get("all", 0.0)

    def rate_timeseries(self, bucket_seconds: float,
                        key: Optional[Callable[[Hashable], Hashable]] = None,
                        ) -> Dict[Hashable, List[float]]:
        """Per-bucket achieved rate series, for pacing-accuracy plots."""
        if not self.departures:
            return {}
        horizon = self.departures[-1].time
        buckets = int(horizon / bucket_seconds) + 1
        series: Dict[Hashable, List[float]] = defaultdict(
            lambda: [0.0] * buckets)
        for departure in self.departures:
            index = int(departure.time / bucket_seconds)
            bucket = key(departure.flow_id) if key else departure.flow_id
            series[bucket][index] += departure.size_bytes * 8
        return {
            name: [bits / bucket_seconds for bits in values]
            for name, values in series.items()
        }

    def interdeparture_times(self, flow_id: Hashable) -> List[float]:
        """Gaps between consecutive departures of one flow (pacing)."""
        times = [departure.time for departure in self.departures
                 if departure.flow_id == flow_id]
        return [after - before for before, after in zip(times, times[1:])]
