"""Minimal deterministic discrete-event simulator.

Time is a float (seconds).  Events scheduled for the same instant fire in
scheduling order, which keeps runs fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple

from repro.errors import SimulationError
from repro.obs.scope import NULL_TRACER

EventCallback = Callable[[], None]


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancel."""

    __slots__ = ("time", "cancelled", "event_id", "tracer")

    def __init__(self, time: float, event_id: int = -1,
                 tracer=NULL_TRACER) -> None:
        self.time = time
        self.cancelled = False
        self.event_id = event_id
        self.tracer = tracer

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            self.tracer.timer_cancel(self.time, self.event_id,
                                     scope="sim")


class Simulator:
    """Event loop with absolute-time scheduling.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) observes the timer
    lifecycle: every scheduled event emits ``timer_arm``, and exactly one
    of ``timer_fire`` (dispatched) or ``timer_cancel`` (cancelled via its
    handle) follows — events still pending when the run stops emit
    neither.  The default is the shared null tracer.
    """

    def __init__(self, tracer=None) -> None:
        self.now = 0.0
        self._heap: List[Tuple[float, int, EventHandle, EventCallback]] = []
        self._seq = itertools.count()
        self.events_fired = 0
        self.tracer = tracer if tracer is not None else NULL_TRACER

    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}")
        seq = next(self._seq)
        handle = EventHandle(time, event_id=seq, tracer=self.tracer)
        self.tracer.timer_arm(self.now, seq, deadline=time, scope="sim")
        heapq.heappush(self._heap, (time, seq, handle, callback))
        return handle

    def schedule_in(self, delay: float,
                    callback: EventCallback) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    def peek_next_time(self) -> Optional[float]:
        while self._heap and self._heap[0][2].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0][0] if self._heap else None

    def step(self) -> bool:
        """Fire the next pending event; False when none remain."""
        while self._heap:
            time, seq, handle, callback = heapq.heappop(self._heap)
            if handle.cancelled:
                continue
            self.now = time
            self.events_fired += 1
            self.tracer.timer_fire(time, seq, scope="sim")
            callback()
            return True
        return False

    def run_until(self, end_time: float,
                  max_events: Optional[int] = None) -> None:
        """Fire events until the queue drains or ``end_time`` is reached.

        The clock is left at ``end_time`` (or at the last event if the
        queue drained first and that is earlier).
        """
        fired = 0
        while True:
            next_time = self.peek_next_time()
            if next_time is None or next_time > end_time:
                break
            self.step()
            fired += 1
            if max_events is not None and fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events} before t={end_time}; "
                    "likely a scheduling livelock")
        if self.now < end_time:
            self.now = end_time

    def run(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue completely."""
        fired = 0
        while self.step():
            fired += 1
            if fired >= max_events:
                raise SimulationError(
                    f"exceeded max_events={max_events}; likely a livelock")
