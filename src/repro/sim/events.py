"""Minimal deterministic discrete-event simulator.

Time is a float (seconds).  Events scheduled for the same instant fire in
scheduling order, which keeps runs fully deterministic.

The pending-event set lives behind a small :class:`EventQueue` interface
with a registry mirroring :mod:`repro.core.backends`:

``reference``
    The original ``heapq`` binary heap.  Entries are ``(time, seq,
    handle, callback)`` tuples so same-instant events pop in scheduling
    order.

``calendar``
    A calendar queue: events are hashed into fixed-width time buckets
    (``slot = floor(time / bucket_width)``) kept in a dict, with a small
    heap of active slot ids.  Each bucket is itself a tiny heap keyed by
    ``(time, seq)``.  Because the slot index is monotone in time, the
    global minimum always lives in the minimum active slot, so firing
    order — including same-instant ties — is identical to the reference.

Both backends cancel lazily: :meth:`EventHandle.cancel` marks the handle
and the entry is discarded when it surfaces.  To keep the resident set
bounded under heavy cancel churn (retry timers), a queue compacts — i.e.
rebuilds without dead entries — once more than half its resident entries
are cancelled (with a small absolute floor so tiny queues never bother).
"""

from __future__ import annotations

import heapq
import itertools
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.obs.scope import NULL_METRICS, NULL_TRACER

EventCallback = Callable[[], None]

#: Queue entry: (time, seq, handle, callback).
EventEntry = Tuple[float, int, "EventHandle", EventCallback]

#: Compaction triggers when cancelled entries exceed this count AND make
#: up more than half of the resident set.
COMPACT_MIN_CANCELLED = 64


class EventHandle:
    """Handle returned by :meth:`Simulator.schedule`; supports cancel."""

    __slots__ = ("time", "cancelled", "event_id", "tracer", "sim", "fired")

    def __init__(self, time: float, event_id: int = -1,
                 tracer=NULL_TRACER, sim=None) -> None:
        self.time = time
        self.cancelled = False
        self.event_id = event_id
        self.tracer = tracer
        self.sim = sim
        self.fired = False

    def cancel(self) -> None:
        if not self.cancelled:
            self.cancelled = True
            if not self.fired and self.sim is not None:
                self.sim._note_cancel()
            # Stamp the cancel at the *current* sim time (the instant it
            # happens); the armed deadline rides along as a field.  The
            # deadline is usually in the future, and stamping it as the
            # event time makes traced streams non-monotonic.
            now = self.sim.now if self.sim is not None else self.time
            self.tracer.timer_cancel(now, self.event_id,
                                     scope="sim", deadline=self.time)


# ----------------------------------------------------------------------
# Event-queue backends
# ----------------------------------------------------------------------
class EventQueue:
    """Ordered set of pending events.

    Entries are ``(time, seq, handle, callback)`` tuples; the queue must
    surface them in ``(time, seq)`` order.  Cancellation is lazy: the
    simulator calls :meth:`note_cancel` when a resident entry's handle is
    cancelled, and the queue discards dead entries when they surface or
    during :meth:`compact`.
    """

    name = "abstract"

    def push(self, entry: EventEntry) -> None:
        raise NotImplementedError

    def pop(self) -> Optional[EventEntry]:
        """Remove and return the next live entry, or None when empty."""
        raise NotImplementedError

    def peek_time(self) -> Optional[float]:
        """Time of the next live entry, or None when empty."""
        raise NotImplementedError

    def __len__(self) -> int:
        """Number of live (non-cancelled) resident entries."""
        raise NotImplementedError

    @property
    def resident(self) -> int:
        """Total resident entries, including cancelled ones."""
        raise NotImplementedError

    @property
    def cancelled(self) -> int:
        """Cancelled entries still occupying space."""
        raise NotImplementedError

    def note_cancel(self) -> None:
        """A resident entry's handle was cancelled."""
        raise NotImplementedError

    def compact(self) -> None:
        """Rebuild without cancelled entries."""
        raise NotImplementedError


class HeapEventQueue(EventQueue):
    """The reference backend: one ``heapq`` binary heap."""

    name = "reference"

    __slots__ = ("_heap", "_cancelled")

    def __init__(self) -> None:
        self._heap: List[EventEntry] = []
        self._cancelled = 0

    def push(self, entry: EventEntry) -> None:
        heapq.heappush(self._heap, entry)

    def pop(self) -> Optional[EventEntry]:
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            if entry[2].cancelled:
                self._cancelled -= 1
                continue
            return entry
        return None

    def peek_time(self) -> Optional[float]:
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1
        return heap[0][0] if heap else None

    def __len__(self) -> int:
        return len(self._heap) - self._cancelled

    @property
    def resident(self) -> int:
        return len(self._heap)

    @property
    def cancelled(self) -> int:
        return self._cancelled

    def note_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled > COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > len(self._heap)):
            self.compact()

    def compact(self) -> None:
        self._heap = [e for e in self._heap if not e[2].cancelled]
        heapq.heapify(self._heap)
        self._cancelled = 0


class CalendarEventQueue(EventQueue):
    """Calendar-queue backend: dict of fixed-width time buckets.

    ``bucket_width`` is the slot granularity in seconds; the default of
    one microsecond is a few packet times at the 40 Gbps link rates the
    experiments use, so same-bucket heaps stay tiny while the slot heap
    stays far smaller than the event count.
    """

    name = "calendar"

    __slots__ = ("_width", "_buckets", "_slot_heap", "_active",
                 "_resident", "_cancelled")

    #: Slot index cap: guards ``int(inf / width)`` overflow for events
    #: scheduled arbitrarily far out.
    MAX_SLOT = 2 ** 62

    def __init__(self, bucket_width: float = 1e-6) -> None:
        if not (bucket_width > 0) or math.isinf(bucket_width):
            raise ConfigurationError(
                f"bucket_width must be a positive finite float, "
                f"got {bucket_width!r}")
        self._width = bucket_width
        self._buckets: Dict[int, List[EventEntry]] = {}
        self._slot_heap: List[int] = []
        self._active: set = set()
        self._resident = 0
        self._cancelled = 0

    def _slot(self, time: float) -> int:
        if time >= self._width * self.MAX_SLOT:
            return self.MAX_SLOT
        return int(time / self._width)

    def push(self, entry: EventEntry) -> None:
        slot = self._slot(entry[0])
        bucket = self._buckets.get(slot)
        if bucket is None:
            self._buckets[slot] = [entry]
            self._active.add(slot)
            heapq.heappush(self._slot_heap, slot)
        else:
            heapq.heappush(bucket, entry)
        self._resident += 1

    def _min_bucket(self) -> Optional[List[EventEntry]]:
        """Bucket holding the global minimum live entry, cancelled
        entries pruned from its front; None when the queue is empty."""
        slot_heap = self._slot_heap
        buckets = self._buckets
        while slot_heap:
            slot = slot_heap[0]
            bucket = buckets.get(slot)
            if bucket:
                while bucket and bucket[0][2].cancelled:
                    heapq.heappop(bucket)
                    self._resident -= 1
                    self._cancelled -= 1
                if bucket:
                    return bucket
            heapq.heappop(slot_heap)
            self._active.discard(slot)
            buckets.pop(slot, None)
        return None

    def pop(self) -> Optional[EventEntry]:
        bucket = self._min_bucket()
        if bucket is None:
            return None
        entry = heapq.heappop(bucket)
        self._resident -= 1
        return entry

    def peek_time(self) -> Optional[float]:
        bucket = self._min_bucket()
        return bucket[0][0] if bucket else None

    def __len__(self) -> int:
        return self._resident - self._cancelled

    @property
    def resident(self) -> int:
        return self._resident

    @property
    def cancelled(self) -> int:
        return self._cancelled

    def note_cancel(self) -> None:
        self._cancelled += 1
        if (self._cancelled > COMPACT_MIN_CANCELLED
                and self._cancelled * 2 > self._resident):
            self.compact()

    def compact(self) -> None:
        live = [e for bucket in self._buckets.values()
                for e in bucket if not e[2].cancelled]
        self._buckets.clear()
        self._slot_heap.clear()
        self._active.clear()
        self._resident = 0
        self._cancelled = 0
        for entry in live:
            self.push(entry)


# ----------------------------------------------------------------------
# Backend registry (mirrors repro.core.backends)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class EventQueueSpec:
    """Registry entry for an event-queue backend."""

    name: str
    factory: Callable[..., EventQueue]
    description: str = ""


_EVENT_QUEUES: Dict[str, EventQueueSpec] = {}


def register_event_queue(name: str, factory: Callable[..., EventQueue],
                         description: str = "",
                         overwrite: bool = False) -> EventQueueSpec:
    """Register an event-queue backend under ``name``."""
    if name in _EVENT_QUEUES and not overwrite:
        raise ConfigurationError(
            f"event queue {name!r} already registered "
            f"(pass overwrite=True to replace)")
    spec = EventQueueSpec(name=name, factory=factory,
                          description=description)
    _EVENT_QUEUES[name] = spec
    return spec


def available_event_queues() -> List[str]:
    return sorted(_EVENT_QUEUES)


def get_event_queue(name: str) -> EventQueueSpec:
    try:
        return _EVENT_QUEUES[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown event queue {name!r}; available: "
            f"{', '.join(available_event_queues())}") from None


def make_event_queue(name: str, **config) -> EventQueue:
    """Instantiate a registered backend (``config`` goes to its factory)."""
    return get_event_queue(name).factory(**config)


register_event_queue(
    "reference", HeapEventQueue,
    description="heapq binary heap (the original backend)")
register_event_queue(
    "calendar", CalendarEventQueue,
    description="calendar queue: fixed-width time buckets with lazy "
                "cancellation and compaction")


# ----------------------------------------------------------------------
# Simulator
# ----------------------------------------------------------------------
class Simulator:
    """Event loop with absolute-time scheduling.

    ``tracer`` (a :class:`repro.obs.trace.Tracer`) observes the timer
    lifecycle: every scheduled event emits ``timer_arm``, and exactly one
    of ``timer_fire`` (dispatched) or ``timer_cancel`` (cancelled via its
    handle) follows — events still pending when the run stops emit
    neither.  The default is the shared null tracer.

    ``metrics`` (a :class:`repro.obs.metrics.MetricsRegistry`) exposes
    ``sim.pending_events`` / ``sim.cancelled_events`` gauges tracking the
    live and cancelled-but-resident event populations (updated on every
    schedule/cancel/fire, so the gauge watermarks bound the queue's
    footprint over the whole run).

    ``queue`` selects the pending-event backend: a registered name
    (``"reference"``, ``"calendar"``) or an :class:`EventQueue` instance;
    ``queue_config`` passes keyword options to the named backend's
    factory (e.g. ``{"bucket_width": 1e-7}``).  All backends fire events
    in identical order, so results are bit-identical across them.
    """

    def __init__(self, tracer=None, metrics=None,
                 queue: "str | EventQueue" = "reference",
                 queue_config: Optional[dict] = None) -> None:
        self.now = 0.0
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        if isinstance(queue, str):
            self._queue = make_event_queue(queue, **(queue_config or {}))
        else:
            if queue_config:
                raise ConfigurationError(
                    "queue_config only applies when queue is a name")
            self._queue = queue
        self.queue_name = getattr(self._queue, "name",
                                  type(self._queue).__name__)
        self._seq = itertools.count()
        self.events_fired = 0
        # Fast-forward window for Simulator.advance_to (set by run/
        # run_until while they are draining).
        self._horizon: Optional[float] = None
        self._budget: Optional[int] = None
        # Registered clock consumers (transmit engines). advance_to is
        # only sound while a single consumer can fast-forward the clock;
        # with two engines, one engine's jump would skip past the
        # other's in-flight transmissions.
        self._clock_consumers = 0
        self._traced = self.tracer is not NULL_TRACER
        self._metered = self.metrics is not NULL_METRICS
        if self._metered:
            self._g_pending = self.metrics.gauge("sim.pending_events")
            self._g_cancelled = self.metrics.gauge("sim.cancelled_events")

    # -- gauges --------------------------------------------------------
    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events currently resident."""
        return len(self._queue)

    @property
    def cancelled_events(self) -> int:
        """Cancelled events still occupying queue space."""
        return self._queue.cancelled

    def _update_gauges(self) -> None:
        queue = self._queue
        self._g_pending.set(len(queue))
        self._g_cancelled.set(queue.cancelled)

    def _note_cancel(self) -> None:
        """Called by :meth:`EventHandle.cancel` for resident entries."""
        self._queue.note_cancel()
        if self._metered:
            self._update_gauges()

    # -- scheduling ----------------------------------------------------
    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Run ``callback`` at absolute ``time`` (>= now)."""
        if time < self.now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self.now}")
        seq = next(self._seq)
        handle = EventHandle(time, event_id=seq, tracer=self.tracer,
                             sim=self)
        if self._traced:
            self.tracer.timer_arm(self.now, seq, deadline=time, scope="sim")
        self._queue.push((time, seq, handle, callback))
        if self._metered:
            self._update_gauges()
        return handle

    def schedule_in(self, delay: float,
                    callback: EventCallback) -> EventHandle:
        """Run ``callback`` after ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        return self.schedule(self.now + delay, callback)

    def peek_next_time(self) -> Optional[float]:
        return self._queue.peek_time()

    # -- dispatch ------------------------------------------------------
    def step(self) -> bool:
        """Fire the next pending event; False when none remain."""
        entry = self._queue.pop()
        if entry is None:
            return False
        time, seq, handle, callback = entry
        handle.fired = True
        self.now = time
        self.events_fired += 1
        if self._traced:
            self.tracer.timer_fire(time, seq, scope="sim")
        if self._metered:
            self._update_gauges()
        callback()
        return True

    def register_clock_consumer(self) -> None:
        """Declare a component that may call :meth:`advance_to`.

        Transmit engines register themselves at construction.  While
        more than one consumer is registered, every :meth:`advance_to`
        is refused and callers fall back to their event-driven paths,
        which serialize correctly through the shared queue.
        """
        self._clock_consumers += 1

    def advance_to(self, time: float) -> bool:
        """Fast-forward the clock to ``time`` from inside a callback.

        Sanctioned for the transmit engine's drain loop: lets one event
        callback play the role of a chain of timer events, provided that
        is indistinguishable from dispatching them individually.  The
        advance is refused (returns False, clock untouched) unless a run
        is active (``run``/``run_until`` set the horizon), ``time`` is
        within the horizon, the event budget has room, no pending event
        fires at or before ``time``, and at most one clock consumer is
        registered (two engines sharing a simulator must serialize
        through the event queue, not jump past each other).  A
        successful advance counts against ``events_fired`` exactly like
        the timer event it replaces, so livelock guards keep their
        meaning.
        """
        if self._clock_consumers > 1:
            return False
        horizon = self._horizon
        if horizon is None or time > horizon or time < self.now:
            return False
        budget = self._budget
        if budget is not None and self.events_fired >= budget:
            return False
        next_time = self._queue.peek_time()
        if next_time is not None and next_time <= time:
            return False
        self.now = time
        self.events_fired += 1
        return True

    def run_until(self, end_time: float,
                  max_events: Optional[int] = None) -> None:
        """Fire events until the queue drains or ``end_time`` is reached.

        The clock is left at ``end_time`` (or at the last event if the
        queue drained first and that is earlier).
        """
        prev_horizon, prev_budget = self._horizon, self._budget
        self._horizon = end_time
        budget = (None if max_events is None
                  else self.events_fired + max_events)
        self._budget = budget
        queue = self._queue
        try:
            while True:
                next_time = queue.peek_time()
                if next_time is None or next_time > end_time:
                    break
                if budget is not None and self.events_fired >= budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events} before "
                        f"t={end_time}; likely a scheduling livelock")
                self.step()
        finally:
            self._horizon, self._budget = prev_horizon, prev_budget
        if self.now < end_time:
            self.now = end_time

    def run(self, max_events: int = 10_000_000) -> None:
        """Drain the event queue completely."""
        prev_horizon, prev_budget = self._horizon, self._budget
        self._horizon = math.inf
        budget = (None if max_events is None
                  else self.events_fired + max_events)
        self._budget = budget
        try:
            while True:
                if not self.step():
                    break
                if budget is not None and self.events_fired >= budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; "
                        "likely a livelock")
        finally:
            self._horizon, self._budget = prev_horizon, prev_budget
