"""Traffic generators.

The paper's prototype implements "packet generators, one per flow, on the
FPGA to simulate the flows" (Section 6.3).  These are their software
equivalents; each generator injects packets into a flow queue through a
callback supplied by the transmit engine, so arrival handling (and the
framework's pre-enqueue trigger) stays in one place.
"""

from __future__ import annotations

import random
from typing import Callable, Hashable, Optional

from repro.sim.events import Simulator
from repro.sim.packet import MTU_BYTES, Packet

#: Signature used to hand a packet to the scheduler/engine.
ArrivalSink = Callable[[Hashable, Packet], None]


class PacketGenerator:
    """Base class: generates packets for one flow until ``end_time``."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf")) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.sink = sink
        self.size_bytes = size_bytes
        self.end_time = end_time
        self.packets_generated = 0

    def start(self, at: Optional[float] = None) -> None:
        self.sim.schedule(self.sim.now if at is None else at, self._fire)

    def _fire(self) -> None:
        if self.sim.now >= self.end_time:
            return
        self._emit()
        delay = self.next_interarrival()
        if delay is not None:
            self.sim.schedule_in(delay, self._fire)

    def _emit(self) -> None:
        packet = Packet(flow_id=self.flow_id, size_bytes=self.size_bytes,
                        arrival_time=self.sim.now)
        self.packets_generated += 1
        self.sink(self.flow_id, packet)

    def next_interarrival(self) -> Optional[float]:
        raise NotImplementedError


class CbrGenerator(PacketGenerator):
    """Constant-bit-rate arrivals at ``rate_bps``."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 rate_bps: float, size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf")) -> None:
        super().__init__(sim, flow_id, sink, size_bytes, end_time)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps

    def next_interarrival(self) -> float:
        return self.size_bytes * 8 / self.rate_bps


class PoissonGenerator(PacketGenerator):
    """Poisson arrivals with mean rate ``rate_bps``."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 rate_bps: float, size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf"),
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(sim, flow_id, sink, size_bytes, end_time)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self.rng = rng or random.Random(0)

    def next_interarrival(self) -> float:
        mean = self.size_bytes * 8 / self.rate_bps
        return self.rng.expovariate(1.0 / mean)


class OnOffGenerator(PacketGenerator):
    """Bursty on/off traffic: CBR at ``peak_rate_bps`` during on-periods."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 peak_rate_bps: float, on_seconds: float, off_seconds: float,
                 size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf"),
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(sim, flow_id, sink, size_bytes, end_time)
        if peak_rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.peak_rate_bps = peak_rate_bps
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.rng = rng or random.Random(0)
        self._on_until = 0.0

    def start(self, at: Optional[float] = None) -> None:
        start_time = self.sim.now if at is None else at
        self._on_until = start_time + self._draw(self.on_seconds)
        super().start(at)

    def _draw(self, mean: float) -> float:
        return self.rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def next_interarrival(self) -> float:
        gap = self.size_bytes * 8 / self.peak_rate_bps
        next_time = self.sim.now + gap
        if next_time <= self._on_until:
            return gap
        off = self._draw(self.off_seconds)
        self._on_until = next_time + off + self._draw(self.on_seconds)
        return gap + off


class BackloggedSource:
    """Keeps a flow queue permanently backlogged at a target depth.

    Models an infinitely backlogged flow (the standard fair-queuing
    workload): whenever the engine reports a departure, the source tops
    the queue back up.
    """

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 depth: int = 4, size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf")) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.sim = sim
        self.flow_id = flow_id
        self.sink = sink
        self.depth = depth
        self.size_bytes = size_bytes
        self.end_time = end_time
        self.packets_generated = 0
        self._outstanding = 0

    def start(self, at: Optional[float] = None) -> None:
        start_time = self.sim.now if at is None else at
        self.sim.schedule(start_time, self._prime)

    def _prime(self) -> None:
        for _ in range(self.depth):
            self._emit()

    def on_departure(self) -> None:
        """Engine callback: one of this flow's packets left the wire."""
        self._outstanding -= 1
        if self.sim.now < self.end_time:
            self._emit()

    def _emit(self) -> None:
        packet = Packet(flow_id=self.flow_id, size_bytes=self.size_bytes,
                        arrival_time=self.sim.now)
        self.packets_generated += 1
        self._outstanding += 1
        self.sink(self.flow_id, packet)
