"""Traffic generators and flow-size samplers.

The paper's prototype implements "packet generators, one per flow, on the
FPGA to simulate the flows" (Section 6.3).  These are their software
equivalents; each generator injects packets into a flow queue through a
callback supplied by the transmit engine, so arrival handling (and the
framework's pre-enqueue trigger) stays in one place.

The *flow-size samplers* (:class:`EmpiricalCdfSampler`,
:class:`ParetoSampler`) serve the :mod:`repro.net` host workloads:
seeded inverse-transform draws from the heavy-tailed distributions the
FCT literature evaluates against (web-search / data-mining empirical
CDFs, Pareto).  Each sampler exposes its analytic ``mean_bytes`` so
open-loop load targets (arrival rate = load x link / mean size) need no
Monte Carlo warm-up, and the statistical generator tests can check
sample means against a closed form.
"""

from __future__ import annotations

import math
import random
from typing import Callable, Hashable, List, Optional, Sequence, Tuple

from repro.sim.events import Simulator
from repro.sim.packet import MTU_BYTES, Packet

#: Signature used to hand a packet to the scheduler/engine.
ArrivalSink = Callable[[Hashable, Packet], None]


class PacketGenerator:
    """Base class: generates packets for one flow until ``end_time``."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf")) -> None:
        self.sim = sim
        self.flow_id = flow_id
        self.sink = sink
        self.size_bytes = size_bytes
        self.end_time = end_time
        self.packets_generated = 0

    def start(self, at: Optional[float] = None) -> None:
        self.sim.schedule(self.sim.now if at is None else at, self._fire)

    def _fire(self) -> None:
        if self.sim.now >= self.end_time:
            return
        self._emit()
        delay = self.next_interarrival()
        if delay is not None:
            self.sim.schedule_in(delay, self._fire)

    def _emit(self) -> None:
        packet = Packet(flow_id=self.flow_id, size_bytes=self.size_bytes,
                        arrival_time=self.sim.now)
        self.packets_generated += 1
        self.sink(self.flow_id, packet)

    def next_interarrival(self) -> Optional[float]:
        raise NotImplementedError


class CbrGenerator(PacketGenerator):
    """Constant-bit-rate arrivals at ``rate_bps``."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 rate_bps: float, size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf")) -> None:
        super().__init__(sim, flow_id, sink, size_bytes, end_time)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps

    def next_interarrival(self) -> float:
        return self.size_bytes * 8 / self.rate_bps


class PoissonGenerator(PacketGenerator):
    """Poisson arrivals with mean rate ``rate_bps``."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 rate_bps: float, size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf"),
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(sim, flow_id, sink, size_bytes, end_time)
        if rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.rate_bps = rate_bps
        self.rng = rng or random.Random(0)

    def next_interarrival(self) -> float:
        mean = self.size_bytes * 8 / self.rate_bps
        return self.rng.expovariate(1.0 / mean)


class OnOffGenerator(PacketGenerator):
    """Bursty on/off traffic: CBR at ``peak_rate_bps`` during on-periods."""

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 peak_rate_bps: float, on_seconds: float, off_seconds: float,
                 size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf"),
                 rng: Optional[random.Random] = None) -> None:
        super().__init__(sim, flow_id, sink, size_bytes, end_time)
        if peak_rate_bps <= 0:
            raise ValueError("rate must be positive")
        self.peak_rate_bps = peak_rate_bps
        self.on_seconds = on_seconds
        self.off_seconds = off_seconds
        self.rng = rng or random.Random(0)
        self._on_until = 0.0

    def start(self, at: Optional[float] = None) -> None:
        start_time = self.sim.now if at is None else at
        self._on_until = start_time + self._draw(self.on_seconds)
        super().start(at)

    def _draw(self, mean: float) -> float:
        return self.rng.expovariate(1.0 / mean) if mean > 0 else 0.0

    def next_interarrival(self) -> float:
        gap = self.size_bytes * 8 / self.peak_rate_bps
        next_time = self.sim.now + gap
        if next_time <= self._on_until:
            return gap
        off = self._draw(self.off_seconds)
        self._on_until = next_time + off + self._draw(self.on_seconds)
        return gap + off


class EmpiricalCdfSampler:
    """Seeded inverse-transform sampling from an empirical size CDF.

    ``points`` is a sequence of ``(size_bytes, cumulative_probability)``
    pairs, strictly increasing in both coordinates, ending at
    probability 1.0 — the form the datacenter FCT literature publishes
    (web-search / data-mining distributions).  A draw picks u ~ U(0, 1]
    and interpolates linearly between the bracketing points; mass at or
    below the first point's probability is an atom at the first size
    (the published tables start with e.g. "50% of flows are 1 packet").

    ``mean_bytes`` is exact for that interpolation: the atom plus each
    segment's mass times its midpoint size.
    """

    def __init__(self, points: Sequence[Tuple[float, float]],
                 rng: Optional[random.Random] = None) -> None:
        if len(points) < 1:
            raise ValueError("empirical CDF needs at least one point")
        previous_size, previous_prob = None, 0.0
        for size, prob in points:
            if size <= 0:
                raise ValueError("CDF sizes must be positive")
            if previous_size is not None and size <= previous_size:
                raise ValueError("CDF sizes must strictly increase")
            if prob <= previous_prob:
                raise ValueError(
                    "CDF probabilities must strictly increase")
            previous_size, previous_prob = size, prob
        if abs(points[-1][1] - 1.0) > 1e-9:
            raise ValueError("CDF must end at probability 1.0")
        self.points: List[Tuple[float, float]] = [
            (float(size), float(prob)) for size, prob in points]
        self.rng = rng or random.Random(0)

    @property
    def mean_bytes(self) -> float:
        sizes = [size for size, _ in self.points]
        probs = [prob for _, prob in self.points]
        mean = probs[0] * sizes[0]
        for index in range(1, len(sizes)):
            mass = probs[index] - probs[index - 1]
            mean += mass * (sizes[index - 1] + sizes[index]) / 2.0
        return mean

    def sample(self) -> int:
        u = self.rng.random()
        sizes = [size for size, _ in self.points]
        probs = [prob for _, prob in self.points]
        if u <= probs[0]:
            return max(1, round(sizes[0]))
        for index in range(1, len(sizes)):
            if u <= probs[index]:
                lo_s, hi_s = sizes[index - 1], sizes[index]
                lo_p, hi_p = probs[index - 1], probs[index]
                fraction = (u - lo_p) / (hi_p - lo_p)
                return max(1, round(lo_s + fraction * (hi_s - lo_s)))
        return max(1, round(sizes[-1]))

    def tail_mass(self, size_bytes: float) -> float:
        """P(size > size_bytes) under the interpolated CDF (closed
        form, for the statistical property tests)."""
        sizes = [size for size, _ in self.points]
        probs = [prob for _, prob in self.points]
        if size_bytes < sizes[0]:
            return 1.0
        for index in range(1, len(sizes)):
            if size_bytes < sizes[index]:
                lo_s, hi_s = sizes[index - 1], sizes[index]
                lo_p, hi_p = probs[index - 1], probs[index]
                fraction = (size_bytes - lo_s) / (hi_s - lo_s)
                return 1.0 - (lo_p + fraction * (hi_p - lo_p))
        return 0.0


class ParetoSampler:
    """Seeded bounded-Pareto flow sizes: ``scale * u^(-1/alpha)`` capped
    at ``cap_bytes`` (an uncapped alpha <= 1 tail has infinite mean, so
    open-loop load targets would be undefined).

    ``mean_bytes`` is the exact mean of the capped distribution.
    """

    def __init__(self, alpha: float = 1.5, scale_bytes: float = 1000.0,
                 cap_bytes: float = 10e6,
                 rng: Optional[random.Random] = None) -> None:
        if alpha <= 0:
            raise ValueError("alpha must be positive")
        if scale_bytes <= 0 or cap_bytes <= scale_bytes:
            raise ValueError("need 0 < scale_bytes < cap_bytes")
        self.alpha = alpha
        self.scale_bytes = scale_bytes
        self.cap_bytes = cap_bytes
        self.rng = rng or random.Random(0)

    @property
    def mean_bytes(self) -> float:
        alpha, xm, cap = self.alpha, self.scale_bytes, self.cap_bytes
        # P(X >= cap) for the uncapped Pareto; that mass sits at cap.
        tail = (xm / cap) ** alpha
        if alpha == 1.0:
            body = xm * math.log(cap / xm)
        else:
            body = (alpha * xm / (alpha - 1.0)
                    * (1.0 - (xm / cap) ** (alpha - 1.0)))
        return body + tail * cap

    def sample(self) -> int:
        u = self.rng.random()
        size = self.scale_bytes / max(u, 1e-12) ** (1.0 / self.alpha)
        return max(1, round(min(size, self.cap_bytes)))

    def tail_mass(self, size_bytes: float) -> float:
        """P(size > size_bytes) (closed form)."""
        if size_bytes < self.scale_bytes:
            return 1.0
        if size_bytes >= self.cap_bytes:
            return 0.0
        return (self.scale_bytes / size_bytes) ** self.alpha


class BackloggedSource:
    """Keeps a flow queue permanently backlogged at a target depth.

    Models an infinitely backlogged flow (the standard fair-queuing
    workload): whenever the engine reports a departure, the source tops
    the queue back up.
    """

    def __init__(self, sim: Simulator, flow_id: Hashable, sink: ArrivalSink,
                 depth: int = 4, size_bytes: int = MTU_BYTES,
                 end_time: float = float("inf")) -> None:
        if depth < 1:
            raise ValueError("depth must be >= 1")
        self.sim = sim
        self.flow_id = flow_id
        self.sink = sink
        self.depth = depth
        self.size_bytes = size_bytes
        self.end_time = end_time
        self.packets_generated = 0
        self._outstanding = 0

    def start(self, at: Optional[float] = None) -> None:
        start_time = self.sim.now if at is None else at
        self.sim.schedule(start_time, self._prime)

    def _prime(self) -> None:
        for _ in range(self.depth):
            self._emit()

    def on_departure(self) -> None:
        """Engine callback: one of this flow's packets left the wire."""
        self._outstanding -= 1
        if self.sim.now < self.end_time:
            self._emit()

    def _emit(self) -> None:
        packet = Packet(flow_id=self.flow_id, size_bytes=self.size_bytes,
                        arrival_time=self.sim.now)
        self.packets_generated += 1
        self._outstanding += 1
        self.sink(self.flow_id, packet)
