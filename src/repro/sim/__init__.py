"""Discrete-event network substrate: packets, flows, links, generators,
and the multi-port dataplane (ports, shared-buffer admission,
classification)."""

from repro.sim.buffer import (BufferManager, DropPolicy,
                              LongestQueueDrop, RedDrop, TailDrop,
                              available_drop_policies, get_drop_policy,
                              make_drop_policy, register_drop_policy)
from repro.sim.classifier import (Classifier, FnClassifier,
                                  HashClassifier, StaticClassifier)
from repro.sim.dataplane import Dataplane, single_port_dataplane
from repro.sim.engine import TransmitEngine
from repro.sim.events import EventHandle, Simulator
from repro.sim.flow import FlowQueue
from repro.sim.port import Port
from repro.sim.generators import (BackloggedSource, CbrGenerator,
                                  OnOffGenerator, PacketGenerator,
                                  PoissonGenerator)
from repro.sim.link import GBPS, Link, gbps
from repro.sim.packet import MTU_BYTES, Packet
from repro.sim.recorder import Departure, Recorder
from repro.sim.trace import (departures_csv, save_trace, write_departures,
                             write_flow_summary)

__all__ = [
    "BufferManager",
    "Classifier",
    "Dataplane",
    "DropPolicy",
    "FnClassifier",
    "HashClassifier",
    "LongestQueueDrop",
    "Port",
    "RedDrop",
    "StaticClassifier",
    "TailDrop",
    "TransmitEngine",
    "EventHandle",
    "Simulator",
    "FlowQueue",
    "available_drop_policies",
    "get_drop_policy",
    "make_drop_policy",
    "register_drop_policy",
    "single_port_dataplane",
    "BackloggedSource",
    "CbrGenerator",
    "OnOffGenerator",
    "PacketGenerator",
    "PoissonGenerator",
    "GBPS",
    "Link",
    "gbps",
    "MTU_BYTES",
    "Packet",
    "Departure",
    "Recorder",
    "departures_csv",
    "save_trace",
    "write_departures",
    "write_flow_summary",
]
