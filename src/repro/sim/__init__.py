"""Discrete-event network substrate: packets, flows, links, generators."""

from repro.sim.engine import TransmitEngine
from repro.sim.events import EventHandle, Simulator
from repro.sim.flow import FlowQueue
from repro.sim.generators import (BackloggedSource, CbrGenerator,
                                  OnOffGenerator, PacketGenerator,
                                  PoissonGenerator)
from repro.sim.link import GBPS, Link, gbps
from repro.sim.packet import MTU_BYTES, Packet
from repro.sim.recorder import Departure, Recorder
from repro.sim.trace import (departures_csv, save_trace, write_departures,
                             write_flow_summary)

__all__ = [
    "TransmitEngine",
    "EventHandle",
    "Simulator",
    "FlowQueue",
    "BackloggedSource",
    "CbrGenerator",
    "OnOffGenerator",
    "PacketGenerator",
    "PoissonGenerator",
    "GBPS",
    "Link",
    "gbps",
    "MTU_BYTES",
    "Packet",
    "Departure",
    "Recorder",
    "departures_csv",
    "save_trace",
    "write_departures",
    "write_flow_summary",
]
