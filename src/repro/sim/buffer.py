"""Shared-buffer admission control with pluggable drop policies.

A real switch dataplane admits every arriving packet into one shared
packet memory before scheduling ever sees it; when the memory (or a
per-port / per-flow carve-out) is full, the admission stage *drops* —
and which packet it drops is a policy decision as consequential as the
scheduler's rank function.  This module gives the repro that missing
stage:

* :class:`BufferManager` — byte+packet occupancy accounting at three
  granularities (global, per-port, per-flow) with an ``admit`` /
  ``release`` lifecycle wired into each port's
  :class:`~repro.sim.engine.TransmitEngine` hooks;
* :class:`DropPolicy` and a registry mirroring
  :mod:`repro.core.backends` / :mod:`repro.sim.events`:
  ``"tail-drop"`` (refuse the arrival), ``"longest-queue"`` (push-out:
  evict the tail of the most backlogged queue to make room — LQD),
  and ``"red"`` (RED-style probabilistic early drop on an EWMA of the
  occupancy, with a seeded RNG so runs stay deterministic).

Every drop — arrival refusal or push-out eviction — is emitted through
the tracer as a ``drop`` event carrying ``reason``, ``port``,
``packet_id``, and ``size_bytes``, so the analyzer's conservation audit
(arrivals == departures + drops + residue) and latency attribution see
the admission stage exactly like any other.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Hashable, Optional, Tuple

from repro.errors import ConfigurationError
from repro.obs.scope import NULL_METRICS, NULL_TRACER
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet

#: Resolves a flow id to its live :class:`FlowQueue` (or None); ports
#: register one per port so push-out policies can reach victim queues.
QueueResolver = Callable[[Hashable], Optional[FlowQueue]]


# ----------------------------------------------------------------------
# Drop policies
# ----------------------------------------------------------------------
class DropPolicy:
    """Decides what to do when the buffer cannot (or should not)
    accept an arrival.

    ``pre_admit`` runs on every arrival before any capacity check and
    may veto it (early/probabilistic dropping, e.g. RED); ``make_room``
    runs when a capacity check failed and may free space (push-out
    policies); returning True re-runs the capacity checks.  The default
    implementations — admit everything, never make room — give plain
    tail-drop semantics.
    """

    name = "drop-policy"

    def pre_admit(self, buffer: "BufferManager", port_id: Hashable,
                  flow_id: Hashable, packet: Packet) -> Optional[str]:
        """Return a drop reason to refuse the packet outright."""
        return None

    def make_room(self, buffer: "BufferManager", port_id: Hashable,
                  flow_id: Hashable, packet: Packet,
                  reason: str) -> bool:
        """Try to free space for ``packet``; True if anything was
        evicted (the admission checks then re-run)."""
        return False


class TailDrop(DropPolicy):
    """Refuse arrivals once a capacity limit is hit (the default)."""

    name = "tail-drop"


class LongestQueueDrop(DropPolicy):
    """Push-out: evict the tail of the most backlogged flow queue.

    The classic shared-memory LQD discipline — when the buffer is full,
    the flow hogging the most memory loses its newest packet so the
    arrival can be admitted.  A victim queue is only eligible while it
    holds at least two packets (evicting the last packet would strand
    the flow's residency in the scheduler's ordered list); when no
    eligible victim can free enough space the policy degrades to
    tail-drop on the arrival.
    """

    name = "longest-queue"

    def make_room(self, buffer: "BufferManager", port_id: Hashable,
                  flow_id: Hashable, packet: Packet,
                  reason: str) -> bool:
        # Per-flow overflow is a carve-out the flow itself exceeded;
        # evicting *other* flows would punish the innocent.
        if reason.startswith("flow"):
            return False
        evicted = False
        while not buffer.would_fit(port_id, flow_id, packet):
            victim = buffer.longest_queue(min_depth=2)
            if victim is None:
                return evicted
            victim_port, victim_flow, queue = victim
            dropped = queue.drop_tail()
            buffer.note_eviction(victim_port, victim_flow, dropped,
                                 reason="evicted:longest-queue")
            evicted = True
        return evicted


class RedDrop(DropPolicy):
    """RED-style probabilistic early drop on smoothed occupancy.

    Tracks an EWMA of the global byte occupancy (weight ``ewma_weight``
    per arrival).  Below ``min_fill`` of the byte capacity nothing is
    dropped; between ``min_fill`` and ``max_fill`` arrivals are dropped
    with probability rising linearly to ``max_probability``; above
    ``max_fill`` every arrival is dropped.  The RNG is seeded, so runs
    (and sharded sweep points, which construct their own managers) are
    deterministic.
    """

    name = "red"

    def __init__(self, min_fill: float = 0.4, max_fill: float = 0.8,
                 max_probability: float = 0.1,
                 ewma_weight: float = 0.2, seed: int = 1) -> None:
        if not 0.0 <= min_fill < max_fill <= 1.0:
            raise ConfigurationError(
                f"need 0 <= min_fill < max_fill <= 1, got "
                f"{min_fill}/{max_fill}")
        if not 0.0 < max_probability <= 1.0:
            raise ConfigurationError(
                f"max_probability must be in (0, 1], got "
                f"{max_probability}")
        if not 0.0 < ewma_weight <= 1.0:
            raise ConfigurationError(
                f"ewma_weight must be in (0, 1], got {ewma_weight}")
        self.min_fill = min_fill
        self.max_fill = max_fill
        self.max_probability = max_probability
        self.ewma_weight = ewma_weight
        self._rng = random.Random(seed)
        self._avg_bytes = 0.0

    def pre_admit(self, buffer: "BufferManager", port_id: Hashable,
                  flow_id: Hashable, packet: Packet) -> Optional[str]:
        capacity = buffer.capacity_bytes
        if capacity is None:
            return None  # RED needs a byte capacity to scale against
        weight = self.ewma_weight
        self._avg_bytes += weight * (buffer.total_bytes
                                     - self._avg_bytes)
        fill = self._avg_bytes / capacity
        if fill < self.min_fill:
            return None
        if fill >= self.max_fill:
            return "red:forced"
        probability = (self.max_probability
                       * (fill - self.min_fill)
                       / (self.max_fill - self.min_fill))
        if self._rng.random() < probability:
            return "red:early"
        return None


# ----------------------------------------------------------------------
# Drop-policy registry (mirrors repro.core.backends)
# ----------------------------------------------------------------------
class _PolicyEntry:
    __slots__ = ("name", "factory", "description")

    def __init__(self, name, factory, description):
        self.name = name
        self.factory = factory
        self.description = description


_DROP_POLICIES: Dict[str, _PolicyEntry] = {}


def register_drop_policy(name: str, factory,
                         description: str = "") -> None:
    """Register a drop-policy factory under ``name`` (overwrites)."""
    _DROP_POLICIES[name] = _PolicyEntry(name, factory, description)


def available_drop_policies():
    """Registered policy names, sorted."""
    return sorted(_DROP_POLICIES)


def get_drop_policy(name: str) -> _PolicyEntry:
    entry = _DROP_POLICIES.get(name)
    if entry is None:
        raise ConfigurationError(
            f"unknown drop policy {name!r}; available: "
            f"{', '.join(available_drop_policies())}")
    return entry


def make_drop_policy(name: str, **config) -> DropPolicy:
    """Instantiate a registered drop policy."""
    return get_drop_policy(name).factory(**config)


register_drop_policy(
    "tail-drop", TailDrop,
    description="refuse arrivals once a capacity limit is hit")
register_drop_policy(
    "longest-queue", LongestQueueDrop,
    description="push-out: evict the tail of the most backlogged "
                "queue (LQD)")
register_drop_policy(
    "red", RedDrop,
    description="probabilistic early drop on EWMA occupancy "
                "(RED-style, seeded)")


# ----------------------------------------------------------------------
# BufferManager
# ----------------------------------------------------------------------
class BufferManager:
    """Shared packet-memory accounting for a multi-port dataplane.

    Capacities (all optional; ``None`` means unlimited):

    ``capacity_bytes`` / ``capacity_pkts``
        The shared memory every port draws from.
    ``per_port_bytes`` / ``per_port_pkts``
        Carve-out limit applied to each port's total occupancy.
    ``per_flow_bytes`` / ``per_flow_pkts``
        Carve-out limit applied to each (port, flow) pair.

    ``admit(port_id, flow_id, packet, now)`` charges occupancy or emits
    a ``drop`` trace event and returns False; ``release`` credits it
    back at transmission (ports wire this into the engine's
    ``departure_hook``).  ``policy`` is a :class:`DropPolicy`, a
    registered name, or None for tail-drop.
    """

    def __init__(self, capacity_bytes: Optional[int] = None,
                 capacity_pkts: Optional[int] = None,
                 per_port_bytes: Optional[int] = None,
                 per_port_pkts: Optional[int] = None,
                 per_flow_bytes: Optional[int] = None,
                 per_flow_pkts: Optional[int] = None,
                 policy=None, tracer=None, metrics=None) -> None:
        for label, value in (("capacity_bytes", capacity_bytes),
                             ("capacity_pkts", capacity_pkts),
                             ("per_port_bytes", per_port_bytes),
                             ("per_port_pkts", per_port_pkts),
                             ("per_flow_bytes", per_flow_bytes),
                             ("per_flow_pkts", per_flow_pkts)):
            if value is not None and value <= 0:
                raise ConfigurationError(
                    f"{label} must be positive or None, got {value}")
        self.capacity_bytes = capacity_bytes
        self.capacity_pkts = capacity_pkts
        self.per_port_bytes = per_port_bytes
        self.per_port_pkts = per_port_pkts
        self.per_flow_bytes = per_flow_bytes
        self.per_flow_pkts = per_flow_pkts
        if policy is None:
            policy = TailDrop()
        elif isinstance(policy, str):
            policy = make_drop_policy(policy)
        self.policy = policy
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._traced = self.tracer is not NULL_TRACER
        self._metered = self.metrics is not NULL_METRICS
        # Occupancy.
        self.total_bytes = 0
        self.total_pkts = 0
        self.port_bytes: Dict[Hashable, int] = {}
        self.port_pkts: Dict[Hashable, int] = {}
        self.flow_bytes: Dict[Tuple[Hashable, Hashable], int] = {}
        self.flow_pkts: Dict[Tuple[Hashable, Hashable], int] = {}
        # Totals.
        self.admitted = 0
        self.dropped = 0
        self.dropped_bytes = 0
        self.evicted = 0
        self.drops_by_port: Dict[Hashable, int] = {}
        self.drops_by_reason: Dict[str, int] = {}
        # Victim-queue resolvers, one per attached port.
        self._resolvers: Dict[Hashable, QueueResolver] = {}
        # The dataplane's clock (set via attach_clock) so eviction drop
        # events are stamped with sim time.
        self._now: Callable[[], float] = lambda: 0.0
        if self._metered:
            self._c_admitted = self.metrics.counter("buffer.admitted")
            self._c_dropped = self.metrics.counter("buffer.dropped")
            self._c_evicted = self.metrics.counter("buffer.evicted")
            self._g_bytes = self.metrics.gauge("buffer.occupancy_bytes")
            self._g_pkts = self.metrics.gauge("buffer.occupancy_pkts")

    # -- wiring --------------------------------------------------------
    def attach_port(self, port_id: Hashable,
                    resolver: QueueResolver) -> None:
        """Register a port's flow-queue resolver (push-out victims)."""
        self._resolvers[port_id] = resolver

    def attach_clock(self, now: Callable[[], float]) -> None:
        """Give the buffer a sim-time source for eviction events."""
        self._now = now

    # -- capacity checks -----------------------------------------------
    def _violated(self, port_id: Hashable, flow_id: Hashable,
                  packet: Packet) -> Optional[str]:
        """First violated limit as a drop reason, or None if it fits."""
        size = packet.size_bytes
        if self.capacity_pkts is not None \
                and self.total_pkts + 1 > self.capacity_pkts:
            return "buffer:pkts"
        if self.capacity_bytes is not None \
                and self.total_bytes + size > self.capacity_bytes:
            return "buffer:bytes"
        if self.per_port_pkts is not None \
                and self.port_pkts.get(port_id, 0) + 1 \
                > self.per_port_pkts:
            return "port:pkts"
        if self.per_port_bytes is not None \
                and self.port_bytes.get(port_id, 0) + size \
                > self.per_port_bytes:
            return "port:bytes"
        key = (port_id, flow_id)
        if self.per_flow_pkts is not None \
                and self.flow_pkts.get(key, 0) + 1 > self.per_flow_pkts:
            return "flow:pkts"
        if self.per_flow_bytes is not None \
                and self.flow_bytes.get(key, 0) + size \
                > self.per_flow_bytes:
            return "flow:bytes"
        return None

    def would_fit(self, port_id: Hashable, flow_id: Hashable,
                  packet: Packet) -> bool:
        return self._violated(port_id, flow_id, packet) is None

    # -- admission lifecycle -------------------------------------------
    def admit(self, port_id: Hashable, flow_id: Hashable,
              packet: Packet, now: float) -> bool:
        """Charge ``packet`` against the buffer, or drop it.

        Returns True (admitted, occupancy charged) or False (dropped; a
        ``drop`` trace event carrying the reason and port was emitted
        and drop counters were bumped).
        """
        reason = self.policy.pre_admit(self, port_id, flow_id, packet)
        if reason is None:
            reason = self._violated(port_id, flow_id, packet)
            if reason is not None and self.policy.make_room(
                    self, port_id, flow_id, packet, reason):
                reason = self._violated(port_id, flow_id, packet)
        if reason is not None:
            self._note_drop(port_id, flow_id, packet, reason, now)
            return False
        size = packet.size_bytes
        self.total_bytes += size
        self.total_pkts += 1
        self.port_bytes[port_id] = \
            self.port_bytes.get(port_id, 0) + size
        self.port_pkts[port_id] = self.port_pkts.get(port_id, 0) + 1
        key = (port_id, flow_id)
        self.flow_bytes[key] = self.flow_bytes.get(key, 0) + size
        self.flow_pkts[key] = self.flow_pkts.get(key, 0) + 1
        self.admitted += 1
        if self._metered:
            self._c_admitted.inc()
            self._g_bytes.set(self.total_bytes)
            self._g_pkts.set(self.total_pkts)
        return True

    def release(self, port_id: Hashable, flow_id: Hashable,
                size_bytes: int) -> None:
        """Credit occupancy back (a packet left the buffer)."""
        self.total_bytes -= size_bytes
        self.total_pkts -= 1
        key = (port_id, flow_id)
        self.port_bytes[port_id] = \
            self.port_bytes.get(port_id, 0) - size_bytes
        self.port_pkts[port_id] = self.port_pkts.get(port_id, 0) - 1
        self.flow_bytes[key] = self.flow_bytes.get(key, 0) - size_bytes
        self.flow_pkts[key] = self.flow_pkts.get(key, 0) - 1
        if (self.total_bytes < 0 or self.total_pkts < 0
                or self.port_pkts[port_id] < 0
                or self.flow_pkts[key] < 0):
            raise ValueError(
                f"buffer release underflow for port={port_id!r} "
                f"flow={flow_id!r}: released more than admitted")
        if self._metered:
            self._g_bytes.set(self.total_bytes)
            self._g_pkts.set(self.total_pkts)

    # -- drop bookkeeping ----------------------------------------------
    def _note_drop(self, port_id: Hashable, flow_id: Hashable,
                   packet: Packet, reason: str, now: float) -> None:
        self.dropped += 1
        self.dropped_bytes += packet.size_bytes
        self.drops_by_port[port_id] = \
            self.drops_by_port.get(port_id, 0) + 1
        self.drops_by_reason[reason] = \
            self.drops_by_reason.get(reason, 0) + 1
        if self._metered:
            self._c_dropped.inc()
        if self._traced:
            self.tracer.drop(now, flow_id, reason=reason,
                             packet_id=packet.packet_id,
                             size_bytes=packet.size_bytes,
                             port=str(port_id))

    def note_eviction(self, port_id: Hashable, flow_id: Hashable,
                      packet: Packet, reason: str) -> None:
        """A push-out policy evicted an already-admitted packet:
        release its occupancy and record the drop."""
        self.release(port_id, flow_id, packet.size_bytes)
        self.evicted += 1
        if self._metered:
            self._c_evicted.inc()
        self._note_drop(port_id, flow_id, packet, reason, self._now())

    # -- victim selection (push-out policies) --------------------------
    def longest_queue(self, min_depth: int = 2):
        """The (port_id, flow_id, queue) holding the most buffered
        bytes among queues at least ``min_depth`` deep; None if no
        queue qualifies.  Ties break deterministically on the
        stringified (port, flow) key."""
        best = None
        best_key = None
        for (port_id, flow_id), occupied in self.flow_bytes.items():
            if occupied <= 0:
                continue
            resolver = self._resolvers.get(port_id)
            if resolver is None:
                continue
            queue = resolver(flow_id)
            if queue is None or len(queue) < min_depth:
                continue
            sort_key = (-occupied, str(port_id), str(flow_id))
            if best_key is None or sort_key < best_key:
                best_key = sort_key
                best = (port_id, flow_id, queue)
        return best

    # -- reporting ------------------------------------------------------
    def occupancy(self) -> Dict[str, object]:
        """Occupancy and drop totals as a plain dict."""
        return {
            "total_bytes": self.total_bytes,
            "total_pkts": self.total_pkts,
            "port_bytes": dict(self.port_bytes),
            "port_pkts": dict(self.port_pkts),
            "admitted": self.admitted,
            "dropped": self.dropped,
            "dropped_bytes": self.dropped_bytes,
            "evicted": self.evicted,
            "drops_by_port": dict(self.drops_by_port),
            "drops_by_reason": dict(self.drops_by_reason),
        }
