"""Dataplane: N ports, one shared buffer, one clock.

The switch-level composition the paper's hardware targets (Fig. 1 per
port, tens of thousands of flows per chip): a
:class:`~repro.sim.classifier.Classifier` assigns each arriving packet
to an output :class:`~repro.sim.port.Port`, a shared
:class:`~repro.sim.buffer.BufferManager` decides admission against the
common packet memory, and every port's scheduler + link + engine runs
on one :class:`~repro.sim.events.Simulator` so cross-port event order
is globally deterministic.

Determinism contract: with the same arrival program, classifier,
buffer configuration, and schedulers, a multi-port run is reproducible
event-for-event — ties between ports at the same instant resolve by
schedule order on the shared simulator (the ``(time, seq)`` key), and
all drop decisions are either deterministic (tail-drop, push-out) or
driven by a seeded RNG (RED).  With more than one port the engines'
batched drain automatically degrades to the event-driven tail
(:meth:`Simulator.advance_to` refuses once a second clock consumer
registers), which serializes the ports correctly at identical output.

:func:`single_port_dataplane` is the compatibility wrapper: one
unlabelled port, no buffer, no classifier — bit-identical behaviour
(traces, metrics, recorder output) to wiring a bare
:class:`~repro.sim.engine.TransmitEngine` yourself, so every existing
single-link figure reproduces unchanged through the port layer.
"""

from __future__ import annotations

from typing import Callable, Dict, Hashable, List, Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import scoped
from repro.obs.trace import labelled
from repro.sim.classifier import Classifier
from repro.sim.events import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.port import Port
from repro.sim.recorder import Recorder


class Dataplane:
    """Hosts N :class:`Port` instances on one simulator.

    ``classifier`` maps flow ids to port ids (optional while the
    dataplane has exactly one port, which then receives everything);
    ``buffer`` is the shared :class:`BufferManager` (optional: without
    it admission is unbounded, as in the single-link setups).
    """

    def __init__(self, sim: Simulator,
                 classifier: Optional[Classifier] = None,
                 buffer=None, tracer=None, metrics=None) -> None:
        self.sim = sim
        self.classifier = classifier
        self.buffer = buffer
        self.tracer = tracer
        self.metrics = metrics
        self.ports: Dict[Hashable, Port] = {}
        #: Packets offered to the dataplane (pre-admission).
        self.arrivals = 0
        if buffer is not None:
            buffer.attach_clock(lambda: sim.now)

    # -- construction --------------------------------------------------
    def add_port(self, port_id: Hashable, scheduler=None,
                 link: Optional[Link] = None, *,
                 make_scheduler: Optional[Callable] = None,
                 link_rate_bps: Optional[float] = None,
                 recorder: Optional[Recorder] = None,
                 drain: Optional[bool] = None,
                 label: bool = True,
                 on_departure=None) -> Port:
        """Create and register a port.

        Either pass a constructed ``scheduler`` (and ``link``), or pass
        ``make_scheduler(tracer, metrics)`` + ``link_rate_bps`` and the
        dataplane builds both with the port's labelled tracer / scoped
        metrics so scheduler- and link-level events carry the port
        field too.  ``on_departure(packet)`` is the port's post-transmit
        hook (next-hop forwarding in :mod:`repro.net`).
        """
        if port_id in self.ports:
            raise ConfigurationError(f"duplicate port id {port_id!r}")
        port_tracer = labelled(self.tracer, port=str(port_id)) \
            if label else self.tracer
        port_metrics = scoped(self.metrics, f"port.{port_id}") \
            if label and self.metrics is not None else self.metrics
        if scheduler is None:
            if make_scheduler is None:
                raise ConfigurationError(
                    "add_port needs scheduler= or make_scheduler=")
            scheduler = make_scheduler(port_tracer, port_metrics)
        if link is None:
            if link_rate_bps is None:
                raise ConfigurationError(
                    "add_port needs link= or link_rate_bps=")
            link = Link(link_rate_bps, tracer=port_tracer)
        port = Port(port_id, self.sim, scheduler, link,
                    buffer=self.buffer, recorder=recorder,
                    tracer=self.tracer, metrics=self.metrics,
                    drain=drain, label=label,
                    on_departure=on_departure)
        self.ports[port_id] = port
        return port

    # -- traffic entry -------------------------------------------------
    def arrival_sink(self, flow_id: Hashable, packet: Packet) -> None:
        """Classify and deliver one arriving packet (plug this into
        the traffic generators)."""
        self.arrivals += 1
        if self.classifier is not None:
            port_id = self.classifier.port_of(flow_id)
            port = self.ports.get(port_id)
            if port is None:
                raise ConfigurationError(
                    f"classifier routed flow {flow_id!r} to unknown "
                    f"port {port_id!r}")
        elif len(self.ports) == 1:
            port = next(iter(self.ports.values()))
        else:
            raise ConfigurationError(
                "a multi-port dataplane needs a classifier")
        port.accept(flow_id, packet)

    # -- reporting ------------------------------------------------------
    def departures(self) -> int:
        """Total packets transmitted across all ports."""
        return sum(len(port.recorder) for port in self.ports.values())

    def conservation(self) -> Dict[str, int]:
        """Packet-conservation snapshot.

        ``arrivals == departures + drops + residue`` must hold at any
        instant: every packet offered to the dataplane either left on a
        wire, was dropped by admission/push-out, or is still buffered.
        """
        drops = self.buffer.dropped if self.buffer is not None else 0
        residue = self.buffer.total_pkts \
            if self.buffer is not None else None
        departures = self.departures()
        if residue is None:
            residue = self.arrivals - departures - drops
        return {
            "arrivals": self.arrivals,
            "departures": departures,
            "drops": drops,
            "residue": residue,
            "balanced":
                self.arrivals == departures + drops + residue,
        }

    def port_ids(self) -> List[Hashable]:
        return list(self.ports)


def single_port_dataplane(sim: Simulator, scheduler, link: Link,
                          recorder: Optional[Recorder] = None,
                          tracer=None, metrics=None,
                          drain: Optional[bool] = None,
                          port_id: Hashable = "p0") -> Dataplane:
    """Compatibility wrapper: a one-port dataplane that behaves —
    trace-for-trace, byte-for-byte — like a bare
    :class:`~repro.sim.engine.TransmitEngine` on the same pieces.

    No shared buffer (admission is unbounded, as before), no
    classifier (the single port receives every arrival), and no port
    labelling (events and metric names are unchanged), so existing
    single-link figures reproduce identically through the port layer.
    """
    dataplane = Dataplane(sim, tracer=tracer, metrics=metrics)
    dataplane.add_port(port_id, scheduler=scheduler, link=link,
                       recorder=recorder, drain=drain, label=False)
    return dataplane
