"""Packet classification: map arrivals to an output (port, flow).

The first stage of the dataplane (Fig. 1's "packet classification"):
before admission and scheduling, every arriving packet is assigned to
an output port.  The repro keeps flow ids as the classification key —
a flow is pinned to one port, as in a real switch where the forwarding
lookup is per-destination.

Three classifiers cover the common shapes:

* :class:`StaticClassifier` — an explicit flow→port table (the incast
  experiment builds one from its "p{port}.f{i}" naming convention);
* :class:`HashClassifier` — CRC32 of the flow id modulo the port count
  (deterministic across processes, unlike builtin ``hash`` which is
  salted per interpreter — sharded sweeps must classify identically);
* :class:`FnClassifier` — wrap any ``flow_id -> port_id`` callable.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Hashable, Optional, Sequence

from repro.errors import ConfigurationError


class Classifier:
    """Maps a flow id to the output port that must carry it."""

    def port_of(self, flow_id: Hashable) -> Hashable:
        raise NotImplementedError


class StaticClassifier(Classifier):
    """Explicit flow→port mapping with an optional default port."""

    def __init__(self, mapping: Dict[Hashable, Hashable],
                 default: Optional[Hashable] = None) -> None:
        self.mapping = dict(mapping)
        self.default = default

    def port_of(self, flow_id: Hashable) -> Hashable:
        port = self.mapping.get(flow_id, self.default)
        if port is None:
            raise ConfigurationError(
                f"no port mapping for flow {flow_id!r} and no default")
        return port


class HashClassifier(Classifier):
    """CRC32(flow id) modulo the port list.

    CRC32 (not builtin ``hash``) so the mapping is identical in every
    worker process of a sharded sweep regardless of hash salting.
    """

    def __init__(self, ports: Sequence[Hashable]) -> None:
        if not ports:
            raise ConfigurationError("HashClassifier needs >= 1 port")
        self.ports = list(ports)

    def port_of(self, flow_id: Hashable) -> Hashable:
        digest = zlib.crc32(str(flow_id).encode("utf-8"))
        return self.ports[digest % len(self.ports)]


class FnClassifier(Classifier):
    """Adapter around a plain ``flow_id -> port_id`` callable."""

    def __init__(self, fn: Callable[[Hashable], Hashable]) -> None:
        self.fn = fn

    def port_of(self, flow_id: Hashable) -> Hashable:
        return self.fn(flow_id)
