"""Per-flow FIFO queues (Fig. 1: "per flow FIFO queues").

Packets within each flow queue are always served in FIFO order; the
scheduler only decides *which flow* transmits next (Section 2.1).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Hashable, Optional

from repro.sim.packet import Packet


class FlowQueue:
    """A flow (or traffic class) and its FIFO packet queue.

    Parameters
    ----------
    flow_id:
        Unique identifier.
    weight:
        Fair-queuing weight (WFQ / WF2Q+, Section 4.1).
    rate_bps:
        Per-flow rate for shaping algorithms (Token Bucket, Section 4.2),
        in bits/second.
    priority:
        Static priority for priority schedulers (RCSP, strict priority).
    group:
        Logical-PIEO index for hierarchical scheduling (Section 4.3).

    ``state`` is the per-flow scheduling state of the programming
    framework (Section 3.2.1) — algorithms keep values such as
    ``finish_time``, ``tokens``, or ``deficit_counter`` in it.
    """

    def __init__(self, flow_id: Hashable, weight: float = 1.0,
                 rate_bps: float = 0.0, priority: int = 0,
                 group: int = 0) -> None:
        if weight <= 0:
            raise ValueError("weight must be positive")
        self.flow_id = flow_id
        self.weight = weight
        self.rate_bps = rate_bps
        self.priority = priority
        self.group = group
        self.queue: Deque[Packet] = deque()
        #: Algorithm-owned per-flow scheduling state.
        self.state: Dict[str, float] = {}
        # Statistics.
        self.packets_enqueued = 0
        self.packets_dequeued = 0
        self.bytes_enqueued = 0
        self.bytes_dequeued = 0
        # Admission/drop accounting (maintained by the buffer manager).
        self.packets_dropped = 0
        self.bytes_dropped = 0
        # Incremental backlog so capacity checks are O(1), not O(depth).
        self._backlog_bytes = 0

    # -- queue operations -------------------------------------------------
    def push(self, packet: Packet) -> bool:
        """Append a packet; returns True if the queue was empty before."""
        was_empty = not self.queue
        self.queue.append(packet)
        self.packets_enqueued += 1
        self.bytes_enqueued += packet.size_bytes
        self._backlog_bytes += packet.size_bytes
        return was_empty

    def pop(self) -> Packet:
        packet = self.queue.popleft()
        self.packets_dequeued += 1
        self.bytes_dequeued += packet.size_bytes
        self._backlog_bytes -= packet.size_bytes
        return packet

    def drop_tail(self) -> Packet:
        """Evict the most recent packet (push-out drop policies).

        Only safe while the queue keeps at least one packet afterwards:
        the flow's residency in the scheduler's ordered list is keyed on
        "has backlog", and evicting the last packet would strand a
        resident element pointing at an empty queue.
        """
        if len(self.queue) < 2:
            raise ValueError(
                "drop_tail needs >= 2 queued packets (evicting the last "
                "one would strand the flow's ordered-list residency)")
        packet = self.queue.pop()
        self.packets_dropped += 1
        self.bytes_dropped += packet.size_bytes
        self._backlog_bytes -= packet.size_bytes
        return packet

    def note_drop(self, packet: Packet) -> None:
        """Account an arrival rejected before it entered the queue."""
        self.packets_dropped += 1
        self.bytes_dropped += packet.size_bytes

    @property
    def head(self) -> Optional[Packet]:
        return self.queue[0] if self.queue else None

    def head_size(self) -> int:
        """Size in bytes of the head packet (0 when empty)."""
        return self.queue[0].size_bytes if self.queue else 0

    @property
    def is_empty(self) -> bool:
        return not self.queue

    def __len__(self) -> int:
        return len(self.queue)

    @property
    def backlog_bytes(self) -> int:
        return self._backlog_bytes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"FlowQueue({self.flow_id!r}, depth={len(self.queue)}, "
                f"weight={self.weight})")
