"""Packet representation for the scheduling substrate."""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Hashable, List, Optional

#: Standard Ethernet MTU payload size used throughout the evaluation
#: ("we schedule at MTU granularity", Section 6.3).
MTU_BYTES = 1500

_packet_ids = itertools.count()


def reset_packet_ids(start: int = 0) -> None:
    """Restart the global packet-id counter at ``start``.

    Sweep runners call this per sweep point (with disjoint strides) so
    packet ids are a function of the point alone — identical whether
    points run sequentially or fanned across worker processes.
    """
    global _packet_ids
    _packet_ids = itertools.count(start)


@dataclass(slots=True)
class Packet:
    """One packet resident in a flow queue.

    ``rank`` and ``send_time`` are the per-packet scheduling attributes
    used by the *input-triggered* programming model (Section 3.2.1), where
    the Pre-Enqueue function runs at packet arrival and stores the
    attributes on the packet; the flow element inherits them from the
    queue head.  ``eligible_time`` carries externally-imposed per-packet
    release times (RCSP, Section 4.2).
    """

    flow_id: Hashable
    size_bytes: int = MTU_BYTES
    arrival_time: float = 0.0
    eligible_time: float = 0.0
    rank: float = 0.0
    send_time: float = 0.0
    packet_id: int = field(default_factory=lambda: next(_packet_ids))
    #: Filled in by the transmit engine.
    departure_time: Optional[float] = None
    #: Destination endpoint for routed (multi-switch) traffic; None for
    #: the single-switch setups, where the classifier decides alone.
    dst: Optional[Hashable] = None
    #: Remaining hop budget; each :class:`repro.net` switch decrements
    #: it and drops at zero.  0 means "not routed" (single-switch runs
    #: never touch it).
    ttl: int = 0
    #: Switches traversed so far (incremented per switch ingest).
    hops: int = 0
    #: Path provenance: node ids appended at each switch ingest when the
    #: fabric records provenance; None when disabled (saves the list).
    path: Optional[List[Hashable]] = None

    @property
    def size_bits(self) -> int:
        return self.size_bytes * 8

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ValueError("packet size must be positive")
