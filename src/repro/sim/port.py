"""Port: one scheduler + link + transmit engine, packaged as a unit.

The paper's hardware block diagram (Fig. 1) attaches one PIEO scheduler
to each output link; a switch is N of those around a shared packet
memory.  :class:`Port` is that unit in the repro — it owns the
scheduler, the :class:`~repro.sim.link.Link`, and the
:class:`~repro.sim.engine.TransmitEngine` driving them, and wires the
optional shared :class:`~repro.sim.buffer.BufferManager` into the
engine's admission/release hooks.

Observability: the port hands its engine a
:class:`~repro.obs.trace.LabelledTracer` view stamping ``port=<id>``
on every event and a :class:`~repro.obs.metrics.ScopedMetrics` view
prefixing instruments with ``port.<id>``, so one tracer/registry pair
serves the whole dataplane while streams stay separable per port.
Pass ``label=False`` (the single-port compatibility path) to skip both
views and reproduce bare-engine output bit-identically.
"""

from __future__ import annotations

from typing import Hashable, Optional

from repro.obs.metrics import scoped
from repro.obs.trace import labelled
from repro.sim.engine import TransmitEngine
from repro.sim.events import Simulator
from repro.sim.flow import FlowQueue
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.recorder import Recorder


class Port:
    """One output port of a :class:`~repro.sim.dataplane.Dataplane`.

    ``scheduler`` and ``link`` are constructed by the caller (use
    :meth:`Dataplane.add_port` for the factory-style wiring that labels
    their observers too).  ``buffer`` is the shared
    :class:`~repro.sim.buffer.BufferManager`; when given, arrivals pass
    through ``buffer.admit`` before the scheduler sees them and every
    transmission credits occupancy back via ``buffer.release``.

    ``on_departure(packet)`` runs after every transmission, once the
    engine has stamped ``packet.departure_time`` (and after the buffer
    release, so occupancy accounting stays ahead of any re-injection).
    The :mod:`repro.net` fabric uses it to forward packets to the next
    hop; without it behaviour is unchanged.
    """

    def __init__(self, port_id: Hashable, sim: Simulator, scheduler,
                 link: Link, buffer=None,
                 recorder: Optional[Recorder] = None,
                 tracer=None, metrics=None,
                 drain: Optional[bool] = None,
                 label: bool = True,
                 on_departure=None) -> None:
        self.port_id = port_id
        self.sim = sim
        self.scheduler = scheduler
        self.link = link
        self.buffer = buffer
        if label:
            tracer = labelled(tracer, port=str(port_id))
            metrics = scoped(metrics, f"port.{port_id}") \
                if metrics is not None else None
        self.tracer = tracer
        self.metrics = metrics
        admission = None
        self._forward = on_departure
        if buffer is not None:
            admission = self._admit
            departure_hook = (self._release_and_forward
                              if on_departure is not None
                              else self._release)
            buffer.attach_port(port_id, self.flow_queue)
        else:
            departure_hook = on_departure
        self.engine = TransmitEngine(
            sim, scheduler, link, recorder=recorder, tracer=tracer,
            metrics=metrics, drain=drain, admission=admission,
            departure_hook=departure_hook)
        self.recorder = self.engine.recorder

    # -- buffer hooks --------------------------------------------------
    def _admit(self, flow_id: Hashable, packet: Packet) -> bool:
        return self.buffer.admit(self.port_id, flow_id, packet,
                                 self.sim.now)

    def _release(self, packet: Packet) -> None:
        self.buffer.release(self.port_id, packet.flow_id,
                            packet.size_bytes)

    def _release_and_forward(self, packet: Packet) -> None:
        self._release(packet)
        self._forward(packet)

    def flow_queue(self, flow_id: Hashable) -> Optional[FlowQueue]:
        """The live :class:`FlowQueue` for ``flow_id`` (push-out
        policies evict through this); None when the scheduler does not
        expose per-flow queues or the flow is unknown."""
        flows = getattr(self.scheduler, "flows", None)
        if flows is None:
            return None
        return flows.get(flow_id)

    # -- traffic entry -------------------------------------------------
    def accept(self, flow_id: Hashable, packet: Packet) -> None:
        """Feed a packet into this port (post-classification)."""
        self.engine.arrival_sink(flow_id, packet)

    def add_departure_listener(self, flow_id: Hashable,
                               callback) -> None:
        self.engine.add_departure_listener(flow_id, callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Port({self.port_id!r})"
