"""Trace export: departures and per-flow summaries as CSV.

Downstream users typically post-process schedules in pandas or gnuplot;
this writes the recorder's contents in a stable, documented format.
"""

from __future__ import annotations

import csv
import io
from typing import Dict, Hashable, Optional, TextIO

from repro.sim.recorder import Recorder

DEPARTURE_FIELDS = ("time", "flow_id", "size_bytes", "packet_id")
SUMMARY_FIELDS = ("flow_id", "packets", "bytes", "rate_bps",
                  "first_departure", "last_departure")


def write_departures(recorder: Recorder, stream: TextIO) -> int:
    """Write one row per departure; returns the row count."""
    writer = csv.writer(stream)
    writer.writerow(DEPARTURE_FIELDS)
    for departure in recorder.departures:
        writer.writerow([repr(departure.time), departure.flow_id,
                         departure.size_bytes, departure.packet_id])
    return len(recorder.departures)


def write_flow_summary(recorder: Recorder, stream: TextIO,
                       start: float = 0.0,
                       end: Optional[float] = None) -> int:
    """Write one row per flow with totals and achieved rate over
    ``[start, end)``; returns the row count."""
    writer = csv.writer(stream)
    writer.writerow(SUMMARY_FIELDS)
    rates = recorder.rate_bps(start=start, end=end)
    stats: Dict[Hashable, Dict[str, float]] = {}
    for departure in recorder.departures:
        entry = stats.setdefault(departure.flow_id, {
            "packets": 0, "bytes": 0,
            "first": departure.time, "last": departure.time})
        entry["packets"] += 1
        entry["bytes"] += departure.size_bytes
        entry["first"] = min(entry["first"], departure.time)
        entry["last"] = max(entry["last"], departure.time)
    for flow_id in sorted(stats, key=str):
        entry = stats[flow_id]
        writer.writerow([flow_id, entry["packets"], entry["bytes"],
                         repr(rates.get(flow_id, 0.0)),
                         repr(entry["first"]), repr(entry["last"])])
    return len(stats)


def departures_csv(recorder: Recorder) -> str:
    """The departures trace as a CSV string."""
    buffer = io.StringIO()
    write_departures(recorder, buffer)
    return buffer.getvalue()


def save_trace(recorder: Recorder, path: str,
               summary_path: Optional[str] = None) -> None:
    """Write the departures trace (and optionally a summary) to files."""
    with open(path, "w", newline="") as stream:
        write_departures(recorder, stream)
    if summary_path is not None:
        with open(summary_path, "w", newline="") as stream:
            write_flow_summary(recorder, stream)
