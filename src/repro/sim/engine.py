"""Transmit engine: connects a scheduler to a link inside the simulator.

Implements the output-triggered scheduling loop of Fig. 3: whenever the
link goes idle, ask the scheduler for the next packet(s); when the
scheduler is non-work-conserving and nothing is currently eligible, set a
timer for the next eligibility instant; otherwise wait for the next
arrival to kick scheduling again.

Observability: with a :class:`repro.obs.trace.Tracer` attached the engine
emits ``arrival``/``departure`` per packet, ``kick`` per scheduling
request, the full retry-timer lifecycle (``timer_arm`` /
``timer_fire`` / ``timer_cancel`` under scope ``"engine.retry"``), and
``link_idle`` at the end of each transmitted batch; a
:class:`repro.obs.metrics.MetricsRegistry` additionally aggregates
arrival/departure counters, backlog gauges, the ``schedule()``-batch-size
histogram, and the wall-clock latency of each ``schedule()`` call.

Fast path: when the run is completely unobserved (engine and simulator
both on the null tracer/metrics), the engine *drains* — one timer
callback transmits consecutive single-packet dequeues back to back,
advancing the clock through :meth:`Simulator.advance_to` instead of
scheduling one timer event per packet.  The drain falls back to the
event-driven tail the moment any pending event would interleave, so the
Recorder output (order, times, packet ids) is bit-identical to the
unbatched path; only ``events_fired`` accounting is condensed (each
successful advance still counts as one event).  Pass ``drain=False`` to
force the reference loop, ``drain=True`` to force draining.
"""

from __future__ import annotations

import itertools
import math
import time
from typing import Callable, Dict, Hashable, List, Optional

from repro.obs.metrics import BATCH_BUCKETS, LATENCY_BUCKETS_US
from repro.obs.scope import NULL_METRICS, NULL_TRACER
from repro.sim.events import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.recorder import Recorder


class TransmitEngine:
    """Drives one scheduler + link pair.

    ``scheduler`` is anything exposing ``on_arrival(flow_id, packet,
    now)``, ``schedule(now) -> List[Packet]`` and
    ``next_eligible_time(now)`` — a flat
    :class:`~repro.sched.framework.PieoScheduler`, a
    :class:`~repro.sched.hierarchical.HierarchicalScheduler`, or one of
    the baseline schedulers.

    ``admission`` is an optional gatekeeper called as ``admission(
    flow_id, packet) -> bool`` before the packet reaches the scheduler;
    a False return means the packet was refused (the caller — normally a
    :class:`~repro.sim.buffer.BufferManager` — is responsible for the
    drop event).  ``departure_hook`` is an optional ``hook(packet)``
    called once per transmitted packet, releasing buffer occupancy.
    Both default to None, leaving the single-engine behaviour (and
    output) untouched.
    """

    def __init__(self, sim: Simulator, scheduler, link: Link,
                 recorder: Optional[Recorder] = None,
                 tracer=None, metrics=None,
                 drain: Optional[bool] = None,
                 admission: Optional[Callable[[Hashable, Packet],
                                              bool]] = None,
                 departure_hook: Optional[Callable[[Packet],
                                                   None]] = None) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.link = link
        self.admission = admission
        self.departure_hook = departure_hook
        # Declare ourselves to the simulator: with >1 registered
        # engines, Simulator.advance_to refuses every fast-forward and
        # the drain falls back to its event-driven tail, which
        # serializes engines correctly through the shared queue.
        sim.register_clock_consumer()
        self.recorder = recorder if recorder is not None else Recorder()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = metrics if metrics is not None else NULL_METRICS
        self._traced = self.tracer is not NULL_TRACER
        self._metered = self.metrics is not NULL_METRICS
        if drain is None:
            # Auto: drain only when nothing observes the event-level
            # behaviour the drain condenses.
            drain = (not self._traced and not self._metered
                     and sim.tracer is NULL_TRACER
                     and sim.metrics is NULL_METRICS)
        self.drain_enabled = bool(drain)
        #: Per-flow departure callbacks (e.g. BackloggedSource refills).
        self.departure_listeners: Dict[Hashable,
                                       Callable[[], None]] = {}
        self._retry_handle = None
        self._retry_timer_id = None
        self._retry_ids = itertools.count()
        self._kick_pending = False
        # Metrics instruments (no-ops on the default null registry).
        self._c_arrivals = self.metrics.counter("engine.arrivals")
        self._c_departures = self.metrics.counter("engine.departures")
        self._c_kicks = self.metrics.counter("engine.kicks")
        self._c_retry_arms = self.metrics.counter("engine.retry_arms")
        self._g_backlog_pkts = self.metrics.gauge("engine.backlog_pkts")
        self._g_backlog_bytes = self.metrics.gauge("engine.backlog_bytes")
        self._h_batch = self.metrics.histogram("engine.batch_size",
                                               BATCH_BUCKETS)
        self._h_schedule_us = self.metrics.histogram(
            "engine.schedule_us", LATENCY_BUCKETS_US)

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def arrival_sink(self, flow_id: Hashable, packet: Packet) -> None:
        """Feed a packet in (plug this into the traffic generators)."""
        now = self.sim.now
        packet.arrival_time = now
        if self._traced:
            self.tracer.arrival(now, flow_id, packet.size_bytes,
                                packet.packet_id)
        if self._metered:
            self._c_arrivals.inc()
        # Admission runs after the arrival trace/counter (so the
        # analyzer's conservation audit sees the packet arrive before
        # any drop event) but before the packet touches backlog gauges
        # or the scheduler.
        if self.admission is not None \
                and not self.admission(flow_id, packet):
            return
        if self._metered:
            self._g_backlog_pkts.inc()
            self._g_backlog_bytes.inc(packet.size_bytes)
        self.scheduler.on_arrival(flow_id, packet, now)
        self.kick()

    def add_departure_listener(self, flow_id: Hashable,
                               callback: Callable[[], None]) -> None:
        self.departure_listeners[flow_id] = callback

    def kick(self) -> None:
        """Request a scheduling attempt as soon as the link is idle."""
        if self._kick_pending:
            return
        self._kick_pending = True
        sim = self.sim
        at = self.link.busy_until
        if at < sim.now:
            at = sim.now
        if self._traced:
            self.tracer.kick(sim.now, at=at)
        if self._metered:
            self._c_kicks.inc()
        sim.schedule(at, self._try_transmit)

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def _try_transmit(self) -> None:
        self._kick_pending = False
        now = self.sim.now
        if not self.link.is_idle(now):
            self.kick()
            return
        self._cancel_retry(now)
        if self.drain_enabled:
            self._drain(now)
            return
        if self._metered:
            start = time.perf_counter()
            packets = self.scheduler.schedule(now)
            self._h_schedule_us.observe(
                (time.perf_counter() - start) * 1e6)
            self._h_batch.observe(len(packets))
        else:
            packets = self.scheduler.schedule(now)
        if packets:
            self._transmit_batch(packets, now)
            return
        self._arm_retry(now)

    def _drain(self, now: float) -> None:
        """Fast path: transmit consecutive single-packet dequeues in one
        callback, advancing the clock between them.

        Equivalence with the event-driven loop (which this replaces only
        on unobserved runs): each iteration plays the ``listener event →
        _try_transmit event`` pair the unbatched path would schedule at
        the packet's finish time.  ``advance_to`` refuses whenever any
        pending event fires at or before the finish instant (or the run
        horizon / event budget is hit), in which case the loop schedules
        exactly the events the unbatched path would have and exits —
        so interleaving, and hence Recorder output, never changes.
        """
        sim = self.sim
        schedule = self.scheduler.schedule
        link_transmit = self.link.transmit
        record = self.recorder.record
        listeners = self.departure_listeners
        advance = sim.advance_to
        departure_hook = self.departure_hook
        while True:
            packets = schedule(now)
            if not packets:
                self._arm_retry(now)
                return
            if len(packets) != 1:
                self._transmit_batch(packets, now)
                return
            packet = packets[0]
            finish = link_transmit(packet, now)
            packet.departure_time = finish
            record(now, packet.flow_id, packet.size_bytes,
                   packet.packet_id)
            if departure_hook is not None:
                departure_hook(packet)
            listener = listeners.get(packet.flow_id)
            if not advance(finish):
                # Event-driven tail, exactly as _transmit_batch does it:
                # listener first, then the re-kick, so pending events at
                # earlier instants interleave identically.
                if listener is not None:
                    sim.schedule(finish, listener)
                self.kick()
                return
            now = finish
            if listener is not None:
                # The unbatched path runs the listener while the re-kick
                # is still pending, so arrivals it triggers must not
                # double-kick.
                self._kick_pending = True
                listener()
                self._kick_pending = False

    def _transmit_batch(self, packets: List[Packet], now: float) -> None:
        # A retry timer armed for a now-stale eligibility instant must not
        # survive a transmission: the batch itself re-kicks the loop, and
        # a stale wakeup would double-kick the scheduler (observable as a
        # spurious extra schedule() probe between batches).
        self._cancel_retry(now)
        start = now
        traced = self._traced
        metered = self._metered
        link_transmit = self.link.transmit
        record = self.recorder.record
        listeners = self.departure_listeners
        sim_schedule = self.sim.schedule
        departure_hook = self.departure_hook
        for packet in packets:
            finish = link_transmit(packet, start)
            packet.departure_time = finish
            record(start, packet.flow_id, packet.size_bytes,
                   packet.packet_id)
            if departure_hook is not None:
                departure_hook(packet)
            if traced:
                self.tracer.departure(start, packet.flow_id,
                                      packet.size_bytes, packet.packet_id,
                                      finish=finish,
                                      arrival_t=packet.arrival_time)
            if metered:
                self._c_departures.inc()
                self._g_backlog_pkts.dec()
                self._g_backlog_bytes.dec(packet.size_bytes)
            listener = listeners.get(packet.flow_id)
            if listener is not None:
                sim_schedule(finish, listener)
            start = finish
        if traced:
            self.tracer.link_idle(start)
        # Link idle again at the end of the batch: schedule the next try.
        self.kick()

    def _cancel_retry(self, now: float) -> None:
        if self._retry_handle is not None:
            self._retry_handle.cancel()
            if self._traced:
                self.tracer.timer_cancel(now, self._retry_timer_id,
                                         scope="engine.retry")
            self._retry_handle = None
            self._retry_timer_id = None

    def _arm_retry(self, now: float) -> None:
        """Nothing eligible: wake at the next eligibility instant."""
        next_time = self.scheduler.next_eligible_time(now)
        if math.isinf(next_time):
            return  # only a new arrival can make progress
        wake_at = max(next_time, now)
        if wake_at == now:
            # An element is nominally eligible but the scheduler returned
            # nothing (e.g. empty logical partition); avoid livelock by
            # waiting for the next arrival.
            return
        self._retry_timer_id = next(self._retry_ids)
        if self._traced:
            self.tracer.timer_arm(now, self._retry_timer_id,
                                  deadline=wake_at, scope="engine.retry")
        if self._metered:
            self._c_retry_arms.inc()
        self._retry_handle = self.sim.schedule(wake_at, self._on_retry)

    def _on_retry(self) -> None:
        """The armed retry timer fired: it is spent, so drop the handle
        before kicking (otherwise a later cancel() would be a no-op on a
        dead event while a fresh timer goes untracked)."""
        if self._traced:
            self.tracer.timer_fire(self.sim.now, self._retry_timer_id,
                                   scope="engine.retry")
        self._retry_handle = None
        self._retry_timer_id = None
        self.kick()
