"""Transmit engine: connects a scheduler to a link inside the simulator.

Implements the output-triggered scheduling loop of Fig. 3: whenever the
link goes idle, ask the scheduler for the next packet(s); when the
scheduler is non-work-conserving and nothing is currently eligible, set a
timer for the next eligibility instant; otherwise wait for the next
arrival to kick scheduling again.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Hashable, List, Optional

from repro.sim.events import Simulator
from repro.sim.link import Link
from repro.sim.packet import Packet
from repro.sim.recorder import Recorder


class TransmitEngine:
    """Drives one scheduler + link pair.

    ``scheduler`` is anything exposing ``on_arrival(flow_id, packet,
    now)``, ``schedule(now) -> List[Packet]`` and
    ``next_eligible_time(now)`` — a flat
    :class:`~repro.sched.framework.PieoScheduler`, a
    :class:`~repro.sched.hierarchical.HierarchicalScheduler`, or one of
    the baseline schedulers.
    """

    def __init__(self, sim: Simulator, scheduler, link: Link,
                 recorder: Optional[Recorder] = None) -> None:
        self.sim = sim
        self.scheduler = scheduler
        self.link = link
        self.recorder = recorder if recorder is not None else Recorder()
        #: Per-flow departure callbacks (e.g. BackloggedSource refills).
        self.departure_listeners: Dict[Hashable,
                                       Callable[[], None]] = {}
        self._retry_handle = None
        self._kick_pending = False

    # ------------------------------------------------------------------
    # Inputs
    # ------------------------------------------------------------------
    def arrival_sink(self, flow_id: Hashable, packet: Packet) -> None:
        """Feed a packet in (plug this into the traffic generators)."""
        self.scheduler.on_arrival(flow_id, packet, self.sim.now)
        self.kick()

    def add_departure_listener(self, flow_id: Hashable,
                               callback: Callable[[], None]) -> None:
        self.departure_listeners[flow_id] = callback

    def kick(self) -> None:
        """Request a scheduling attempt as soon as the link is idle."""
        if self._kick_pending:
            return
        self._kick_pending = True
        at = max(self.sim.now, self.link.busy_until)
        self.sim.schedule(at, self._try_transmit)

    # ------------------------------------------------------------------
    # The scheduling loop
    # ------------------------------------------------------------------
    def _try_transmit(self) -> None:
        self._kick_pending = False
        now = self.sim.now
        if not self.link.is_idle(now):
            self.kick()
            return
        if self._retry_handle is not None:
            self._retry_handle.cancel()
            self._retry_handle = None
        packets = self.scheduler.schedule(now)
        if packets:
            self._transmit_batch(packets, now)
            return
        self._arm_retry(now)

    def _transmit_batch(self, packets: List[Packet], now: float) -> None:
        # A retry timer armed for a now-stale eligibility instant must not
        # survive a transmission: the batch itself re-kicks the loop, and
        # a stale wakeup would double-kick the scheduler (observable as a
        # spurious extra schedule() probe between batches).
        if self._retry_handle is not None:
            self._retry_handle.cancel()
            self._retry_handle = None
        start = now
        for packet in packets:
            finish = self.link.transmit(packet, start)
            packet.departure_time = finish
            self.recorder.record(start, packet.flow_id, packet.size_bytes,
                                 packet.packet_id)
            listener = self.departure_listeners.get(packet.flow_id)
            if listener is not None:
                self.sim.schedule(finish, listener)
            start = finish
        # Link idle again at the end of the batch: schedule the next try.
        self.kick()

    def _arm_retry(self, now: float) -> None:
        """Nothing eligible: wake at the next eligibility instant."""
        next_time = self.scheduler.next_eligible_time(now)
        if math.isinf(next_time):
            return  # only a new arrival can make progress
        wake_at = max(next_time, now)
        if wake_at == now:
            # An element is nominally eligible but the scheduler returned
            # nothing (e.g. empty logical partition); avoid livelock by
            # waiting for the next arrival.
            return
        self._retry_handle = self.sim.schedule(wake_at, self._on_retry)

    def _on_retry(self) -> None:
        """The armed retry timer fired: it is spent, so drop the handle
        before kicking (otherwise a later cancel() would be a no-op on a
        dead event while a fresh timer goes untracked)."""
        self._retry_handle = None
        self.kick()
