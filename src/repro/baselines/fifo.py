"""FIFO scheduling (Section 2.3).

"FIFO is the most basic scheduling primitive, which simply schedules
elements in the order of their arrival. ... FIFO based schedulers are the
most common packet schedulers in hardware, as their simplicity enables
both fast and scalable scheduling" — at the price of expressing almost no
scheduling policy.  Used as the expressiveness baseline.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Dict, Hashable, List

from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


class FifoScheduler:
    """Transmit-engine-compatible single FIFO over all arriving packets."""

    def __init__(self) -> None:
        self.queue: Deque[Packet] = deque()
        self.flows: Dict[Hashable, FlowQueue] = {}
        self.decisions = 0

    def add_flow(self, flow: FlowQueue) -> FlowQueue:
        self.flows[flow.flow_id] = flow
        return flow

    def on_arrival(self, flow_id: Hashable, packet: Packet,
                   now: float) -> bool:
        self.queue.append(packet)
        return len(self.queue) == 1

    def schedule(self, now: float) -> List[Packet]:
        self.decisions += 1
        if not self.queue:
            return []
        return [self.queue.popleft()]

    def next_eligible_time(self, now: float) -> float:
        return math.inf
