"""P-heap: the pipelined-heap priority queue baseline (Section 7).

"P-heap [7] is a scalable heap-based implementation of priority queue in
hardware.  Unfortunately, a heap-based priority queue cannot efficiently
implement the 'Extract-Out' primitive in PIEO."

This model implements a binary heap the way P-heap lays it out in
hardware — one SRAM block per level, so one level is touched per cycle
as an insert/delete token trickles down — and charges cycles
accordingly:

* ``enqueue``  : one cycle per level touched — O(log N);
* ``dequeue_min``: root removal + trickle-down — O(log N);
* ``dequeue(now)`` (the Extract-Out semantics): the heap property says
  *nothing* about where the smallest **eligible** element lives, so the
  hardware must scan; the model performs a heap-order traversal that
  prunes only on rank (never on eligibility), visiting up to N nodes —
  the inefficiency the paper points at;
* ``dequeue(f)``: same problem — a positional search.

Resource shape: O(N) SRAM like PIEO, but only O(log N) comparators —
cheaper logic than PIEO, bought by giving up Extract-Out.
"""

from __future__ import annotations

import heapq
import math
from typing import Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.core.opstats import OpCounters
from repro.errors import CapacityError, DuplicateFlowError


class PHeap(PieoList):
    """Cycle-modeled binary min-heap keyed by ``(rank, seq)``."""

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._capacity = capacity
        self._heap: List[Element] = []
        self._next_seq = 0
        self.counters = OpCounters()

    # ------------------------------------------------------------------
    # Interface basics
    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._heap)

    def __contains__(self, flow_id: Hashable) -> bool:
        return any(element.flow_id == flow_id for element in self._heap)

    def snapshot(self) -> List[Element]:
        return sorted(self._heap, key=lambda element: element.sort_key())

    def min_send_time(self) -> Time:
        if not self._heap:
            return math.inf
        return min(element.send_time for element in self._heap)

    def levels(self) -> int:
        """Heap depth == SRAM levels touched by a trickle operation."""
        return max(1, math.ceil(math.log2(len(self._heap) + 1)))

    # ------------------------------------------------------------------
    # O(log N) operations — the heap's home turf
    # ------------------------------------------------------------------
    def enqueue(self, element: Element) -> None:
        if len(self._heap) >= self._capacity:
            raise CapacityError(f"P-heap full (capacity {self._capacity})")
        if element.flow_id in self:
            raise DuplicateFlowError(
                f"flow {element.flow_id!r} already resident")
        element.seq = self._next_seq
        self._next_seq += 1
        self._heap.append(element)
        self._sift_up(len(self._heap) - 1)
        self.counters.charge_op("enqueue", self.levels())

    def dequeue_min(self) -> Optional[Element]:
        """The priority-queue dequeue: smallest rank, eligibility
        ignored (what a heap can do in O(log N))."""
        if not self._heap:
            self.counters.charge_op("dequeue_null", 1)
            return None
        cycles = self.levels()
        smallest = self._remove_at(0)
        self.counters.charge_op("dequeue_min", cycles)
        return smallest

    def peek_min(self) -> Optional[Element]:
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Extract-Out semantics — where the heap structure stops helping
    # ------------------------------------------------------------------
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        """Smallest ranked *eligible* element.

        The heap invariant orders parents before children by rank only,
        so eligibility-aware extraction must search the tree; a node is
        visited before its children (best-first traversal) and nothing
        prunes on eligibility — up to N visits, each charged a cycle and
        a comparator."""
        best = self._search_eligible(now, group_range)
        if best is None:
            self.counters.charge_op("dequeue_null", 1)
            return None
        index, _ = best
        element = self._remove_at(index)
        self.counters.charge_op("dequeue", self._last_search_cost
                                + self.levels())
        return element

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        best = self._search_eligible(now, group_range, charge=False)
        return self._heap[best[0]] if best is not None else None

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        """Positional search (no index structure in a plain heap)."""
        for index, element in enumerate(self._heap):
            self.counters.charge_compare(1)
            if element.flow_id == flow_id:
                removed = self._remove_at(index)
                self.counters.charge_op("dequeue_flow",
                                        index + 1 + self.levels())
                return removed
        self.counters.charge_op("dequeue_flow_null", 1)
        return None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    _last_search_cost = 0

    def _search_eligible(self, now: Time,
                         group_range: Optional[Tuple[int, int]],
                         charge: bool = True) -> Optional[Tuple[int, Element]]:
        """Best-first traversal: expand nodes in rank order; the first
        eligible node found is the answer (all unexpanded nodes have
        larger rank).  Worst case visits every node."""
        if not self._heap:
            return None
        visited = 0
        frontier = [(self._heap[0].sort_key(), 0)]
        while frontier:
            _, index = heapq.heappop(frontier)
            visited += 1
            if charge:
                self.counters.charge_compare(1)
            element = self._heap[index]
            if element.is_eligible(now, group_range):
                self._last_search_cost = visited
                return index, element
            for child in (2 * index + 1, 2 * index + 2):
                if child < len(self._heap):
                    heapq.heappush(frontier,
                                   (self._heap[child].sort_key(), child))
        self._last_search_cost = visited
        return None

    def _remove_at(self, index: int) -> Element:
        element = self._heap[index]
        last = self._heap.pop()
        if index < len(self._heap):
            self._heap[index] = last
            parent = (index - 1) // 2
            if index > 0 and last.sort_key() < self._heap[
                    parent].sort_key():
                self._sift_up(index)
            else:
                self._sift_down(index)
        return element

    def _sift_up(self, index: int) -> None:
        heap = self._heap
        while index > 0:
            parent = (index - 1) // 2
            self.counters.charge_compare(1)
            if heap[index].sort_key() < heap[parent].sort_key():
                heap[index], heap[parent] = heap[parent], heap[index]
                index = parent
            else:
                return

    def _sift_down(self, index: int) -> None:
        heap = self._heap
        size = len(heap)
        while True:
            smallest = index
            for child in (2 * index + 1, 2 * index + 2):
                if child < size:
                    self.counters.charge_compare(1)
                    if heap[child].sort_key() < heap[smallest].sort_key():
                        smallest = child
            if smallest == index:
                return
            heap[index], heap[smallest] = heap[smallest], heap[index]
            index = smallest

    def check(self) -> None:
        """Verify the heap property (test hook)."""
        for index in range(1, len(self._heap)):
            parent = (index - 1) // 2
            assert (self._heap[parent].sort_key()
                    <= self._heap[index].sort_key()), "heap order broken"
