"""WF2Q+ emulation attempts on PIFO — the Fig. 2 expressiveness study.

Section 2.3 argues that WF2Q+ — schedule the *smallest-finish-time* flow
among flows whose *start time* has been reached — cannot be expressed on
PIFO:

* a single PIFO ordered by finish time ignores eligibility and serves
  ineligible packets early (Fig. 2d, top row);
* a single PIFO ordered by start time serves eligible packets in start
  order, not finish order (Fig. 2d, bottom row);
* two PIFOs (an eligibility PIFO ordered by start time releasing into a
  rank PIFO ordered by finish time, Fig. 2e) still fail, because O(N)
  elements can become eligible at the same instant and the eligibility
  PIFO releases them one per decision in *start* order — so an element
  with a larger start but smaller finish waits behind its release,
  deviating by up to O(N) positions from the ideal order.

This module implements the ideal WF2Q+ reference and all three PIFO
emulations over a common workload description (one head packet per flow,
with precomputed virtual start/finish times), and measures order
deviation.  PIEO itself reproduces the ideal order exactly — asserted in
the Fig. 2 tests and benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple


@dataclass(frozen=True)
class HeadPacket:
    """One flow's head packet in the Fig. 2 example system."""

    name: str
    length: float          # transmission length (virtual-time units)
    start_time: float      # virtual start (eligibility) time
    finish_time: float     # virtual finish time (the WF2Q+ rank)


def ideal_wf2q_order(packets: Sequence[HeadPacket]) -> List[str]:
    """The ideal WF2Q+ schedule (Fig. 2c): among packets with
    ``start_time <= virtual_time`` serve the smallest finish time; the
    virtual clock advances by each served packet's length, jumping to the
    earliest start time when nothing is eligible."""
    pending = list(packets)
    virtual_time = 0.0
    order: List[str] = []
    while pending:
        eligible = [p for p in pending if p.start_time <= virtual_time]
        if not eligible:
            virtual_time = min(p.start_time for p in pending)
            continue
        chosen = min(eligible, key=lambda p: (p.finish_time, p.start_time))
        order.append(chosen.name)
        pending.remove(chosen)
        virtual_time += chosen.length
    return order


def single_pifo_order(packets: Sequence[HeadPacket],
                      key: str = "finish_time") -> List[str]:
    """A single PIFO ordered by ``key`` (Fig. 2d): dequeue is always from
    the head, so the order is simply the rank order — eligibility is
    ignored entirely."""
    if key not in ("finish_time", "start_time"):
        raise ValueError("key must be 'finish_time' or 'start_time'")
    ranked = sorted(packets, key=lambda p: getattr(p, key))
    return [p.name for p in ranked]


def two_pifo_order(packets: Sequence[HeadPacket]) -> List[str]:
    """The two-PIFO emulation (Fig. 2e).

    Eligibility PIFO (ordered by start time) releases its head into the
    rank PIFO (ordered by finish time) when the head becomes eligible;
    one release opportunity exists per scheduling decision.  The rank
    PIFO transmits its head.  Because releases happen in start-time
    order, a simultaneous eligibility burst is serialized and the wrong
    element can reach the rank PIFO first (the paper's C/D inversion).
    """
    eligibility = sorted(packets, key=lambda p: p.start_time)
    rank: List[HeadPacket] = []
    virtual_time = 0.0
    order: List[str] = []
    while eligibility or rank:
        # One release opportunity per decision: move the eligibility-PIFO
        # head if its start time has been reached.
        if eligibility and eligibility[0].start_time <= virtual_time:
            released = eligibility.pop(0)
            position = len(rank)
            for index, resident in enumerate(rank):
                if resident.finish_time > released.finish_time:
                    position = index
                    break
            rank.insert(position, released)
        if rank:
            chosen = rank.pop(0)
            order.append(chosen.name)
            virtual_time += chosen.length
        elif eligibility:
            # Idle: jump to the next eligibility instant.
            virtual_time = max(virtual_time, eligibility[0].start_time)
    return order


def order_deviation(ideal: Sequence[str],
                    actual: Sequence[str]) -> Tuple[int, float]:
    """(max, mean) per-element deviation between two schedules."""
    positions = {name: index for index, name in enumerate(actual)}
    deviations = [abs(index - positions[name])
                  for index, name in enumerate(ideal)]
    if not deviations:
        return 0, 0.0
    return max(deviations), sum(deviations) / len(deviations)


def paper_example() -> List[HeadPacket]:
    """A six-flow example reconstructed from Fig. 2's description.

    The published figure is not machine-readable in our source text, so
    the exact constants differ, but the example preserves every property
    the prose relies on: packets of different sizes; C, D, E and F all
    become eligible at the same virtual instant (t=5); C then has the
    smallest finish time of all waiting packets but *not* the smallest
    start time, so (i) a finish-ordered single PIFO serves C before it is
    eligible, (ii) a start-ordered single PIFO serves D before C, and
    (iii) the two-PIFO emulation releases D into the rank PIFO first and
    schedules D before C — the inversion described in Section 2.3.
    """
    return [
        HeadPacket("A", length=10, start_time=0, finish_time=20),
        HeadPacket("B", length=20, start_time=0, finish_time=45),
        HeadPacket("C", length=5, start_time=5, finish_time=15),
        HeadPacket("D", length=10, start_time=4, finish_time=55),
        HeadPacket("E", length=10, start_time=5, finish_time=60),
        HeadPacket("F", length=5, start_time=5, finish_time=65),
    ]
