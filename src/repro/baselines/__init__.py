"""Baseline schedulers and datastructures the paper compares against."""

from repro.baselines.approximate import (CalendarQueue, MultiPriorityFifo,
                                         TimingWheel)
from repro.baselines.fifo import FifoScheduler
from repro.baselines.pheap import PHeap
from repro.baselines.pifo_scheduler import PifoShapingScheduler
from repro.baselines.pifo_wf2q import (HeadPacket, ideal_wf2q_order,
                                       order_deviation, paper_example,
                                       single_pifo_order, two_pifo_order)

__all__ = [
    "CalendarQueue",
    "MultiPriorityFifo",
    "TimingWheel",
    "FifoScheduler",
    "PHeap",
    "PifoShapingScheduler",
    "HeadPacket",
    "ideal_wf2q_order",
    "order_deviation",
    "paper_example",
    "single_pifo_order",
    "two_pifo_order",
]
