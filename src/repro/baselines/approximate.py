"""Approximate priority structures (Section 2.3).

"In principle, one could use approximate datastructures, such as a
multi-priority fifo queue [1], a calendar queue [10], a timing wheel
[40], or a multi-level feedback queue [4], to implement an approximate
version of the PIFO primitive. ... However, by design, they could only
express approximate versions of key packet scheduling algorithms,
invariably resulting in weaker performance guarantees.  Further, these
datastructures also tend to have several performance-critical
configuration parameters ... which are not trivial to fine-tune."

These implementations exist to *quantify* that argument: the ablation
benchmark measures each structure's scheduling-order deviation from the
exact PIEO order as a function of its configuration parameters.

All three expose the :class:`repro.core.interfaces.PieoList` interface so
they can be dropped into the scheduler framework, but their dequeue is
only approximately "smallest ranked eligible".
"""

from __future__ import annotations

import math
from collections import deque
from typing import Deque, Hashable, List, Optional, Tuple

from repro.core.element import Element, Time
from repro.core.interfaces import PieoList
from repro.errors import ConfigurationError


class _BucketedList(PieoList):
    """Shared machinery: elements hashed into FIFO buckets by a key."""

    def __init__(self, num_buckets: int, bucket_width: float) -> None:
        if num_buckets < 1:
            raise ConfigurationError("need at least one bucket")
        if bucket_width <= 0:
            raise ConfigurationError("bucket width must be positive")
        self.num_buckets = num_buckets
        self.bucket_width = bucket_width
        self.buckets: List[Deque[Element]] = [
            deque() for _ in range(num_buckets)]
        self._count = 0
        self._next_seq = 0

    # -- key --------------------------------------------------------------
    def _key(self, element: Element) -> float:
        raise NotImplementedError

    def bucket_index(self, element: Element) -> int:
        raw = int(self._key(element) / self.bucket_width)
        return min(raw, self.num_buckets - 1)

    # -- OrderedList ------------------------------------------------------
    @property
    def capacity(self) -> int:
        return int(2 ** 62)

    def __len__(self) -> int:
        return self._count

    def enqueue(self, element: Element) -> None:
        element.seq = self._next_seq
        self._next_seq += 1
        self.buckets[self.bucket_index(element)].append(element)
        self._count += 1

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        for bucket in self.buckets:
            for index, element in enumerate(bucket):
                if element.flow_id == flow_id:
                    del bucket[index]
                    self._count -= 1
                    return element
        return None

    def snapshot(self) -> List[Element]:
        elements: List[Element] = []
        for bucket in self.buckets:
            elements.extend(bucket)
        return elements

    def min_send_time(self) -> Time:
        times = [element.send_time for element in self.snapshot()]
        return min(times) if times else math.inf

    # -- PieoList ----------------------------------------------------------
    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        position = self._find(now, group_range)
        if position is None:
            return None
        bucket_index, element_index = position
        element = self.buckets[bucket_index][element_index]
        del self.buckets[bucket_index][element_index]
        self._count -= 1
        return element

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        position = self._find(now, group_range)
        if position is None:
            return None
        bucket_index, element_index = position
        return self.buckets[bucket_index][element_index]

    def _find(self, now: Time, group_range: Optional[Tuple[int, int]],
              ) -> Optional[Tuple[int, int]]:
        """First eligible element in bucket-then-FIFO order — the
        approximation: rank order *within* a bucket is lost."""
        for bucket_index, bucket in enumerate(self.buckets):
            for element_index, element in enumerate(bucket):
                if element.is_eligible(now, group_range):
                    return bucket_index, element_index
        return None


class CalendarQueue(_BucketedList):
    """Calendar queue [Brown 1988]: buckets over the *rank* space.

    ``bucket_width`` ranks share one FIFO bucket; ranks beyond
    ``num_buckets * bucket_width`` all land in the final bucket.  Dequeue
    approximates smallest-rank-eligible to bucket granularity.
    """

    def _key(self, element: Element) -> float:
        return float(element.rank)


class TimingWheel(_BucketedList):
    """Timing wheel [Varghese & Lauck 1987]: slots over *send_time*.

    Ideal for pacing (eligibility is honoured to slot granularity), but
    rank order among simultaneously eligible elements is lost entirely.
    """

    def _key(self, element: Element) -> float:
        if math.isinf(element.send_time):
            return self.num_buckets * self.bucket_width
        return float(element.send_time)


class MultiPriorityFifo(PieoList):
    """Multi-priority FIFO queues (802.1Q [1]): ``num_levels`` strict
    priority levels; rank is quantized onto the levels with
    ``level_width`` ranks per level.

    Unlike the bucketed structures, only the *head* of each level is
    considered at dequeue (hardware reality for per-class FIFOs), so an
    ineligible head blocks its whole level — the head-of-line blocking
    that costs non-work-conserving accuracy.
    """

    def __init__(self, num_levels: int, level_width: float) -> None:
        if num_levels < 1:
            raise ConfigurationError("need at least one level")
        if level_width <= 0:
            raise ConfigurationError("level width must be positive")
        self.num_levels = num_levels
        self.level_width = level_width
        self.levels: List[Deque[Element]] = [
            deque() for _ in range(num_levels)]
        self._count = 0
        self._next_seq = 0

    def level_index(self, element: Element) -> int:
        raw = int(float(element.rank) / self.level_width)
        return min(raw, self.num_levels - 1)

    @property
    def capacity(self) -> int:
        return int(2 ** 62)

    def __len__(self) -> int:
        return self._count

    def enqueue(self, element: Element) -> None:
        element.seq = self._next_seq
        self._next_seq += 1
        self.levels[self.level_index(element)].append(element)
        self._count += 1

    def dequeue(self, now: Time,
                group_range: Optional[Tuple[int, int]] = None,
                ) -> Optional[Element]:
        for level in self.levels:
            if not level:
                continue
            if level[0].is_eligible(now, group_range):
                self._count -= 1
                return level.popleft()
        return None

    def peek(self, now: Time,
             group_range: Optional[Tuple[int, int]] = None,
             ) -> Optional[Element]:
        for level in self.levels:
            if level and level[0].is_eligible(now, group_range):
                return level[0]
        return None

    def dequeue_flow(self, flow_id: Hashable) -> Optional[Element]:
        for level in self.levels:
            for index, element in enumerate(level):
                if element.flow_id == flow_id:
                    del level[index]
                    self._count -= 1
                    return element
        return None

    def snapshot(self) -> List[Element]:
        elements: List[Element] = []
        for level in self.levels:
            elements.extend(level)
        return elements

    def min_send_time(self) -> Time:
        times = [element.send_time for element in self.snapshot()]
        return min(times) if times else math.inf
