"""An end-to-end PIFO-based scheduler for shaping comparisons.

Models a NIC that computes per-flow token-bucket send times (the same
state machine PIEO uses) but enforces them with a *PIFO*: elements are
ordered by send time, and dequeue always pops the head — there is no way
to hold back the head until its time arrives.  The result is correct
*ordering* but no *deferral*: with backlog, packets leave at line rate
regardless of the configured limits.

This is the Section 2.3 expressiveness argument made measurable at the
packet level; the `end_to_end_shaping` experiment compares it against
PIEO and a plain FIFO.
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List

from repro.core.element import Element
from repro.core.pifo import PifoHardwareList
from repro.sched.token_bucket import TokenBucket
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet


class PifoShapingScheduler:
    """Token-bucket *rankings* on a PIFO (which cannot defer).

    Engine-compatible: ``on_arrival`` / ``schedule`` /
    ``next_eligible_time``.
    """

    def __init__(self, capacity: int = 1024,
                 link_rate_bps: float = 40e9) -> None:
        self.pifo = PifoHardwareList(capacity)
        self.flows: Dict[Hashable, FlowQueue] = {}
        self.link_rate_bps = link_rate_bps
        self._bucket = TokenBucket()
        self.decisions = 0

    def add_flow(self, flow: FlowQueue) -> FlowQueue:
        self.flows[flow.flow_id] = flow
        return flow

    def _rank_and_enqueue(self, flow: FlowQueue, now: float) -> None:
        send_time = self._bucket._charge(flow, now, flow.head_size())
        self.pifo.enqueue(Element(flow_id=flow.flow_id, rank=send_time,
                                  send_time=send_time))

    def on_arrival(self, flow_id: Hashable, packet: Packet,
                   now: float) -> bool:
        flow = self.flows[flow_id]
        was_empty = flow.push(packet)
        if was_empty:
            self._rank_and_enqueue(flow, now)
        return was_empty

    def schedule(self, now: float) -> List[Packet]:
        element = self.pifo.dequeue()  # head pop — eligibility ignored
        if element is None:
            return []
        self.decisions += 1
        flow = self.flows[element.flow_id]
        packet = flow.pop()
        if not flow.is_empty:
            self._rank_and_enqueue(flow, now)
        return [packet]

    def next_eligible_time(self, now: float) -> float:
        return math.inf  # a PIFO head is always "eligible"
