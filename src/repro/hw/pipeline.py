"""Pipelining analysis for the PIEO datapath (Section 6.2).

The paper's prototype is non-pipelined: one primitive operation per 4
cycles.  Section 6.2 analyses what pipelining could add:

* a *fully* pipelined design (one op per cycle) is impossible, because
  cycles 2 and 4 of every operation each consume **both** ports of the
  dual-port SRAM (two sublists read / written), so the memory stages of
  different operations can never overlap;
* "by carefully scheduling the primitive operations, one can still
  achieve some degree of pipelining" — the compute stages (cycles 1 and
  3: pointer-array compare/encode and sublist compare/encode) use
  disjoint logic from the memory stages, so operation *i+1* may occupy
  a compute stage while operation *i* occupies a memory stage.

This module models exactly that structural-hazard analysis.  Each
operation is the 4-stage sequence ``[COMPUTE, MEMORY, COMPUTE, MEMORY]``
and a new operation may issue at the earliest cycle such that no two
operations occupy a MEMORY stage in the same cycle (the compute stages
use distinct hardware units per stage, so they do not conflict under
the alternating schedule).  The result: a steady-state issue interval
of **2 cycles** — a 2x scheduling-rate improvement over the prototype,
but still half of PIFO's fully-pipelined 1 op/cycle, matching the
qualitative trade-off of Section 6.2.

The model captures the *structural* hazard only; data hazards between
back-to-back operations (op i+1's cycle-1 compare needs the pointer
array op i updates in its cycle 4) are assumed resolved by forwarding,
as is standard — this is the optimistic end of the paper's "some degree
of pipelining".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.core.pieo.hardware_list import CYCLES_PER_OP

#: Stage kinds of one PIEO primitive operation, in order (Section 5.2).
COMPUTE = "compute"
MEMORY = "memory"
OP_STAGES: Tuple[str, ...] = (COMPUTE, MEMORY, COMPUTE, MEMORY)


def earliest_issue(previous_issues: Sequence[int]) -> int:
    """Earliest cycle a new op may issue after ops issued at
    ``previous_issues`` without a memory-port conflict.

    Memory stages of an op issued at cycle ``t`` occupy cycles ``t+1``
    and ``t+3`` (0-indexed stages 1 and 3).
    """
    candidate = (previous_issues[-1] + 1) if previous_issues else 0
    while True:
        new_memory = {candidate + 1, candidate + 3}
        conflict = False
        for issue in previous_issues:
            if new_memory & {issue + 1, issue + 3}:
                conflict = True
                break
        if not conflict:
            return candidate
        candidate += 1


def pipelined_schedule(num_ops: int) -> List[int]:
    """Issue cycles for ``num_ops`` back-to-back operations under the
    memory-port constraint (greedy earliest-issue)."""
    if num_ops < 0:
        raise ValueError("num_ops must be non-negative")
    issues: List[int] = []
    for _ in range(num_ops):
        issues.append(earliest_issue(issues))
    return issues


def pipelined_total_cycles(num_ops: int) -> int:
    """Cycles to retire ``num_ops`` ops on the partially pipelined
    datapath (last issue + depth)."""
    if num_ops == 0:
        return 0
    return pipelined_schedule(num_ops)[-1] + CYCLES_PER_OP


def nonpipelined_total_cycles(num_ops: int) -> int:
    """The prototype's serial execution."""
    return num_ops * CYCLES_PER_OP


@dataclass(frozen=True)
class PipelineReport:
    """Steady-state throughput comparison for one design point."""

    num_ops: int
    nonpipelined_cycles: int
    pipelined_cycles: int
    speedup: float
    issue_interval: float

    @property
    def ops_per_cycle(self) -> float:
        if self.pipelined_cycles == 0:
            return 0.0
        return self.num_ops / self.pipelined_cycles


def pipeline_report(num_ops: int = 1000) -> PipelineReport:
    serial = nonpipelined_total_cycles(num_ops)
    pipelined = pipelined_total_cycles(num_ops)
    issues = pipelined_schedule(num_ops)
    intervals = [after - before
                 for before, after in zip(issues, issues[1:])]
    mean_interval = (sum(intervals) / len(intervals)) if intervals else 0.0
    return PipelineReport(
        num_ops=num_ops,
        nonpipelined_cycles=serial,
        pipelined_cycles=pipelined,
        speedup=serial / pipelined if pipelined else 0.0,
        issue_interval=mean_interval,
    )
