"""SRAM layout and consumption model for the PIEO ordered list (Fig. 9).

Section 5.2 stores the ordered list as ``2 * ceil(N / s)`` sublists of
``s = ceil(sqrt(N))`` elements.  Each Rank-Sublist entry carries a flow id,
a rank, and a send_time; the Eligibility-Sublist keeps an ordered copy of
the send_time values.  The paper uses 16-bit rank and predicate fields
("We use 16-bit rank and predicate fields, same as in PIFO
implementation", Section 6), and the factor-of-2 sublist over-provisioning
is Invariant 1's price.

To read a whole sublist in one clock cycle, its entries are striped across
enough dual-port SRAM blocks to supply ``s * entry_bits`` in parallel;
SRAM is therefore consumed in block granules.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.pieo.hardware_list import default_sublist_size
from repro.hw.device import STRATIX_V, Device

#: Field widths (bits), matching the paper's prototype.
RANK_BITS = 16
SEND_TIME_BITS = 16
FLOW_ID_BITS = 16
#: Rank-Sublist entry + Eligibility-Sublist copy of send_time.
ENTRY_BITS = FLOW_ID_BITS + RANK_BITS + SEND_TIME_BITS + SEND_TIME_BITS


@dataclass(frozen=True)
class SramReport:
    """One row of Fig. 9: SRAM consumption at a given scheduler size."""

    capacity: int
    sublist_size: int
    num_sublists: int
    raw_bits: int
    blocks_required: int
    allocated_bits: int
    percent: float
    fits: bool


def sram_report(capacity: int, device: Device = STRATIX_V,
                sublist_size: int = None,
                entry_bits: int = ENTRY_BITS) -> SramReport:
    """SRAM footprint of a PIEO of ``capacity`` elements on ``device``."""
    size = (default_sublist_size(capacity)
            if sublist_size is None else sublist_size)
    num_sublists = 2 * math.ceil(capacity / size)
    raw_bits = num_sublists * size * entry_bits
    # Stripe one sublist row across enough blocks to read it in a cycle.
    row_bits = size * entry_bits
    blocks_for_row = math.ceil(row_bits / device.sram_block_width)
    # Each block must be deep enough for every sublist's slice; a 20 Kbit
    # block at width W holds block_bits / W rows.
    rows_per_block = device.sram_block_bits // device.sram_block_width
    block_sets = math.ceil(num_sublists / max(1, rows_per_block))
    blocks_required = blocks_for_row * block_sets
    allocated_bits = blocks_required * device.sram_block_bits
    return SramReport(
        capacity=capacity,
        sublist_size=size,
        num_sublists=num_sublists,
        raw_bits=raw_bits,
        blocks_required=blocks_required,
        allocated_bits=allocated_bits,
        percent=100.0 * device.sram_fraction(allocated_bits),
        fits=(allocated_bits <= device.sram_bits
              and blocks_required <= device.sram_blocks),
    )


def sram_overhead_factor(capacity: int) -> float:
    """Invariant 1's provisioning overhead: allocated slots / N.

    The paper bounds this at 2x ("to store N elements using sqrt(N)-sized
    sublists, one would require at most 2 sqrt(N) sublists (2x SRAM
    overhead)").
    """
    size = default_sublist_size(capacity)
    num_sublists = 2 * math.ceil(capacity / size)
    return num_sublists * size / capacity
