"""Target hardware device descriptions.

The paper prototypes PIEO on an Altera Stratix V FPGA (Section 6): 234 K
Adaptive Logic Modules (ALMs), 52 Mbit of SRAM organised as ~2500 dual-port
blocks of 20 Kbit each (one-cycle access), and a 40 Gbps interface.  It
also discusses scaling to newer FPGAs (Stratix 10) and ASICs (Section 6.2:
PIFO clocks at 1 GHz on an ASIC, where a PIEO primitive op would take
4 ns).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Device:
    """A synthesis target for the resource and clock models."""

    name: str
    #: Adaptive Logic Modules (or ASIC gate budget expressed in ALM
    #: equivalents).
    alms: int
    #: Total on-chip SRAM, in bits.
    sram_bits: int
    #: Size of one SRAM block, in bits.
    sram_block_bits: int
    #: Maximum read/write port width of one SRAM block, in bits.
    sram_block_width: int
    #: Number of independent dual-port SRAM blocks.
    sram_blocks: int
    #: Interface bandwidth in Gbit/s.
    interface_gbps: float
    #: Peak clock rate of a trivially small circuit, in MHz.
    base_clock_mhz: float

    def alm_fraction(self, alms: float) -> float:
        """Fraction of the device's logic consumed by ``alms`` modules."""
        return alms / self.alms

    def sram_fraction(self, bits: float) -> float:
        return bits / self.sram_bits


#: The paper's prototype device (Section 6; Intel/Altera Stratix V [17]).
STRATIX_V = Device(
    name="Stratix V",
    alms=234_000,
    sram_bits=52 * 1024 * 1024,
    sram_block_bits=20 * 1024,
    sram_block_width=40,
    sram_blocks=2_500,
    interface_gbps=40.0,
    base_clock_mhz=187.0,
)

#: A newer FPGA generation ([18]); roughly 4x the logic and SRAM and a
#: higher base clock.  Used for "more powerful FPGA" what-if experiments.
STRATIX_10 = Device(
    name="Stratix 10",
    alms=933_000,
    sram_bits=229 * 1024 * 1024,
    sram_block_bits=20 * 1024,
    sram_block_width=40,
    sram_blocks=11_721,
    interface_gbps=100.0,
    base_clock_mhz=400.0,
)

#: An ASIC target (Section 6.2: "At 1 GHz clock rate, each primitive
#: operation in PIEO would only take 4 ns").  Logic budget is nominal; the
#: clock model returns a flat 1 GHz for this device.
ASIC = Device(
    name="ASIC (1 GHz)",
    alms=10_000_000,
    sram_bits=256 * 1024 * 1024,
    sram_block_bits=20 * 1024,
    sram_block_width=80,
    sram_blocks=100_000,
    interface_gbps=100.0,
    base_clock_mhz=1_000.0,
)
