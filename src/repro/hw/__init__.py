"""Hardware device, logic, SRAM, and clock models (Figs. 8-10)."""

from repro.hw.clock import (MTU_BUDGET_NS_AT_100G, RateReport,
                            asic_pieo_latency_ns, pieo_clock_mhz,
                            pieo_rate_report, pifo_clock_mhz,
                            pifo_rate_report)
from repro.hw.device import ASIC, STRATIX_10, STRATIX_V, Device
from repro.hw.pipeline import (PipelineReport, nonpipelined_total_cycles,
                               pipeline_report, pipelined_schedule,
                               pipelined_total_cycles)
from repro.hw.resources import (ALMS_PER_LANE, LogicReport, logic_report,
                                max_capacity, pieo_alms, pieo_lanes,
                                pifo_alms, pifo_lanes, scalability_factor)
from repro.hw.sram import (ENTRY_BITS, SramReport, sram_overhead_factor,
                           sram_report)

__all__ = [
    "MTU_BUDGET_NS_AT_100G",
    "RateReport",
    "asic_pieo_latency_ns",
    "pieo_clock_mhz",
    "pieo_rate_report",
    "pifo_clock_mhz",
    "pifo_rate_report",
    "ASIC",
    "STRATIX_10",
    "STRATIX_V",
    "Device",
    "ALMS_PER_LANE",
    "LogicReport",
    "logic_report",
    "max_capacity",
    "pieo_alms",
    "pieo_lanes",
    "pifo_alms",
    "pifo_lanes",
    "scalability_factor",
    "ENTRY_BITS",
    "SramReport",
    "sram_overhead_factor",
    "sram_report",
    "PipelineReport",
    "nonpipelined_total_cycles",
    "pipeline_report",
    "pipelined_schedule",
    "pipelined_total_cycles",
]
