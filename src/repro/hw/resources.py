"""Analytical logic-resource model for PIEO and PIFO (Fig. 8).

The paper reports two hard calibration anchors for its Stratix V target:

* the open-source PIFO implementation consumes **64 % of the 234 K ALMs at
  1 K elements** and scales linearly, so a 2 K PIFO does not fit
  (Section 6.1);
* PIEO's logic grows **as the square root** of the list size and a 30 K
  PIEO fits easily.

We model logic in units of *lanes* — one lane is the comparator +
flip-flop + shift-mux slice serving one element of a parallel array —
and calibrate the per-lane ALM cost from the PIFO anchor:

``ALMS_PER_LANE = 0.64 * 234_000 / 1_024 = 146.25 ALMs``.

PIFO needs one lane per element (N lanes).  PIEO needs

* ``2 * ceil(N / s)`` pointer-array lanes (wider entries: rank +
  send_time + id + num, shiftable; weighted ``POINTER_LANE_WEIGHT``), plus
* ``2 * s`` sublist lanes (the two sublists read each cycle),

for ``s = ceil(sqrt(N))`` — O(sqrt(N)) total, which is the whole point of
the design.  The model therefore reproduces the *shape* of Fig. 8 exactly
and its absolute values through the single calibrated constant.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.pieo.hardware_list import default_sublist_size
from repro.hw.device import STRATIX_V, Device

#: Calibrated from the paper's PIFO anchor: 64% of Stratix V ALMs @ 1K.
ALMS_PER_LANE = 0.64 * 234_000 / 1_024

#: A pointer-array entry carries ~50 % more state than a PIFO element
#: (sublist id, smallest_rank, smallest_send_time, num + shift network).
POINTER_LANE_WEIGHT = 1.5

#: Fixed control overhead (FSM, SRAM address logic) in ALMs.
CONTROL_OVERHEAD_ALMS = 2_000.0


def pieo_lanes(capacity: int, sublist_size: int = None) -> float:
    """Parallel lanes used by a PIEO of ``capacity`` elements."""
    size = (default_sublist_size(capacity)
            if sublist_size is None else sublist_size)
    num_sublists = 2 * math.ceil(capacity / size)
    return POINTER_LANE_WEIGHT * num_sublists + 2 * size


def pifo_lanes(capacity: int) -> float:
    """Parallel lanes used by a PIFO of ``capacity`` elements."""
    return float(capacity)


def pieo_alms(capacity: int, sublist_size: int = None) -> float:
    """Estimated ALMs for a PIEO scheduler of the given size."""
    return (ALMS_PER_LANE * pieo_lanes(capacity, sublist_size)
            + CONTROL_OVERHEAD_ALMS)


def pifo_alms(capacity: int) -> float:
    """Estimated ALMs for a PIFO scheduler of the given size."""
    return ALMS_PER_LANE * pifo_lanes(capacity) + CONTROL_OVERHEAD_ALMS


@dataclass(frozen=True)
class LogicReport:
    """One row of Fig. 8: logic consumption at a given scheduler size."""

    capacity: int
    pieo_alms: float
    pifo_alms: float
    pieo_percent: float
    pifo_percent: float
    pifo_fits: bool
    pieo_fits: bool


def logic_report(capacity: int, device: Device = STRATIX_V) -> LogicReport:
    """Evaluate both designs at one size on ``device``."""
    pieo = pieo_alms(capacity)
    pifo = pifo_alms(capacity)
    return LogicReport(
        capacity=capacity,
        pieo_alms=pieo,
        pifo_alms=pifo,
        pieo_percent=100.0 * device.alm_fraction(pieo),
        pifo_percent=100.0 * device.alm_fraction(pifo),
        pieo_fits=pieo <= device.alms,
        pifo_fits=pifo <= device.alms,
    )


def max_capacity(design: str, device: Device = STRATIX_V) -> int:
    """Largest scheduler size whose logic fits on ``device``.

    ``design`` is ``"pieo"`` or ``"pifo"``.  Used for the "over 30x more
    scalable" headline claim (Section 6.1).
    """
    alms_fn = {"pieo": pieo_alms, "pifo": pifo_alms}[design]
    if alms_fn(1) > device.alms:
        return 0
    low, high = 1, 2
    while alms_fn(high) <= device.alms:
        low, high = high, high * 2
    while low + 1 < high:
        mid = (low + high) // 2
        if alms_fn(mid) <= device.alms:
            low = mid
        else:
            high = mid
    return low


def scalability_factor(device: Device = STRATIX_V) -> float:
    """PIEO max size / PIFO max size on ``device``."""
    pifo_max = max_capacity("pifo", device)
    if pifo_max == 0:
        return math.inf
    return max_capacity("pieo", device) / pifo_max
