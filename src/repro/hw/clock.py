"""Clock-rate and scheduling-rate models (Fig. 10 and Section 6.2).

The achievable clock rate of a synthesized scheduler falls as the circuit
grows, because the cycle-1 parallel compare + priority encode spans more
lanes.  We model

``fmax(lanes) = base_clock / (1 + lanes / lane_knee)``

with a per-design ``lane_knee`` calibrated to the paper's two anchors on
Stratix V:

* PIEO runs at ~80 MHz at its largest evaluated size ("even at 80 MHz ...
  one can execute a PIEO primitive operation every 50 ns", Section 6.2);
* the PIFO baseline clocked at 57 MHz (at its maximum 1 K size).

ASIC targets return their flat base clock (Section 6.2: PIFO reaches
1 GHz on an ASIC; a PIEO primitive op would take 4 ns).

Scheduling rate then follows from cycles-per-operation: PIEO takes 4
cycles per primitive op (non-pipelined), PIFO 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pieo.hardware_list import CYCLES_PER_OP
from repro.core.pifo.flipflop_list import PIFO_CYCLES_PER_OP
from repro.hw.device import ASIC, STRATIX_V, Device
from repro.hw.resources import pieo_lanes, pifo_lanes

#: Calibrated so pieo fmax(30K lanes) ~ 80 MHz on Stratix V.
PIEO_LANE_KNEE = 648.0
#: Calibrated so pifo fmax(1K lanes) ~ 57 MHz on Stratix V.
PIFO_LANE_KNEE = 449.0

#: MTU-timescale decision budget at 100 Gbps (Section 1): a 1500 B packet
#: serializes in 120 ns.
MTU_BUDGET_NS_AT_100G = 120.0


def _fmax_mhz(lanes: float, lane_knee: float, device: Device) -> float:
    if device.base_clock_mhz >= 1000.0:
        # ASIC-class targets: custom layout keeps the compare/encode path
        # within one fast cycle across the evaluated size range.
        return device.base_clock_mhz
    return device.base_clock_mhz / (1.0 + lanes / lane_knee)


def pieo_clock_mhz(capacity: int, device: Device = STRATIX_V) -> float:
    """Fig. 10: clock rate of the PIEO circuit at a given size."""
    return _fmax_mhz(pieo_lanes(capacity), PIEO_LANE_KNEE, device)


def pifo_clock_mhz(capacity: int, device: Device = STRATIX_V) -> float:
    """Clock rate of the PIFO baseline circuit at a given size."""
    return _fmax_mhz(pifo_lanes(capacity), PIFO_LANE_KNEE, device)


@dataclass(frozen=True)
class RateReport:
    """Scheduling-rate figures for one design point (Section 6.2)."""

    capacity: int
    device: str
    clock_mhz: float
    cycles_per_op: int
    op_latency_ns: float
    ops_per_second: float
    #: Largest packet size (bytes) schedulable at 100 Gbps line rate with
    #: one decision per packet.
    min_packet_bytes_at_100g: float

    @property
    def meets_mtu_at_100g(self) -> bool:
        """Can this design schedule MTU packets at 100 Gbps?"""
        return self.op_latency_ns <= MTU_BUDGET_NS_AT_100G


def pieo_rate_report(capacity: int, device: Device = STRATIX_V,
                     ) -> RateReport:
    clock = pieo_clock_mhz(capacity, device)
    return _rate_report(capacity, device, clock, CYCLES_PER_OP)


def pifo_rate_report(capacity: int, device: Device = STRATIX_V,
                     ) -> RateReport:
    clock = pifo_clock_mhz(capacity, device)
    return _rate_report(capacity, device, clock, PIFO_CYCLES_PER_OP)


def _rate_report(capacity: int, device: Device, clock_mhz: float,
                 cycles: int) -> RateReport:
    latency_ns = cycles * 1_000.0 / clock_mhz
    # bytes = latency * 100 Gbps / 8 bits
    min_packet = latency_ns * 100.0 / 8.0
    return RateReport(
        capacity=capacity,
        device=device.name,
        clock_mhz=clock_mhz,
        cycles_per_op=cycles,
        op_latency_ns=latency_ns,
        ops_per_second=clock_mhz * 1e6 / cycles,
        min_packet_bytes_at_100g=min_packet,
    )


def asic_pieo_latency_ns() -> float:
    """Section 6.2's ASIC what-if: 4 cycles at 1 GHz = 4 ns."""
    return pieo_rate_report(30_000, ASIC).op_latency_ns
