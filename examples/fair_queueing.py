#!/usr/bin/env python3
"""Fair-queuing shoot-out: DRR vs WFQ vs WF2Q+ on one workload.

Three backlogged flows with weights 1:2:3 (and mixed packet sizes) share
a 10 Gbps link under each algorithm.  All three converge to weighted
fair shares in the long run; the interesting difference is *short-term*
fairness — WF2Q+ (the algorithm PIFO cannot express, Section 2.3) has
the smallest service-order burstiness, which is why the paper uses it
for the Fig. 12 experiment.

Run:  python examples/fair_queueing.py
"""

from repro.sched import (DeficitRoundRobin, PieoScheduler, WF2Qplus,
                         WeightedFairQueuing)
from repro.sim import (BackloggedSource, FlowQueue, Link, Simulator,
                       TransmitEngine, gbps)

WEIGHTS = {"gold": 3.0, "silver": 2.0, "bronze": 1.0}
SIZES = {"gold": 1500, "silver": 700, "bronze": 1500}
DURATION = 0.02
WARMUP = 0.002


def run(algorithm):
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(algorithm, link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    for name, weight in WEIGHTS.items():
        scheduler.add_flow(FlowQueue(name, weight=weight))
        source = BackloggedSource(sim, name, engine.arrival_sink,
                                  depth=8, size_bytes=SIZES[name])
        engine.add_departure_listener(name, source.on_departure)
        source.start(0.0)
    sim.run_until(DURATION)
    return engine.recorder


def burstiness(recorder, flow_id):
    """Longest run of consecutive departures not involving flow_id —
    a crude short-term starvation measure."""
    worst = current = 0
    for departure in recorder.departures:
        if departure.flow_id == flow_id:
            current = 0
        else:
            current += 1
            worst = max(worst, current)
    return worst


def main() -> None:
    total_weight = sum(WEIGHTS.values())
    print(f"{'algorithm':<10} " + " ".join(f"{name:>9}"
                                           for name in WEIGHTS)
          + f" {'starve(bronze)':>15}")
    print(f"{'ideal':<10} " + " ".join(
        f"{10 * weight / total_weight:>8.2f}G" for weight in
        WEIGHTS.values()) + f" {'-':>15}")
    for algorithm in (DeficitRoundRobin(), WeightedFairQueuing(),
                      WF2Qplus()):
        recorder = run(algorithm)
        rates = recorder.rate_bps(start=WARMUP, end=DURATION)
        cells = " ".join(f"{rates[name] / 1e9:>8.2f}G"
                         for name in WEIGHTS)
        print(f"{algorithm.name:<10} {cells} "
              f"{burstiness(recorder, 'bronze'):>15}")
    print("\nAll three hit the weighted shares; WF2Q+ additionally "
          "bounds how long any flow waits between services "
          "(worst-case fairness).")


if __name__ == "__main__":
    main()
