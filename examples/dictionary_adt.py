#!/usr/bin/env python3
"""PIEO as an abstract dictionary data type (Section 8).

Runs a sorted key-value store — search / insert / delete / update plus
range filtering (a <= key <= b) — directly on the cycle-accurate
hardware model, where every operation costs 4 clock cycles.

Run:  python examples/dictionary_adt.py
"""

from repro import make_list
from repro.dictionary import PieoDict


def main() -> None:
    backend = make_list("hardware", capacity=256)
    table = PieoDict(backend=backend)

    print("=== insert (keys kept sorted by the ordered list itself) ===")
    for port, service in [(443, "https"), (22, "ssh"), (53, "dns"),
                          (80, "http"), (123, "ntp"), (25, "smtp"),
                          (8080, "http-alt")]:
        table.insert(port, service)
    print("keys:", table.keys())

    print("\n=== search / update / delete ===")
    print("search(53)  ->", table.search(53))
    table.update(8080, "proxy")
    print("update(8080) ->", table[8080])
    print("delete(25)  ->", table.delete(25))
    print("delete(25) again ->", table.delete(25), "(NULL semantics)")

    print("\n=== ordered operations ===")
    print("min_key ->", table.min_key())
    print("pop_min ->", table.pop_min())

    print("\n=== range filtering: 50 <= key <= 500 (Section 8) ===")
    print("range_keys(50, 500) ->", table.range_keys(50, 500))
    print("pop_range(50, 500, limit=2) ->", table.pop_range(50, 500,
                                                            limit=2))
    print("remaining keys:", table.keys())

    counters = backend.counters
    print(f"\nhardware cost: {counters.total_ops()} primitive ops, "
          f"{counters.cycles} cycles "
          f"(4 cycles per op on the Section 5 design; at 80 MHz that is "
          f"{counters.cycles * 12.5:.0f} ns total)")


if __name__ == "__main__":
    main()
