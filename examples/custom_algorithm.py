#!/usr/bin/env python3
"""Programming a custom scheduling algorithm on PIEO.

Implements *paced EDF* — a policy PIFO cannot express, because it
decides both WHEN a flow may send (a per-flow pacing gap: eligibility
predicate) and in WHAT ORDER eligible flows send (earliest deadline
first: rank).  It needs only the two programming functions of
Section 3.2.1.

Also demonstrates the asynchronous alarm path (Section 4.4): a deadline
boost that asynchronously promotes a flow that is about to miss its
deadline.

Run:  python examples/custom_algorithm.py
"""

from repro.sched import PieoScheduler, SchedulingAlgorithm
from repro.sched.base import TimeBase
from repro.sim import (CbrGenerator, FlowQueue, Link, Simulator,
                       TransmitEngine, gbps)


class PacedEarliestDeadlineFirst(SchedulingAlgorithm):
    """rank = head-packet deadline; predicate = pacing gap elapsed."""

    name = "paced-edf"
    time_base = TimeBase.WALL

    def __init__(self, pace_gap_seconds: float) -> None:
        self.pace_gap = pace_gap_seconds

    def pre_enqueue(self, ctx, flow):
        head = flow.head
        deadline = head.arrival_time + flow.state.get(
            "deadline_offset", 1.0)
        # Pacing: the flow may not send again before last_send + gap.
        earliest = flow.state.get("last_send", -1e9) + self.pace_gap
        ctx.enqueue(flow, rank=deadline, send_time=earliest)

    def post_dequeue(self, ctx, flow):
        flow.state["last_send"] = ctx.now
        ctx.transmit_head(flow)
        if not flow.is_empty:
            ctx.reenqueue(flow)

    def alarm_handler(self, ctx, flow):
        # Emergency promotion: bypass pacing for a near-deadline flow.
        head = flow.head
        deadline = head.arrival_time + flow.state.get(
            "deadline_offset", 1.0)
        ctx.enqueue(flow, rank=float("-inf"), send_time=0)
        print(f"  [alarm] boosted {flow.flow_id!r} "
              f"(deadline {deadline * 1e3:.2f} ms) at "
              f"t={ctx.now * 1e3:.2f} ms")


def main() -> None:
    sim = Simulator()
    link = Link(gbps(1))
    algorithm = PacedEarliestDeadlineFirst(pace_gap_seconds=200e-6)
    scheduler = PieoScheduler(algorithm, link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)

    for name, offset in (("sensor", 0.5e-3), ("camera", 5e-3),
                         ("logs", 50e-3)):
        flow = scheduler.add_flow(FlowQueue(name))
        flow.state["deadline_offset"] = offset
        # Faster than the 200 us pace gap (one packet every 100 us), so
        # pacing binds, queues build, and deadline alarms fire.
        CbrGenerator(sim, name, engine.arrival_sink, rate_bps=80e6,
                     size_bytes=1000, end_time=0.01).start(0.0)

    # Asynchronous deadline watchdog: every 100 us, boost any flow whose
    # head packet is within 300 us of its deadline.
    def watchdog():
        for flow in scheduler.flows.values():
            head = flow.head
            if head is None:
                continue
            deadline = head.arrival_time + flow.state["deadline_offset"]
            if deadline - sim.now < 300e-6:
                scheduler.run_alarm(flow.flow_id, sim.now)
        if sim.now < 0.01:
            sim.schedule_in(100e-6, watchdog)

    sim.schedule(0.0, watchdog)
    sim.run_until(0.02)

    print("\nper-flow results:")
    for name in ("sensor", "camera", "logs"):
        flow = scheduler.flows[name]
        gaps = engine.recorder.interdeparture_times(name)
        min_gap_us = min(gaps) * 1e6 if gaps else float("nan")
        print(f"  {name:<7} sent {flow.packets_dequeued:>3} packets, "
              f"min inter-departure gap {min_gap_us:7.1f} us "
              f"(pacing target 200 us; alarms may bypass it)")


if __name__ == "__main__":
    main()
