#!/usr/bin/env python3
"""Precise time-slotted transmission (the paper's Section 1 motivation).

Fastpass, QJump, Ethernet TDMA, and circuit-switched fabrics need packets
on the wire at exact instants — the workload that software schedulers,
with their processing jitter and coarse timers, cannot serve.  On PIEO
the whole policy is ``send_time = rank = next slot boundary``.

Four flows own the four slots of a 40 us frame on a 10 Gbps link; the
example measures wire-time jitter against the slot grid.

Run:  python examples/tdma_pacing.py
"""

from repro.sched import PieoScheduler, TimeSlotted
from repro.sim import (BackloggedSource, FlowQueue, Link, Simulator,
                       TransmitEngine, gbps)

SLOT = 10e-6          # 10 us slots
FRAME_SLOTS = 4       # 40 us frame


def main() -> None:
    sim = Simulator()
    link = Link(gbps(10))
    algorithm = TimeSlotted(SLOT, FRAME_SLOTS)
    scheduler = PieoScheduler(algorithm, link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)

    for slot in range(FRAME_SLOTS):
        flow = scheduler.add_flow(FlowQueue(f"host{slot}"))
        flow.state["slot"] = slot
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2, size_bytes=1500)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)

    sim.run_until(1e-3)

    print(f"{'flow':>6} {'slots used':>11} {'packets':>8} "
          f"{'worst jitter':>13}")
    frame = SLOT * FRAME_SLOTS
    for slot in range(FRAME_SLOTS):
        flow_id = f"host{slot}"
        times = [departure.time
                 for departure in engine.recorder.departures
                 if departure.flow_id == flow_id]
        jitters = []
        for time in times:
            offset = (time - slot * SLOT) % frame
            jitters.append(min(offset, frame - offset))
        print(f"{flow_id:>6} {f'{slot} (mod 4)':>11} {len(times):>8} "
              f"{max(jitters) * 1e9:>10.3f} ns")
    print("\nEvery departure lands on its slot boundary to "
          "floating-point precision — the determinism that motivates "
          "scheduling in hardware.")


if __name__ == "__main__":
    main()
