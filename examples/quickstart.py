#!/usr/bin/env python3
"""Quickstart: the PIEO primitive in five minutes.

Covers the three primitive operations (Section 3.1) on both the software
reference list and the cycle-accurate hardware model, and shows the
"smallest ranked eligible" semantics that distinguishes PIEO from a
priority queue (PIFO).

Run:  python examples/quickstart.py
"""

from repro import Element, PifoHardwareList, make_list


def primitive_basics() -> None:
    print("=== PIEO primitive: enqueue(f) / dequeue() / dequeue(f) ===")
    # Ordered lists come from the backend registry; swap "reference" for
    # "fast" (big simulations) or "hardware" (cycle accounting) freely.
    pieo = make_list("reference")

    # Each element carries a programmable rank (scheduling order) and a
    # send_time encoding the predicate (current_time >= send_time).
    pieo.enqueue(Element("video", rank=10, send_time=0))     # eligible now
    pieo.enqueue(Element("paced", rank=1, send_time=100))    # eligible at 100
    pieo.enqueue(Element("bulk", rank=20, send_time=0))

    # At t=5 the smallest *eligible* rank wins: "paced" has the smallest
    # rank but is not yet eligible, so "video" is scheduled.
    served = pieo.dequeue(now=5)
    print(f"t=5   -> {served.flow_id}  (rank 1 exists but is ineligible)")

    # At t=100 "paced" becomes eligible and immediately wins.
    served = pieo.dequeue(now=100)
    print(f"t=100 -> {served.flow_id}")

    # dequeue(f) extracts a specific element regardless of eligibility —
    # the hook for asynchronous rank updates (Section 4.4).
    extracted = pieo.dequeue_flow("bulk")
    print(f"dequeue(f) -> {extracted.flow_id}; list is now empty: "
          f"{len(pieo) == 0}")


def pifo_cannot_do_this() -> None:
    print("\n=== Why PIFO is not enough ===")
    pifo = PifoHardwareList(capacity=16)
    pifo.enqueue(Element("paced", rank=1, send_time=100))
    pifo.enqueue(Element("video", rank=10, send_time=0))
    served = pifo.dequeue()  # always the head — eligibility is ignored
    print(f"PIFO serves {served.flow_id!r} even though it should not be "
          "sent before t=100")


def hardware_model() -> None:
    print("\n=== The Section 5 hardware design, cycle by cycle ===")
    # 64-element PIEO: sublists of ceil(sqrt(64)) = 8 elements, 16
    # sublists, pointer array in flip-flops, everything else in SRAM.
    pieo = make_list("hardware", capacity=64)
    for index in range(40):
        pieo.enqueue(Element(f"flow{index}", rank=index % 10,
                             send_time=0))
    pieo.dequeue(now=0)
    pieo.dequeue_flow("flow7")

    counters = pieo.counters
    print(f"sublists: {pieo.num_sublists} x {pieo.sublist_size} elements")
    print(f"operations: {counters.ops}")
    print(f"total cycles: {counters.cycles} "
          f"({counters.cycles / counters.total_ops():.1f} per op — the "
          "paper's 4)")
    print(f"SRAM sublist reads/writes: {counters.sram_sublist_reads}/"
          f"{counters.sram_sublist_writes} (<= 2 per op: dual-port)")
    print(f"comparator activations: {counters.comparator_activations} "
          "(O(sqrt N) lanes per op)")

    # At 80 MHz (the paper's clock at 30 K elements) each op is 50 ns.
    from repro.hw import pieo_rate_report
    report = pieo_rate_report(30_000)
    print(f"on Stratix V at 30K flows: {report.clock_mhz:.0f} MHz -> "
          f"{report.op_latency_ns:.0f} ns/op; MTU @ 100 Gbps needs 120 ns "
          f"-> meets line rate: {report.meets_mtu_at_100g}")


if __name__ == "__main__":
    primitive_basics()
    pifo_cannot_do_this()
    hardware_model()
