#!/usr/bin/env python3
"""The paper's Section 6.3 evaluation scenario, end to end.

A two-level hierarchical scheduler on a 40 Gbps link: ten level-2 nodes
(think VMs), each Token Bucket rate-limited, with ten flows per node
sharing the node's rate via WF2Q+ — 100 flows total, scheduled at MTU
granularity.  Prints Fig. 11-style (rate-limit accuracy) and Fig.
12-style (fair-share accuracy) results.

Run:  python examples/hierarchical_rate_limiting.py
"""

from repro.analysis.fairness import jains_index
from repro.sched import (HierarchicalScheduler, TokenBucket, WF2Qplus,
                         two_level_tree)
from repro.sim import (BackloggedSource, Link, Simulator, TransmitEngine,
                       gbps)

NODE_RATE_GBPS = [0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0, 4.5, 5.0]
FLOWS_PER_NODE = 10
DURATION = 0.02  # seconds of simulated time
WARMUP = 0.002


def main() -> None:
    sim = Simulator()
    link = Link(gbps(40))

    # Level 2: Token Bucket per node; level 1: WF2Q+ across each node's
    # flows.  All nodes share one physical PIEO per level (Section 4.3).
    root, leaves = two_level_tree(
        TokenBucket(),
        [WF2Qplus() for _ in NODE_RATE_GBPS],
        flows_per_node=FLOWS_PER_NODE,
        node_rate_bps=[gbps(rate) for rate in NODE_RATE_GBPS],
    )
    scheduler = HierarchicalScheduler(root, link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)

    # One backlogged MTU packet generator per flow, as in the prototype.
    for flow in leaves:
        source = BackloggedSource(sim, flow.flow_id, engine.arrival_sink,
                                  depth=2)
        engine.add_departure_listener(flow.flow_id, source.on_departure)
        source.start(0.0)

    sim.run_until(DURATION)

    node_rates = engine.recorder.rate_bps(
        start=WARMUP, end=DURATION, key=lambda fid: fid.split(".")[0])
    flow_rates = engine.recorder.rate_bps(start=WARMUP, end=DURATION)

    print("Fig. 11 — rate-limit enforcement (Token Bucket, level 2)")
    print(f"{'node':>5} {'limit':>9} {'achieved':>9} {'error':>8}")
    for index, limit in enumerate(NODE_RATE_GBPS):
        achieved = node_rates[f"n{index}"] / 1e9
        error = abs(achieved - limit) / limit * 100
        print(f"{f'n{index}':>5} {limit:>7.2f} G {achieved:>7.3f} G "
              f"{error:>6.3f} %")

    print("\nFig. 12 — fair queuing within each node (WF2Q+, level 1)")
    print(f"{'node':>5} {'per-flow share':>15} {'min':>9} {'max':>9} "
          f"{'Jain':>8}")
    for index, limit in enumerate(NODE_RATE_GBPS):
        rates = [rate / 1e9 for flow_id, rate in flow_rates.items()
                 if flow_id.startswith(f"n{index}.")]
        expected = limit / FLOWS_PER_NODE
        print(f"{f'n{index}':>5} {expected:>13.3f} G {min(rates):>7.3f} G "
              f"{max(rates):>7.3f} G {jains_index(rates):>8.5f}")

    total = sum(node_rates.values()) / 1e9
    print(f"\naggregate: {total:.2f} Gbps of a 40 Gbps link "
          f"(non-work-conserving shaping leaves the link "
          f"{100 * (1 - total / 40):.0f}% idle)")


if __name__ == "__main__":
    main()
