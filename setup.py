"""Setup shim for environments without the ``wheel`` package.

The offline environment ships setuptools without ``wheel``, so PEP 660
editable installs are unavailable; this shim lets ``pip install -e .``
fall back to the legacy ``setup.py develop`` path.  All project metadata
lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
