"""Long randomized soak: every subsystem at once.

A hierarchical scheduler on the cycle-accurate hardware lists, mixed
traffic (backlogged + Poisson + on-off), runtime control-plane rate
changes, and network-feedback pauses/resumes — run for a long simulated
interval with hardware self-checking enabled throughout.  The test
asserts global sanity, not exact numbers: no crash, no invariant
violation, no per-flow reordering, no byte leaks, shaping respected in
aggregate."""

import random

import pytest

from repro.core.pieo import PieoHardwareList
from repro.sched import (HierarchicalScheduler, TokenBucket, WF2Qplus,
                         two_level_tree)
from repro.sim import (BackloggedSource, Link, OnOffGenerator,
                       PoissonGenerator, Simulator, TransmitEngine, gbps)

DURATION = 0.05


@pytest.mark.slow
def test_soak_hierarchy_on_hardware_lists():
    rng = random.Random(2026)
    sim = Simulator()
    link = Link(gbps(40))
    node_rates = [gbps(rng.uniform(0.5, 5.0)) for _ in range(6)]
    root, leaves = two_level_tree(
        TokenBucket(), [WF2Qplus() for _ in node_rates],
        flows_per_node=5, node_rate_bps=node_rates)
    scheduler = HierarchicalScheduler(
        root, link_rate_bps=link.rate_bps,
        list_factory=lambda _cap: PieoHardwareList(128, self_check=True))
    engine = TransmitEngine(sim, scheduler, link)

    for index, flow in enumerate(leaves):
        kind = index % 3
        if kind == 0:
            source = BackloggedSource(sim, flow.flow_id,
                                      engine.arrival_sink, depth=2)
            engine.add_departure_listener(flow.flow_id,
                                          source.on_departure)
            source.start(0.0)
        elif kind == 1:
            PoissonGenerator(sim, flow.flow_id, engine.arrival_sink,
                             rate_bps=gbps(0.4),
                             rng=random.Random(index),
                             end_time=DURATION * 0.9).start(0.0)
        else:
            OnOffGenerator(sim, flow.flow_id, engine.arrival_sink,
                           peak_rate_bps=gbps(1.0), on_seconds=2e-3,
                           off_seconds=2e-3, rng=random.Random(index),
                           end_time=DURATION * 0.9).start(0.0)

    # Random mid-run node rate changes (applied directly to node state;
    # Token Bucket reads flow.rate_bps at every head-of-line charge).
    def shake():
        node = root.children[f"n{rng.randrange(len(node_rates))}"]
        node.rate_bps = gbps(rng.uniform(0.5, 5.0))
        if sim.now + 5e-3 < DURATION:
            sim.schedule_in(5e-3, shake)

    sim.schedule(10e-3, shake)
    sim.run_until(DURATION)

    # Hardware invariants held throughout (self_check) — now the global
    # properties:
    departures = engine.recorder.departures
    assert len(departures) > 1000
    last_packet = {}
    for departure in departures:
        assert departure.time <= DURATION
        previous = last_packet.get(departure.flow_id, -1)
        assert departure.packet_id > previous
        last_packet[departure.flow_id] = departure.packet_id
    for flow in leaves:
        sent = sum(d.size_bytes for d in departures
                   if d.flow_id == flow.flow_id)
        assert sent == flow.bytes_dequeued
        assert flow.bytes_enqueued == flow.bytes_dequeued + \
            flow.backlog_bytes
    # Aggregate throughput can never exceed the link rate.
    total_bits = sum(d.size_bytes for d in departures) * 8
    assert total_bits <= link.rate_bps * DURATION * 1.001
    for physical in scheduler.level_lists:
        physical.check()
