"""Integration: running a full scheduling simulation on the
cycle-accurate hardware list must produce *identical* departures to the
software reference list — the hardware design is a drop-in replacement,
not an approximation."""

import pytest

from repro.core.pieo import PieoHardwareList
from repro.core.reference import ReferencePieo
from repro.sched import (DeficitRoundRobin, PieoScheduler, TokenBucket,
                         WF2Qplus)
from repro.sim import (FlowQueue, Link, PoissonGenerator, Simulator,
                       TransmitEngine, gbps)

import random


def run_once(algorithm_factory, ordered_list, seed=9, duration=0.01,
             shaped=False):
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(algorithm_factory(),
                              ordered_list=ordered_list,
                              link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    rng = random.Random(seed)
    for index in range(8):
        rate = gbps(0.5 + 0.25 * index)
        flow = FlowQueue(f"f{index}",
                         weight=1.0 + index % 3,
                         rate_bps=rate if shaped else 0.0)
        scheduler.add_flow(flow)
        PoissonGenerator(sim, flow.flow_id, engine.arrival_sink,
                         rate_bps=gbps(0.6),
                         rng=random.Random(seed + index)).start(0.0)
    sim.run_until(duration)
    return [(departure.flow_id, pytest.approx(departure.time))
            for departure in engine.recorder.departures]


@pytest.mark.parametrize("algorithm_factory, shaped", [
    (WF2Qplus, False),
    (DeficitRoundRobin, False),
    (TokenBucket, True),
])
def test_hardware_list_is_drop_in_equivalent(algorithm_factory, shaped):
    software = run_once(algorithm_factory, ReferencePieo(), shaped=shaped)
    hardware = run_once(algorithm_factory,
                        PieoHardwareList(64, self_check=True),
                        shaped=shaped)
    assert len(software) == len(hardware)
    assert software == hardware


def test_hardware_counters_accumulate_during_cosim():
    hardware = PieoHardwareList(64, self_check=True)
    run_once(WF2Qplus, hardware)
    assert hardware.counters.ops["enqueue"] > 50
    assert hardware.counters.ops["dequeue"] > 50
    busy = (hardware.counters.ops["enqueue"]
            + hardware.counters.ops["dequeue"]
            + hardware.counters.ops.get("dequeue_flow", 0))
    nulls = sum(count for name, count in hardware.counters.ops.items()
                if name.endswith("_null"))
    assert hardware.counters.cycles == busy * 4 + nulls
