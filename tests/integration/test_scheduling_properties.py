"""Cross-algorithm integration properties.

Whatever the policy, a correct scheduler must never:
* reorder packets within one flow (per-flow FIFO, Section 2.1),
* create or destroy bytes (conservation),
* overcommit the link,
and every departed packet must have actually been eligible under the
policy's shaping at its departure time.
"""

import random

import pytest

from repro.core.pieo import PieoHardwareList
from repro.sched import (DeficitRoundRobin, PieoScheduler,
                         StochasticFairnessQueuing, StrictPriority,
                         TokenBucket, WF2Qplus, WeightedFairQueuing)
from repro.sim import (FlowQueue, Link, PoissonGenerator, Simulator,
                       TransmitEngine, gbps)

from tests.scenarios import run_workload

ALGORITHMS = [
    DeficitRoundRobin,
    WeightedFairQueuing,
    WF2Qplus,
    StochasticFairnessQueuing,
    StrictPriority,
    TokenBucket,
]


@pytest.mark.parametrize("algorithm_factory", ALGORITHMS,
                         ids=lambda a: a().name)
def test_per_flow_fifo_preserved(algorithm_factory):
    _sim, _scheduler, engine = run_workload(algorithm_factory)
    last_seen = {}
    for departure in engine.recorder.departures:
        previous = last_seen.get(departure.flow_id, -1)
        assert departure.packet_id > previous, (
            f"flow {departure.flow_id} reordered")
        last_seen[departure.flow_id] = departure.packet_id


@pytest.mark.parametrize("algorithm_factory", ALGORITHMS,
                         ids=lambda a: a().name)
def test_byte_conservation(algorithm_factory):
    _sim, scheduler, engine = run_workload(algorithm_factory)
    for flow in scheduler.flows.values():
        sent = sum(departure.size_bytes
                   for departure in engine.recorder.departures
                   if departure.flow_id == flow.flow_id)
        assert sent == flow.bytes_dequeued
        assert flow.bytes_enqueued == flow.bytes_dequeued + \
            flow.backlog_bytes


@pytest.mark.parametrize("algorithm_factory", ALGORITHMS,
                         ids=lambda a: a().name)
def test_departures_monotone_and_link_capacity(algorithm_factory):
    _sim, _scheduler, engine = run_workload(algorithm_factory)
    departures = engine.recorder.departures
    assert len(departures) > 20  # the workload actually ran
    for before, after in zip(departures, departures[1:]):
        assert after.time >= before.time
        # Serialization: next start >= previous start + its tx time.
        assert after.time >= before.time + before.size_bytes * 8 / gbps(
            5) - 1e-12


@pytest.mark.parametrize(
    "algorithm_factory",
    [factory for factory in ALGORITHMS if factory is not TokenBucket],
    ids=lambda a: a().name)
def test_work_queues_drain_after_arrivals_stop(algorithm_factory):
    """After sources stop, a work-conserving policy must eventually
    drain every queue."""
    _sim, scheduler, engine = run_workload(algorithm_factory,
                                           duration=0.05)
    for flow in scheduler.flows.values():
        assert flow.is_empty, (flow.flow_id, len(flow.queue))


def test_token_bucket_drains_when_not_overloaded():
    """A shaper drains too — provided arrivals stay under the shaped
    rate (an overloaded shaper necessarily accumulates backlog)."""
    sim = Simulator()
    link = Link(gbps(5))
    scheduler = PieoScheduler(TokenBucket(), link_rate_bps=link.rate_bps)
    engine = TransmitEngine(sim, scheduler, link)
    for index in range(4):
        flow = FlowQueue(f"f{index}", rate_bps=gbps(0.8))
        scheduler.add_flow(flow)
        PoissonGenerator(sim, flow.flow_id, engine.arrival_sink,
                         rate_bps=gbps(0.5),
                         rng=random.Random(97 + index),
                         end_time=0.02).start(0.0)
    sim.run_until(0.08)
    for flow in scheduler.flows.values():
        assert flow.is_empty, (flow.flow_id, len(flow.queue))


def test_properties_hold_on_hardware_list():
    _sim, scheduler, engine = run_workload(
        WF2Qplus, list_factory=lambda: PieoHardwareList(64,
                                                        self_check=True))
    last_seen = {}
    for departure in engine.recorder.departures:
        previous = last_seen.get(departure.flow_id, -1)
        assert departure.packet_id > previous
        last_seen[departure.flow_id] = departure.packet_id
