"""Integration: the Section 6.3 evaluation scenario end to end — the
exact topology of the paper (10 nodes x 10 flows, 40 Gbps link, MTU
granularity, Token Bucket rate limits + WF2Q+ fair queuing)."""

import pytest

from repro.analysis.fairness import jains_index, max_relative_error
from repro.experiments.hier_common import (default_node_rates, node_of,
                                           run_hierarchy)


@pytest.fixture(scope="module")
def paper_run():
    return run_hierarchy(default_node_rates(), duration=0.02)


def test_all_hundred_flows_transmit(paper_run):
    assert len(paper_run.flow_rates_bps) == 100


def test_rate_limits_enforced_accurately(paper_run):
    """Fig. 11: achieved node rate tracks the configured limit."""
    targets = {f"n{index}": rate * 1e9
               for index, rate in enumerate(default_node_rates())}
    assert max_relative_error(paper_run.node_rates_bps, targets) < 0.02


def test_fair_queueing_within_every_node(paper_run):
    """Fig. 12: each node's ten flows split its limit evenly."""
    for node_index in range(10):
        rates = [rate for flow_id, rate
                 in paper_run.flow_rates_bps.items()
                 if node_of(flow_id) == f"n{node_index}"]
        assert len(rates) == 10
        assert jains_index(rates) > 0.999
        expected = default_node_rates()[node_index] * 1e9 / 10
        assert min(rates) == pytest.approx(expected, rel=0.05)
        assert max(rates) == pytest.approx(expected, rel=0.05)


def test_link_not_saturated(paper_run):
    """Shaping sums to 30.5 of 40 Gbps; the link must idle, proving the
    non-work-conserving behaviour."""
    total = sum(paper_run.node_rates_bps.values())
    assert total == pytest.approx(sum(default_node_rates()) * 1e9,
                                  rel=0.02)
    assert total < 0.9 * 40e9


def test_pacing_is_smooth(paper_run):
    """Rate-limit enforcement holds at fine timescales too (packet
    pacing, not just long-run averages): per-1ms buckets stay within a
    few percent of the configured node rate."""
    series = paper_run.engine.recorder.rate_timeseries(
        bucket_seconds=1e-3, key=node_of)
    for index, rate_gbps in enumerate(default_node_rates()):
        buckets = series[f"n{index}"][2:-1]  # skip warmup + partial tail
        for bucket_rate in buckets:
            assert bucket_rate == pytest.approx(rate_gbps * 1e9, rel=0.1)
