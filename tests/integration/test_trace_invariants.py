"""Trace-level invariants over the paper's Fig. 11 / Fig. 12 workloads.

These run the real Section 6.3 hierarchy with the tracer and metrics
attached and then check *physics*, not point values:

* conservation — every packet that arrived either departed, was
  dropped, or is still backlogged when the simulation stops;
* the shared queue-depth gauge never dips below zero (a negative
  watermark would mean a dequeue event was emitted for an element that
  was never enqueued);
* engine retry timers pair up exactly — each ``timer_arm`` in the
  ``engine.retry`` scope is consumed by exactly one ``timer_fire`` or
  ``timer_cancel`` (at most one may still be pending at shutdown);
* simulator-scope timers never fire more than they were armed.
"""

from collections import Counter as TallyCounter

import pytest

from repro.experiments.hier_common import default_node_rates, run_hierarchy
from repro.obs import MetricsRegistry, Tracer

# Short simulated windows keep each traced run under ~0.5 s of wall
# clock while still producing thousands of events.
DURATION = 0.002


@pytest.fixture(scope="module")
def fig11_run():
    """One traced Fig. 11-style run (per-node Token Bucket limits)."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    rates = default_node_rates()
    rates[3] = 4.0  # the sampled node's sweep point
    run = run_hierarchy(rates, duration=DURATION,
                        tracer=tracer, metrics=metrics)
    return run, tracer, metrics


@pytest.fixture(scope="module")
def fig12_run():
    """One traced Fig. 12-style run (weighted fair queuing)."""
    tracer = Tracer()
    metrics = MetricsRegistry()
    run = run_hierarchy(default_node_rates(), duration=DURATION,
                        flow_weights=[1.0, 2.0],
                        tracer=tracer, metrics=metrics)
    return run, tracer, metrics


def _conservation(tracer, metrics):
    arrivals = tracer.counts.get("arrival", 0)
    departures = tracer.counts.get("departure", 0)
    drops = tracer.counts.get("drop", 0)
    backlog = metrics.gauge("engine.backlog_pkts").value
    assert arrivals > 0 and departures > 0
    assert arrivals == departures + drops + backlog
    # The event stream and the counters must tell the same story.
    snapshot = metrics.to_dict()["counters"]
    assert snapshot["engine.arrivals"] == arrivals
    assert snapshot["engine.departures"] == departures


def _gauges_never_negative(metrics):
    for name, gauge in metrics.to_dict()["gauges"].items():
        assert gauge["min"] is None or gauge["min"] >= 0, (
            f"gauge {name} went negative: min={gauge['min']}")


def _timers_match(tracer):
    tallies = {}
    for event in tracer.events_of("timer_arm", "timer_fire",
                                  "timer_cancel"):
        scope = event.get("scope")
        tallies.setdefault(scope, TallyCounter())[event.kind] += 1

    retry = tallies.get("engine.retry", TallyCounter())
    consumed = retry["timer_fire"] + retry["timer_cancel"]
    pending = retry["timer_arm"] - consumed
    assert 0 <= pending <= 1, (
        f"engine.retry timers leak: {retry['timer_arm']} armed, "
        f"{consumed} consumed")

    sim = tallies.get("sim", TallyCounter())
    assert sim["timer_arm"] >= sim["timer_fire"] + sim["timer_cancel"]
    assert sim["timer_fire"] > 0

    # Per-id accounting: no retry timer fires or cancels twice.
    seen = TallyCounter()
    for event in tracer.events_of("timer_fire", "timer_cancel"):
        if event.get("scope") == "engine.retry":
            timer_id = event.get("id")
            assert timer_id is not None
            seen[timer_id] += 1
    assert seen and all(count == 1 for count in seen.values())


def test_fig11_conservation(fig11_run):
    _, tracer, metrics = fig11_run
    _conservation(tracer, metrics)


def test_fig11_gauges_never_negative(fig11_run):
    _, _, metrics = fig11_run
    _gauges_never_negative(metrics)


def test_fig11_timer_lifecycle(fig11_run):
    _, tracer, _ = fig11_run
    _timers_match(tracer)


def test_fig11_departures_match_recorder(fig11_run):
    run, tracer, _ = fig11_run
    assert tracer.counts["departure"] == len(run.engine.recorder.departures)


def test_fig12_conservation(fig12_run):
    _, tracer, metrics = fig12_run
    _conservation(tracer, metrics)


def test_fig12_gauges_never_negative(fig12_run):
    _, _, metrics = fig12_run
    _gauges_never_negative(metrics)


def test_fig12_timer_lifecycle(fig12_run):
    _, tracer, _ = fig12_run
    _timers_match(tracer)


def test_traced_run_latency_histograms_populated(fig11_run):
    """The scheduling loop's wall-clock histogram actually observed
    work (it feeds the overhead benchmark and the DESIGN.md span
    story)."""
    _, _, metrics = fig11_run
    histograms = metrics.to_dict()["histograms"]
    schedule = histograms["engine.schedule_us"]
    assert schedule["count"] > 0
    assert schedule["mean"] > 0
