"""Cross-validation: Recorder bookkeeping vs trace-derived views.

The engine keeps a :class:`repro.sim.recorder.Recorder` and (when
observed) emits ``departure`` trace events for the same packets.  These
are two independent bookkeeping paths over one ground truth; this test
runs the Fig. 12 topology with both attached and asserts the
trace-derived Recorder (:meth:`TraceAnalysis.to_recorder`) agrees with
the live one on order, per-flow bytes, and measured rates — so the two
paths cannot drift apart silently.
"""

import pytest

from repro.experiments.hier_common import (default_node_rates,
                                           run_hierarchy)
from repro.obs import TraceAnalysis, Tracer


@pytest.fixture(scope="module")
def traced_run():
    tracer = Tracer()
    run = run_hierarchy(default_node_rates(), duration=0.002,
                        tracer=tracer)
    return run, TraceAnalysis(tracer.events)


def test_departure_order_matches(traced_run):
    run, analysis = traced_run
    assert analysis.order() == run.engine.recorder.order()
    assert len(analysis.order()) > 0


def test_bytes_by_flow_matches(traced_run):
    run, analysis = traced_run
    assert analysis.bytes_by_flow() == run.engine.recorder.bytes_by_flow()


def test_rates_match_in_measurement_window(traced_run):
    run, analysis = traced_run
    warmup = run.duration * 0.1
    live = run.engine.recorder.rate_bps(start=warmup, end=run.duration)
    derived = analysis.rate_bps(start=warmup, end=run.duration)
    assert derived.keys() == live.keys()
    for flow_id, rate in live.items():
        assert derived[flow_id] == pytest.approx(rate)


def test_trace_audits_clean_on_real_run(traced_run):
    _, analysis = traced_run
    assert analysis.errors == []


def test_attribution_sums_on_real_run(traced_run):
    _, analysis = traced_run
    checked = 0
    for timeline in analysis.timelines:
        if not timeline.delivered:
            continue
        checked += 1
        assert (timeline.queueing_wait + timeline.eligibility_wait
                + timeline.serialization) == pytest.approx(
                    timeline.latency, abs=1e-9)
        assert timeline.queueing_wait >= 0
        assert timeline.eligibility_wait >= 0
    assert checked > 0
