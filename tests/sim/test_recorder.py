"""Tests for departure recording and rate measurement."""

import pytest

from repro.sim.recorder import Recorder


def record_uniform(recorder, flow_id, count, gap, size=1500, start=0.0):
    for index in range(count):
        recorder.record(start + index * gap, flow_id, size, index)


def test_order():
    recorder = Recorder()
    recorder.record(0.0, "a", 100, 1)
    recorder.record(1.0, "b", 100, 2)
    assert recorder.order() == ["a", "b"]


def test_bytes_by_flow_windowed():
    recorder = Recorder()
    record_uniform(recorder, "a", 10, gap=1.0, size=100)
    totals = recorder.bytes_by_flow(start=2.0, end=5.0)
    assert totals == {"a": 300}


def test_rate_bps():
    recorder = Recorder()
    # 10 packets of 1250 B over 10 s -> 10 kbit/s.
    record_uniform(recorder, "a", 10, gap=1.0, size=1250)
    rates = recorder.rate_bps(start=0.0, end=10.0)
    assert rates["a"] == pytest.approx(10_000)


def test_rate_bps_with_aggregation_key():
    recorder = Recorder()
    record_uniform(recorder, "n0.f1", 5, gap=1.0, size=1000)
    record_uniform(recorder, "n0.f2", 5, gap=1.0, size=1000, start=0.5)
    rates = recorder.rate_bps(start=0.0, end=5.0,
                              key=lambda fid: fid.split(".")[0])
    assert rates["n0"] == pytest.approx(2 * 5 * 8000 / 5.0)


def test_rate_bps_filters_flows():
    recorder = Recorder()
    record_uniform(recorder, "a", 5, gap=1.0)
    record_uniform(recorder, "b", 5, gap=1.0)
    rates = recorder.rate_bps(flow_ids=["a"], start=0.0, end=5.0)
    assert set(rates) == {"a"}


def test_rate_timeseries_buckets():
    recorder = Recorder()
    record_uniform(recorder, "a", 4, gap=1.0, size=1250)  # t = 0,1,2,3
    series = recorder.rate_timeseries(bucket_seconds=2.0)
    assert series["a"] == [pytest.approx(10_000), pytest.approx(10_000)]


def test_interdeparture_times():
    recorder = Recorder()
    record_uniform(recorder, "a", 3, gap=0.5)
    assert recorder.interdeparture_times("a") == [
        pytest.approx(0.5), pytest.approx(0.5)]


def test_empty_recorder():
    recorder = Recorder()
    assert recorder.rate_bps() == {}
    assert recorder.aggregate_rate_bps() == 0.0
    assert recorder.rate_timeseries(1.0) == {}
    assert len(recorder) == 0
