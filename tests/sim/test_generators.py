"""Tests for the traffic generators."""

import random

import pytest

from repro.sim.events import Simulator
from repro.sim.generators import (BackloggedSource, CbrGenerator,
                                  OnOffGenerator, PoissonGenerator)
from repro.sim.link import gbps


class Collector:
    def __init__(self):
        self.packets = []

    def __call__(self, flow_id, packet):
        self.packets.append(packet)


def test_cbr_generates_at_exact_rate():
    sim = Simulator()
    sink = Collector()
    # 1500 B at 12 Mbps -> one packet per millisecond.
    CbrGenerator(sim, "f", sink, rate_bps=12e6, size_bytes=1500).start(0.0)
    sim.run_until(0.0105)
    assert len(sink.packets) == 11  # t = 0, 1ms, ..., 10ms
    gaps = [after.arrival_time - before.arrival_time
            for before, after in zip(sink.packets, sink.packets[1:])]
    assert all(gap == pytest.approx(1e-3) for gap in gaps)


def test_cbr_respects_end_time():
    sim = Simulator()
    sink = Collector()
    CbrGenerator(sim, "f", sink, rate_bps=12e6, size_bytes=1500,
                 end_time=0.005).start(0.0)
    sim.run_until(1.0)
    assert len(sink.packets) == 5


def test_poisson_mean_rate():
    sim = Simulator()
    sink = Collector()
    rate = gbps(1)
    PoissonGenerator(sim, "f", sink, rate_bps=rate, size_bytes=1500,
                     rng=random.Random(1)).start(0.0)
    sim.run_until(0.01)
    achieved = len(sink.packets) * 1500 * 8 / 0.01
    assert achieved == pytest.approx(rate, rel=0.15)


def test_onoff_is_bursty():
    sim = Simulator()
    sink = Collector()
    OnOffGenerator(sim, "f", sink, peak_rate_bps=gbps(1),
                   on_seconds=1e-3, off_seconds=1e-3, size_bytes=1500,
                   rng=random.Random(2)).start(0.0)
    sim.run_until(0.02)
    gaps = sorted(after.arrival_time - before.arrival_time
                  for before, after in zip(sink.packets, sink.packets[1:]))
    assert len(sink.packets) > 10
    # On-period gaps are the serialization gap; off periods are far larger.
    assert gaps[0] == pytest.approx(1500 * 8 / 1e9)
    assert gaps[-1] > 10 * gaps[0]
    # Long-run average well below the peak rate.
    achieved = len(sink.packets) * 1500 * 8 / 0.02
    assert achieved < 0.8 * gbps(1)


def test_backlogged_source_maintains_depth():
    sim = Simulator()
    sink = Collector()
    source = BackloggedSource(sim, "f", sink, depth=3)
    source.start(0.0)
    sim.run_until(0.0)
    assert len(sink.packets) == 3
    # Each departure triggers a refill.
    sim.schedule(1.0, source.on_departure)
    sim.run_until(1.0)
    assert len(sink.packets) == 4


def test_backlogged_source_stops_after_end_time():
    sim = Simulator()
    sink = Collector()
    source = BackloggedSource(sim, "f", sink, depth=1, end_time=0.5)
    source.start(0.0)
    sim.run_until(0.0)
    sim.schedule(1.0, source.on_departure)
    sim.run_until(2.0)
    assert len(sink.packets) == 1


def test_generator_validation():
    sim = Simulator()
    sink = Collector()
    with pytest.raises(ValueError):
        CbrGenerator(sim, "f", sink, rate_bps=0)
    with pytest.raises(ValueError):
        BackloggedSource(sim, "f", sink, depth=0)
