"""Tests for the link model."""

import pytest

from repro.sim.link import Link, gbps
from repro.sim.packet import Packet


def test_transmission_time():
    link = Link(gbps(10))
    packet = Packet("f", size_bytes=1250)  # 10 000 bits
    assert link.transmission_time(packet) == pytest.approx(1e-6)


def test_transmit_occupies_link():
    link = Link(gbps(1))
    packet = Packet("f", size_bytes=125)  # 1000 bits -> 1 us
    finish = link.transmit(packet, now=0.0)
    assert finish == pytest.approx(1e-6)
    assert not link.is_idle(0.5e-6)
    assert link.is_idle(1e-6)


def test_transmit_while_busy_raises():
    link = Link(gbps(1))
    link.transmit(Packet("f"), now=0.0)
    with pytest.raises(RuntimeError):
        link.transmit(Packet("f"), now=0.0)


def test_counters_and_utilization():
    link = Link(gbps(1))
    finish = link.transmit(Packet("f", size_bytes=125), now=0.0)
    link.transmit(Packet("f", size_bytes=125), now=finish)
    assert link.packets_sent == 2
    assert link.bytes_sent == 250
    assert link.utilization(4e-6) == pytest.approx(0.5)


def test_rate_must_be_positive():
    with pytest.raises(ValueError):
        Link(0)


def test_gbps_helper():
    assert gbps(40) == 40e9
