"""Tests for CSV trace export."""

import csv
import io

import pytest

from repro.sim.recorder import Recorder
from repro.sim.trace import (departures_csv, save_trace, write_departures,
                             write_flow_summary)


@pytest.fixture
def recorder():
    recorder = Recorder()
    recorder.record(0.0, "a", 1500, 1)
    recorder.record(1.0, "b", 700, 2)
    recorder.record(2.0, "a", 1500, 3)
    return recorder


def test_departures_csv_roundtrip(recorder):
    rows = list(csv.DictReader(io.StringIO(departures_csv(recorder))))
    assert len(rows) == 3
    assert rows[0]["flow_id"] == "a"
    assert float(rows[1]["time"]) == 1.0
    assert int(rows[2]["packet_id"]) == 3


def test_times_roundtrip_exactly(recorder):
    """repr() formatting must preserve float timestamps bit-exactly."""
    precise = Recorder()
    precise.record(1 / 3, "f", 100, 0)
    rows = list(csv.DictReader(io.StringIO(departures_csv(precise))))
    assert float(rows[0]["time"]) == 1 / 3


def test_flow_summary(recorder):
    buffer = io.StringIO()
    count = write_flow_summary(recorder, buffer, start=0.0, end=3.0)
    assert count == 2
    rows = {row["flow_id"]: row
            for row in csv.DictReader(io.StringIO(buffer.getvalue()))}
    assert int(rows["a"]["packets"]) == 2
    assert int(rows["a"]["bytes"]) == 3000
    assert float(rows["a"]["rate_bps"]) == pytest.approx(3000 * 8 / 3.0)
    assert float(rows["b"]["first_departure"]) == 1.0


def test_save_trace_files(tmp_path, recorder):
    trace_path = tmp_path / "trace.csv"
    summary_path = tmp_path / "summary.csv"
    save_trace(recorder, str(trace_path), str(summary_path))
    assert len(trace_path.read_text().splitlines()) == 4  # header + 3
    assert len(summary_path.read_text().splitlines()) == 3


def test_empty_recorder_export():
    buffer = io.StringIO()
    assert write_departures(Recorder(), buffer) == 0
    assert write_flow_summary(Recorder(), io.StringIO()) == 0
