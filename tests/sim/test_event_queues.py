"""Event-queue backends: differential, calendar-specific, and soak tests.

The load-bearing property is that every registered backend fires events
in exactly the (time, seq) order of the reference heap — including
same-instant ties and lazily-cancelled entries — so simulation results
are bit-identical across backends.  The hypothesis lockstep test below
drives random schedule/cancel/advance programs through a Simulator per
backend and compares the full firing logs.
"""

import itertools
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.sim.events import (COMPACT_MIN_CANCELLED, CalendarEventQueue,
                              HeapEventQueue, Simulator,
                              available_event_queues, get_event_queue,
                              make_event_queue, register_event_queue)

BACKENDS = ("reference", "calendar")


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_both_backends():
    assert set(BACKENDS) <= set(available_event_queues())
    assert get_event_queue("reference").factory is HeapEventQueue
    assert get_event_queue("calendar").factory is CalendarEventQueue


def test_registry_rejects_unknown_and_duplicate_names():
    with pytest.raises(ConfigurationError):
        get_event_queue("nope")
    with pytest.raises(ConfigurationError):
        register_event_queue("reference", HeapEventQueue)


def test_queue_config_reaches_factory():
    queue = make_event_queue("calendar", bucket_width=1e-3)
    assert queue._width == 1e-3
    with pytest.raises(ConfigurationError):
        Simulator(queue=HeapEventQueue(),
                  queue_config={"bucket_width": 1e-3})


# ----------------------------------------------------------------------
# Both backends pass the simulator's basic contract
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_time_order_and_fifo_ties(backend):
    sim = Simulator(queue=backend)
    log = []
    sim.schedule(2.0, lambda: log.append("late"))
    for name in "abc":  # same instant: scheduling order
        sim.schedule(1.0, lambda name=name: log.append(name))
    sim.schedule(0.5, lambda: log.append("early"))
    sim.run()
    assert log == ["early", "a", "b", "c", "late"]


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_then_fire_race(backend):
    """Cancelling one of several same-instant entries must skip exactly
    that one, even after a peek already surfaced the bucket."""
    sim = Simulator(queue=backend)
    log = []
    doomed = sim.schedule(1.0, lambda: log.append("doomed"))
    sim.schedule(1.0, lambda: log.append("kept"))
    assert sim.peek_next_time() == 1.0  # may prune into the bucket
    doomed.cancel()
    assert sim.peek_next_time() == 1.0
    sim.run()
    assert log == ["kept"]
    assert sim.pending_events == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_cancel_after_fire_is_noop(backend):
    sim = Simulator(queue=backend)
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    handle.cancel()  # already fired: must not corrupt the gauges
    assert sim.cancelled_events == 0


# ----------------------------------------------------------------------
# Calendar-queue specifics
# ----------------------------------------------------------------------
def test_calendar_bucket_width_validated():
    for width in (0.0, -1.0, math.inf):
        with pytest.raises(ConfigurationError):
            CalendarEventQueue(bucket_width=width)


def test_calendar_far_future_slot_is_clamped():
    sim = Simulator(queue="calendar")
    log = []
    sim.schedule(1e300, lambda: log.append("far"))
    sim.schedule(1.0, lambda: log.append("near"))
    assert sim.peek_next_time() == 1.0
    sim.run()
    assert log == ["near", "far"]


def test_calendar_cross_bucket_order():
    """Entries microseconds apart land in different buckets but still
    fire in time order; entries within one bucket order by (time, seq)."""
    sim = Simulator(queue="calendar", queue_config={"bucket_width": 1e-6})
    log = []
    for t in (5e-6, 1e-7, 3e-6, 1.5e-7, 1e-7):
        sim.schedule(t, lambda t=t: log.append(t))
    sim.run()
    assert log == [1e-7, 1e-7, 1.5e-7, 3e-6, 5e-6]


def test_calendar_empty_bucket_is_reclaimed():
    queue = CalendarEventQueue()
    sim = Simulator(queue=queue)
    sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    sim.run()
    assert len(queue._buckets) == 0
    assert queue.resident == 0


# ----------------------------------------------------------------------
# Hypothesis: lockstep differential
# ----------------------------------------------------------------------
# Delays below, at, and above the calendar bucket width (1 us), plus 0.0
# so same-instant ties are common.
_DELAYS = st.sampled_from(
    [0.0, 1e-7, 1.5e-7, 5e-7, 1e-6, 1.5e-6, 3.7e-6, 1e-3])

_COMMANDS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), _DELAYS),
        st.tuples(st.just("cancel"), st.integers(0, 63)),
        st.tuples(st.just("advance"), _DELAYS),
    ),
    max_size=80)


def _execute(backend, commands):
    """Run one command program; returns (firing log, final now, fired).

    Callbacks occasionally reschedule so the differential also covers
    events scheduled from inside the dispatch loop.
    """
    sim = Simulator(queue=backend)
    log = []
    handles = []
    labels = itertools.count()

    def fire(label, delay):
        log.append((label, sim.now))
        if label % 7 == 3:  # deterministic in-callback reschedule
            chained = next(labels)
            handles.append(sim.schedule(
                sim.now + delay, lambda: log.append((chained, sim.now))))

    for command in commands:
        kind, value = command
        if kind == "schedule":
            label = next(labels)
            handles.append(sim.schedule(
                sim.now + value, lambda l=label, d=value: fire(l, d)))
        elif kind == "cancel":
            if handles:
                handles[value % len(handles)].cancel()
        else:  # advance
            sim.run_until(sim.now + value)
    sim.run()
    return log, sim.now, sim.events_fired


@given(commands=_COMMANDS)
@settings(max_examples=60, deadline=None)
def test_backends_fire_identically(commands):
    reference = _execute("reference", commands)
    calendar = _execute("calendar", commands)
    assert calendar == reference


@given(commands=_COMMANDS, width=st.sampled_from([1e-7, 1e-6, 1e-4, 1.0]))
@settings(max_examples=30, deadline=None)
def test_calendar_order_independent_of_bucket_width(commands, width):
    reference = _execute("reference", commands)
    sim_result = _execute(
        CalendarEventQueue(bucket_width=width), commands)
    assert sim_result == reference


# ----------------------------------------------------------------------
# Soak: compaction bounds the resident set under cancel churn
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
def test_compaction_bounds_resident_under_cancel_churn(backend):
    """A retry-timer workload (arm, cancel, re-arm x5000) must not grow
    the queue: lazy cancellation alone would retain every dead entry
    until its time surfaced, but compaction rebuilds once dead entries
    outnumber live ones.  The obs gauges see the same bound."""
    metrics = MetricsRegistry()
    sim = Simulator(queue=backend, metrics=metrics)
    sim.schedule(1.0, lambda: None)  # one live keeper
    peak_resident = 0
    for _ in range(5_000):
        handle = sim.schedule(0.5, lambda: None)
        handle.cancel()
        peak_resident = max(peak_resident, sim._queue.resident)
    bound = 2 * COMPACT_MIN_CANCELLED + 8
    assert peak_resident <= bound
    assert sim.pending_events == 1
    assert sim.cancelled_events <= bound
    cancelled_gauge = metrics.gauge("sim.cancelled_events")
    pending_gauge = metrics.gauge("sim.pending_events")
    assert cancelled_gauge.max <= bound
    assert pending_gauge.max <= bound
    sim.run()
    assert sim.pending_events == 0
    assert pending_gauge.value == 0


@pytest.mark.parametrize("backend", BACKENDS)
def test_tiny_queues_skip_compaction(backend):
    """Below the absolute floor, cancellations stay lazily resident."""
    sim = Simulator(queue=backend)
    handles = [sim.schedule(1.0, lambda: None)
               for _ in range(COMPACT_MIN_CANCELLED)]
    for handle in handles:
        handle.cancel()
    assert sim.cancelled_events == COMPACT_MIN_CANCELLED
    assert sim.pending_events == 0
