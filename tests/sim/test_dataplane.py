"""Tests for ports, classification, and the dataplane orchestrator."""

import io

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry, Tracer
from repro.sched import DeficitRoundRobin, PieoScheduler
from repro.sim import (BufferManager, Dataplane, FlowQueue,
                       FnClassifier, HashClassifier, Link, Packet,
                       Simulator, StaticClassifier, TransmitEngine,
                       gbps, single_port_dataplane)
from repro.sim.dataplane import single_port_dataplane as _spd_alias
from repro.sim.generators import CbrGenerator
from repro.sim.packet import MTU_BYTES, reset_packet_ids


# ----------------------------------------------------------------------
# Classifiers
# ----------------------------------------------------------------------
def test_static_classifier():
    classifier = StaticClassifier({"a": "p0", "b": "p1"})
    assert classifier.port_of("a") == "p0"
    assert classifier.port_of("b") == "p1"
    with pytest.raises(ConfigurationError):
        classifier.port_of("c")
    assert StaticClassifier({}, default="p9").port_of("c") == "p9"


def test_hash_classifier_is_stable_and_covers_ports():
    ports = ["p0", "p1", "p2"]
    classifier = HashClassifier(ports)
    mapping = {f"f{index}": classifier.port_of(f"f{index}")
               for index in range(64)}
    # Deterministic (CRC32, not salted builtin hash) ...
    assert mapping == {flow_id: HashClassifier(ports).port_of(flow_id)
                       for flow_id in mapping}
    # ... and reasonably spread.
    assert set(mapping.values()) == set(ports)
    with pytest.raises(ConfigurationError):
        HashClassifier([])


def test_fn_classifier():
    classifier = FnClassifier(lambda flow_id: f"p{flow_id % 2}")
    assert classifier.port_of(4) == "p0"
    assert classifier.port_of(5) == "p1"


# ----------------------------------------------------------------------
# Single-port compatibility wrapper
# ----------------------------------------------------------------------
def _run_bare(duration=0.001):
    reset_packet_ids()
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    metrics = MetricsRegistry()
    sim = Simulator(tracer=tracer, metrics=metrics)
    link = Link(gbps(10), tracer=tracer)
    scheduler = PieoScheduler(DeficitRoundRobin(),
                              link_rate_bps=link.rate_bps,
                              tracer=tracer, metrics=metrics)
    engine = TransmitEngine(sim, scheduler, link, tracer=tracer,
                            metrics=metrics)
    for index in range(2):
        flow_id = f"f{index}"
        scheduler.add_flow(FlowQueue(flow_id))
        CbrGenerator(sim, flow_id, engine.arrival_sink,
                     rate_bps=gbps(8), end_time=duration).start(0.0)
    sim.run_until(duration)
    return engine.recorder.departures, sink.getvalue(), \
        metrics.snapshot()


def _run_wrapped(duration=0.001):
    reset_packet_ids()
    sink = io.StringIO()
    tracer = Tracer(capacity=0, sink=sink)
    metrics = MetricsRegistry()
    sim = Simulator(tracer=tracer, metrics=metrics)
    link = Link(gbps(10), tracer=tracer)
    scheduler = PieoScheduler(DeficitRoundRobin(),
                              link_rate_bps=link.rate_bps,
                              tracer=tracer, metrics=metrics)
    dataplane = single_port_dataplane(sim, scheduler, link,
                                      tracer=tracer, metrics=metrics)
    for index in range(2):
        flow_id = f"f{index}"
        scheduler.add_flow(FlowQueue(flow_id))
        CbrGenerator(sim, flow_id, dataplane.arrival_sink,
                     rate_bps=gbps(8), end_time=duration).start(0.0)
    sim.run_until(duration)
    port = dataplane.ports["p0"]
    return port.recorder.departures, sink.getvalue(), \
        metrics.snapshot()


def test_single_port_wrapper_is_bit_identical_to_bare_engine():
    bare_departures, bare_trace, bare_metrics = _run_bare()
    wrapped_departures, wrapped_trace, wrapped_metrics = _run_wrapped()
    assert bare_departures == wrapped_departures
    assert bare_trace == wrapped_trace
    # engine.schedule_us measures *wall-clock* scheduling latency —
    # inherently non-deterministic — so compare only its sample count;
    # every sim-time-derived metric must match exactly.
    for snapshot in (bare_metrics, wrapped_metrics):
        snapshot["histograms"]["engine.schedule_us"] = \
            snapshot["histograms"]["engine.schedule_us"]["count"]
    assert bare_metrics == wrapped_metrics
    assert len(bare_departures) > 0
    # No port labels leak into the compatibility path's trace.
    assert '"port"' not in wrapped_trace


def test_single_port_dataplane_conservation_without_buffer():
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(DeficitRoundRobin(),
                              link_rate_bps=link.rate_bps)
    dataplane = _spd_alias(sim, scheduler, link)
    scheduler.add_flow(FlowQueue("f"))
    CbrGenerator(sim, "f", dataplane.arrival_sink, rate_bps=gbps(4),
                 end_time=0.001).start(0.0)
    sim.run_until(0.002)
    conservation = dataplane.conservation()
    assert conservation["balanced"]
    assert conservation["drops"] == 0
    assert conservation["arrivals"] == conservation["departures"] \
        + conservation["residue"]


# ----------------------------------------------------------------------
# Multi-port routing and shared-buffer wiring
# ----------------------------------------------------------------------
def _two_port_dataplane(buffer=None, tracer=None, metrics=None,
                        drain=None):
    sim = Simulator(tracer=tracer, metrics=metrics)
    dataplane = Dataplane(
        sim, classifier=StaticClassifier({"a": "p0", "b": "p1"}),
        buffer=buffer, tracer=tracer, metrics=metrics)
    for port_id in ("p0", "p1"):
        dataplane.add_port(
            port_id,
            make_scheduler=lambda t, m: PieoScheduler(
                DeficitRoundRobin(), link_rate_bps=gbps(10),
                tracer=t, metrics=m),
            link_rate_bps=gbps(10), drain=drain)
    dataplane.ports["p0"].scheduler.add_flow(FlowQueue("a"))
    dataplane.ports["p1"].scheduler.add_flow(FlowQueue("b"))
    return sim, dataplane


def test_classifier_routes_flows_to_their_ports():
    sim, dataplane = _two_port_dataplane()
    for _ in range(3):
        dataplane.arrival_sink("a", Packet("a"))
        dataplane.arrival_sink("b", Packet("b"))
    sim.run_until(0.01)
    assert len(dataplane.ports["p0"].recorder) == 3
    assert len(dataplane.ports["p1"].recorder) == 3
    assert all(d.flow_id == "a" for d in
               dataplane.ports["p0"].recorder.departures)
    assert dataplane.departures() == 6


def test_multi_port_requires_classifier():
    sim = Simulator()
    dataplane = Dataplane(sim)
    for port_id in ("p0", "p1"):
        dataplane.add_port(
            port_id,
            make_scheduler=lambda t, m: PieoScheduler(
                DeficitRoundRobin(), link_rate_bps=gbps(10)),
            link_rate_bps=gbps(10))
    with pytest.raises(ConfigurationError, match="classifier"):
        dataplane.arrival_sink("a", Packet("a"))


def test_unknown_port_from_classifier_raises():
    sim = Simulator()
    dataplane = Dataplane(sim,
                          classifier=StaticClassifier({"a": "nope"}))
    dataplane.add_port(
        "p0",
        make_scheduler=lambda t, m: PieoScheduler(
            DeficitRoundRobin(), link_rate_bps=gbps(10)),
        link_rate_bps=gbps(10))
    with pytest.raises(ConfigurationError, match="unknown port"):
        dataplane.arrival_sink("a", Packet("a"))


def test_duplicate_port_id_rejected():
    sim = Simulator()
    dataplane = Dataplane(sim)
    dataplane.add_port(
        "p0",
        make_scheduler=lambda t, m: PieoScheduler(
            DeficitRoundRobin(), link_rate_bps=gbps(10)),
        link_rate_bps=gbps(10))
    with pytest.raises(ConfigurationError, match="duplicate"):
        dataplane.add_port(
            "p0",
            make_scheduler=lambda t, m: PieoScheduler(
                DeficitRoundRobin(), link_rate_bps=gbps(10)),
            link_rate_bps=gbps(10))


def test_shared_buffer_drops_and_conservation():
    buffer = BufferManager(capacity_pkts=2)
    sim, dataplane = _two_port_dataplane(buffer=buffer)
    for _ in range(6):
        dataplane.arrival_sink("a", Packet("a"))
        dataplane.arrival_sink("b", Packet("b"))
    conservation = dataplane.conservation()
    assert conservation["arrivals"] == 12
    assert conservation["drops"] == 10
    assert conservation["residue"] == 2
    assert conservation["balanced"]
    sim.run_until(0.01)
    final = dataplane.conservation()
    assert final["departures"] == 2
    assert final["residue"] == 0
    assert final["balanced"]
    # Transmissions credited occupancy back.
    assert buffer.total_bytes == 0


def test_buffer_released_on_departure_allows_later_arrivals():
    buffer = BufferManager(capacity_pkts=1)
    sim, dataplane = _two_port_dataplane(buffer=buffer)
    CbrGenerator(sim, "a", dataplane.arrival_sink, rate_bps=gbps(1),
                 end_time=0.001).start(0.0)
    sim.run_until(0.002)
    # At 1 Gbps offered vs 10 Gbps drained, each packet leaves long
    # before the next arrives: nothing is ever dropped.
    assert buffer.dropped == 0
    assert dataplane.conservation()["balanced"]
    assert len(dataplane.ports["p0"].recorder) > 10


def test_port_labels_on_trace_and_metrics():
    tracer = Tracer()
    metrics = MetricsRegistry()
    buffer = BufferManager(capacity_pkts=1, tracer=tracer,
                           metrics=metrics)
    sim, dataplane = _two_port_dataplane(buffer=buffer, tracer=tracer,
                                         metrics=metrics)
    for _ in range(2):
        dataplane.arrival_sink("a", Packet("a"))
        dataplane.arrival_sink("b", Packet("b"))
    sim.run_until(0.01)
    ports_seen = {event.fields.get("port")
                  for event in tracer.events_of("arrival")}
    assert ports_seen == {"p0", "p1"}
    drop_ports = {event.fields.get("port")
                  for event in tracer.events_of("drop")}
    assert drop_ports  # the 1-pkt buffer forced drops
    counters = metrics.snapshot()["counters"]
    assert counters["port.p0.engine.arrivals"] == 2
    assert counters["port.p1.engine.arrivals"] == 2
    assert "buffer.dropped" in counters


# ----------------------------------------------------------------------
# Multi-engine clock safety (advance_to guard)
# ----------------------------------------------------------------------
def test_advance_to_refused_with_two_engines():
    sim, dataplane = _two_port_dataplane()
    assert sim._clock_consumers == 2
    sim.run_until(0.0)  # establish a horizon of sorts

    refused = []

    def probe():
        refused.append(sim.advance_to(sim.now + 1e-6))

    sim.schedule(0.0, probe)
    sim.run_until(0.001)
    assert refused == [False]


def test_advance_to_allowed_with_single_engine():
    sim = Simulator()
    sim.register_clock_consumer()
    outcome = []
    sim.schedule(0.0, lambda: outcome.append(
        sim.advance_to(sim.now + 1e-6)))
    sim.run_until(0.001)
    assert outcome == [True]


def test_two_engine_output_identical_drain_on_and_off():
    def run(drain):
        reset_packet_ids()
        sim, dataplane = _two_port_dataplane(drain=drain)
        for flow_id in ("a", "b"):
            CbrGenerator(sim, flow_id, dataplane.arrival_sink,
                         rate_bps=gbps(8), end_time=0.001).start(0.0)
        sim.run_until(0.001)
        return [port.recorder.departures
                for port in dataplane.ports.values()]

    assert run(drain=True) == run(drain=False)


# ----------------------------------------------------------------------
# Engine admission hook ordering
# ----------------------------------------------------------------------
def test_admission_refusal_keeps_scheduler_clean():
    """A dropped arrival must not reach the scheduler or its queues."""
    buffer = BufferManager(capacity_pkts=1)
    sim, dataplane = _two_port_dataplane(buffer=buffer)
    dataplane.arrival_sink("a", Packet("a"))
    dataplane.arrival_sink("a", Packet("a"))  # dropped
    queue = dataplane.ports["p0"].scheduler.flows["a"]
    assert len(queue) == 1
    assert queue.packets_enqueued == 1


def test_arrival_traced_before_drop():
    """Conservation audits require the arrival event to precede the
    drop event for the same packet."""
    tracer = Tracer()
    buffer = BufferManager(capacity_pkts=1, tracer=tracer)
    sim, dataplane = _two_port_dataplane(buffer=buffer, tracer=tracer)
    dataplane.arrival_sink("a", Packet("a"))
    dataplane.arrival_sink("a", Packet("a"))
    kinds = [event.kind for event in tracer.events
             if event.kind in ("arrival", "drop")]
    assert kinds == ["arrival", "arrival", "drop"]


def test_mtu_constant_unchanged():
    # The incast experiment's staggering math assumes the MTU constant.
    assert MTU_BYTES == 1500
