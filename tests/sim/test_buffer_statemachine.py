"""Property-based state machines for BufferManager drop policies.

Hypothesis drives random admit/release interleavings against the
shared-buffer admission stage and checks, after every step, the
accounting invariants a real switch memory manager must never break:

* no occupancy counter ever goes negative;
* the three accounting granularities (global, per-port, per-flow)
  always agree with each other and with the ground-truth packet set;
* admitted / dropped / evicted totals balance against the number of
  operations issued;
* push-out (longest-queue drop) charges the hog — the first eviction
  always removes the tail of the queue that held the most bytes;
* RED is deterministic per seed: the same operation sequence against
  the same seed yields the same drop decisions.
"""

from hypothesis import settings, strategies as st
from hypothesis.stateful import (RuleBasedStateMachine, invariant,
                                 precondition, rule)

from repro.sim.buffer import BufferManager, RedDrop
from repro.sim.flow import FlowQueue
from repro.sim.packet import Packet

PORTS = [0, 1]
FLOWS = ["a", "b", "c"]

ports = st.sampled_from(PORTS)
flows = st.sampled_from(FLOWS)
sizes = st.integers(min_value=100, max_value=1500)


def _make_packet(flow_id, size):
    return Packet(flow_id=flow_id, size_bytes=size)


class TailDropMachine(RuleBasedStateMachine):
    """Tail-drop: every limit refusal leaves occupancy untouched."""

    def __init__(self):
        super().__init__()
        self.buffer = BufferManager(capacity_bytes=12_000,
                                    capacity_pkts=8,
                                    per_port_bytes=9_000,
                                    per_flow_bytes=6_000,
                                    policy="tail-drop")
        # Ground truth: sizes of packets currently resident.
        self.resident = {}
        self.attempts = 0

    @rule(port=ports, flow=flows, size=sizes)
    def admit(self, port, flow, size):
        self.attempts += 1
        before = (self.buffer.total_bytes, self.buffer.total_pkts)
        admitted = self.buffer.admit(port, flow,
                                     _make_packet(flow, size), now=0.0)
        if admitted:
            self.resident.setdefault((port, flow), []).append(size)
        else:
            # A tail-drop refusal must not move any occupancy.
            assert (self.buffer.total_bytes,
                    self.buffer.total_pkts) == before

    @precondition(lambda self: any(self.resident.values()))
    @rule(data=st.data())
    def release(self, data):
        key = data.draw(st.sampled_from(
            sorted(k for k, v in self.resident.items() if v)))
        size = self.resident[key].pop(0)
        self.buffer.release(key[0], key[1], size)

    @invariant()
    def accounting_never_negative(self):
        buf = self.buffer
        assert buf.total_bytes >= 0 and buf.total_pkts >= 0
        assert all(v >= 0 for v in buf.port_bytes.values())
        assert all(v >= 0 for v in buf.port_pkts.values())
        assert all(v >= 0 for v in buf.flow_bytes.values())
        assert all(v >= 0 for v in buf.flow_pkts.values())

    @invariant()
    def granularities_agree_with_ground_truth(self):
        buf = self.buffer
        want_bytes = sum(sum(v) for v in self.resident.values())
        want_pkts = sum(len(v) for v in self.resident.values())
        assert buf.total_bytes == want_bytes
        assert buf.total_pkts == want_pkts
        assert sum(buf.port_bytes.values()) == want_bytes
        assert sum(buf.flow_bytes.values()) == want_bytes
        assert sum(buf.port_pkts.values()) == want_pkts
        assert sum(buf.flow_pkts.values()) == want_pkts
        for (port, flow), packets in self.resident.items():
            assert buf.flow_bytes.get((port, flow), 0) == sum(packets)
            assert buf.flow_pkts.get((port, flow), 0) == len(packets)

    @invariant()
    def capacities_respected(self):
        buf = self.buffer
        assert buf.total_bytes <= buf.capacity_bytes
        assert buf.total_pkts <= buf.capacity_pkts
        assert all(v <= buf.per_port_bytes
                   for v in buf.port_bytes.values())
        assert all(v <= buf.per_flow_bytes
                   for v in buf.flow_bytes.values())

    @invariant()
    def totals_balance(self):
        buf = self.buffer
        assert buf.admitted + buf.dropped == self.attempts
        assert buf.evicted == 0  # tail-drop never pushes out
        assert buf.dropped == sum(buf.drops_by_reason.values())
        assert buf.dropped == sum(buf.drops_by_port.values())


class LongestQueueMachine(RuleBasedStateMachine):
    """Push-out: evictions are real drop_tail calls on live queues, so
    the queues themselves are the ground truth and the first victim of
    every make_room pass must be the pre-admit hog."""

    def __init__(self):
        super().__init__()
        self.buffer = BufferManager(capacity_bytes=8_000,
                                    capacity_pkts=6,
                                    policy="longest-queue")
        self.queues = {}
        for port in PORTS:
            self.buffer.attach_port(
                port,
                lambda fid, port=port: self.queues.get((port, fid)))
        self.attempts = 0

    def _queue(self, port, flow):
        key = (port, flow)
        if key not in self.queues:
            self.queues[key] = FlowQueue(flow)
        return self.queues[key]

    @rule(port=ports, flow=flows, size=sizes)
    def admit(self, port, flow, size):
        self.attempts += 1
        buf = self.buffer
        hog = buf.longest_queue(min_depth=2)
        hog_tail = hog[2].queue[-1].packet_id if hog else None
        evicted_before = buf.evicted
        packet = _make_packet(flow, size)
        if buf.admit(port, flow, packet, now=0.0):
            self._queue(port, flow).push(packet)
        if buf.evicted > evicted_before:
            # Push-out charged the hog: the queue that held the most
            # bytes before this arrival lost its tail packet.
            assert hog is not None
            assert hog_tail not in {
                resident.packet_id for resident in hog[2].queue}
            assert buf.drops_by_reason.get(
                "evicted:longest-queue", 0) > 0

    @precondition(lambda self: any(len(q) for q in
                                   self.queues.values()))
    @rule(data=st.data())
    def transmit(self, data):
        port, flow = data.draw(st.sampled_from(
            sorted(k for k, q in self.queues.items() if len(q))))
        packet = self.queues[(port, flow)].pop()
        self.buffer.release(port, flow, packet.size_bytes)

    @invariant()
    def queues_are_the_ground_truth(self):
        buf = self.buffer
        want_bytes = sum(q.backlog_bytes for q in self.queues.values())
        want_pkts = sum(len(q) for q in self.queues.values())
        assert buf.total_bytes == want_bytes
        assert buf.total_pkts == want_pkts
        assert sum(buf.port_bytes.values()) == want_bytes
        assert sum(buf.flow_bytes.values()) == want_bytes
        assert sum(buf.flow_pkts.values()) == want_pkts
        for (port, flow), queue in self.queues.items():
            assert buf.flow_bytes.get((port, flow), 0) == \
                queue.backlog_bytes
            assert buf.flow_pkts.get((port, flow), 0) == len(queue)

    @invariant()
    def accounting_never_negative(self):
        buf = self.buffer
        assert buf.total_bytes >= 0 and buf.total_pkts >= 0
        assert all(v >= 0 for v in buf.flow_bytes.values())
        assert all(v >= 0 for v in buf.flow_pkts.values())

    @invariant()
    def capacities_respected_after_pushout(self):
        assert self.buffer.total_bytes <= self.buffer.capacity_bytes
        assert self.buffer.total_pkts <= self.buffer.capacity_pkts

    @invariant()
    def totals_balance(self):
        buf = self.buffer
        # Every admitted packet is resident, transmitted, or evicted;
        # eviction counts both as a drop and against admitted.
        assert buf.admitted + buf.dropped - buf.evicted \
            == self.attempts
        assert buf.evicted == buf.drops_by_reason.get(
            "evicted:longest-queue", 0)


class RedDeterminismMachine(RuleBasedStateMachine):
    """Two RED buffers with the same seed, fed the same operations,
    must make identical drop decisions at every step."""

    def __init__(self):
        super().__init__()
        self.pair = [
            BufferManager(capacity_bytes=6_000,
                          policy=RedDrop(seed=7, min_fill=0.1,
                                         max_fill=0.6,
                                         max_probability=0.9))
            for _ in range(2)]
        self.resident = []

    @rule(port=ports, flow=flows, size=sizes)
    def admit(self, port, flow, size):
        verdicts = [buf.admit(port, flow, _make_packet(flow, size),
                              now=0.0) for buf in self.pair]
        assert verdicts[0] == verdicts[1], (
            "same seed, same sequence, different RED decision")
        if verdicts[0]:
            self.resident.append((port, flow, size))

    @precondition(lambda self: self.resident)
    @rule(data=st.data())
    def release(self, data):
        index = data.draw(st.integers(
            min_value=0, max_value=len(self.resident) - 1))
        port, flow, size = self.resident.pop(index)
        for buf in self.pair:
            buf.release(port, flow, size)

    @invariant()
    def twins_agree(self):
        first, second = self.pair
        assert first.total_bytes == second.total_bytes
        assert first.dropped == second.dropped
        assert first.drops_by_reason == second.drops_by_reason


TestTailDropMachine = TailDropMachine.TestCase
TestLongestQueueMachine = LongestQueueMachine.TestCase
TestRedDeterminismMachine = RedDeterminismMachine.TestCase

for case in (TestTailDropMachine, TestLongestQueueMachine,
             TestRedDeterminismMachine):
    case.settings = settings(max_examples=40, stateful_step_count=40,
                             deadline=None)


def test_release_underflow_is_rejected():
    """Accounting can never be driven negative: over-releasing raises
    instead of silently corrupting the occupancy counters."""
    import pytest

    buffer = BufferManager(capacity_bytes=10_000)
    packet = _make_packet("a", 1000)
    assert buffer.admit(0, "a", packet, now=0.0)
    buffer.release(0, "a", 1000)
    with pytest.raises(ValueError, match="underflow"):
        buffer.release(0, "a", 1000)


def test_red_different_seeds_may_disagree():
    """The seed is the only entropy source: drive a long identical
    sequence through seeds 1..20 and require at least two distinct
    drop counts (if all agree, the RNG is not actually consulted)."""
    counts = set()
    for seed in range(1, 21):
        buffer = BufferManager(
            capacity_bytes=6_000,
            policy=RedDrop(seed=seed, min_fill=0.1, max_fill=0.9,
                           max_probability=0.5))
        for step in range(40):
            buffer.admit(0, "a", _make_packet("a", 1000), now=0.0)
            # Hold occupancy around half-full so the EWMA sits inside
            # the probabilistic band rather than at 0 or saturation.
            while buffer.total_pkts > 3:
                buffer.release(0, "a", 1000)
        counts.add(buffer.dropped)
    assert len(counts) > 1
