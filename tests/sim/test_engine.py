"""Tests for the transmit engine, with a FIFO scheduler (the simplest
engine-compatible scheduler) and a shaping scheduler for retry timers."""

import pytest

from repro.baselines.fifo import FifoScheduler
from repro.sched import PieoScheduler, TokenBucket
from repro.sim import (FlowQueue, Link, Packet, Simulator, TransmitEngine,
                       gbps)


def test_engine_serializes_packets_on_link():
    sim = Simulator()
    link = Link(gbps(1))  # 1500 B -> 12 us each
    engine = TransmitEngine(sim, FifoScheduler(), link)
    for index in range(3):
        engine.arrival_sink("f", Packet("f"))
    sim.run_until(1.0)
    departures = engine.recorder.departures
    assert len(departures) == 3
    times = [departure.time for departure in departures]
    assert times[1] - times[0] == pytest.approx(1500 * 8 / 1e9)
    assert times[2] - times[1] == pytest.approx(1500 * 8 / 1e9)


def test_engine_records_fifo_order():
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    engine.arrival_sink("a", Packet("a"))
    engine.arrival_sink("b", Packet("b"))
    sim.run_until(1.0)
    assert engine.recorder.order() == ["a", "b"]


def test_engine_stays_quiet_with_no_arrivals():
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    sim.run_until(1.0)
    assert len(engine.recorder) == 0
    assert sim.events_fired == 0


def test_engine_arms_retry_for_shaped_traffic():
    """Non-work-conserving path: a lone ineligible flow must be retried
    at its send time, not spin."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TokenBucket(default_burst_bytes=1500),
                              link_rate_bps=link.rate_bps)
    flow = FlowQueue("f", rate_bps=1e6)  # 1 Mbps -> 12 ms per MTU
    scheduler.add_flow(flow)
    engine = TransmitEngine(sim, scheduler, link)
    # Two packets: the first rides the initial burst allowance, the
    # second must wait a full token refill (12 ms).
    engine.arrival_sink("f", Packet("f"))
    engine.arrival_sink("f", Packet("f"))
    sim.run_until(0.1)
    departures = engine.recorder.departures
    assert len(departures) == 2
    gap = departures[1].time - departures[0].time
    assert gap == pytest.approx(1500 * 8 / 1e6, rel=0.01)
    # The event count must stay tiny (timer-driven, not polling).
    assert sim.events_fired < 25


def test_departure_listener_fires_at_finish_time():
    sim = Simulator()
    link = Link(gbps(1))
    engine = TransmitEngine(sim, FifoScheduler(), link)
    fired = []
    engine.add_departure_listener("f", lambda: fired.append(sim.now))
    engine.arrival_sink("f", Packet("f"))
    sim.run_until(1.0)
    assert fired == [pytest.approx(1500 * 8 / 1e9)]


def test_packet_departure_time_stamped():
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    packet = Packet("f")
    engine.arrival_sink("f", packet)
    sim.run_until(1.0)
    assert packet.departure_time == pytest.approx(1500 * 8 / 1e9)


def test_link_never_overcommitted():
    """Aggregate throughput can never exceed link rate."""
    sim = Simulator()
    link = Link(gbps(1))
    engine = TransmitEngine(sim, FifoScheduler(), link)
    for index in range(100):
        engine.arrival_sink("f", Packet("f"))
    sim.run_until(0.01)
    elapsed = engine.recorder.departures[-1].time
    achieved = engine.recorder.aggregate_rate_bps(0.0, elapsed + 12e-6)
    assert achieved <= 1e9 * 1.001


def test_transmit_batch_cancels_armed_retry():
    """Contract: a transmission retires any armed retry timer.  A stale
    wakeup surviving a batch would double-kick the scheduler."""
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    stale = sim.schedule(0.5, engine.kick)
    engine._retry_handle = stale
    engine._transmit_batch([Packet("f")], sim.now)
    assert stale.cancelled
    assert engine._retry_handle is None


def test_retry_handle_cleared_after_natural_fire():
    """Once the retry timer fires it is spent: the engine must drop the
    handle so a later cancel() cannot hit a dead event while a fresh
    timer goes untracked."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TokenBucket(default_burst_bytes=1500),
                              link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("f", rate_bps=1e6))
    engine = TransmitEngine(sim, scheduler, link)
    engine.arrival_sink("f", Packet("f"))
    engine.arrival_sink("f", Packet("f"))  # waits a 12 ms token refill
    sim.run_until(0.005)
    assert engine._retry_handle is not None  # armed for the refill
    sim.run_until(0.1)
    assert engine._retry_handle is None  # fired, transmitted, cleared
    assert len(engine.recorder) == 2


def test_stale_retry_does_not_double_probe_scheduler():
    """An arrival landing while a retry is armed must not leave the old
    timer around to probe schedule() a second time at the stale instant."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TokenBucket(default_burst_bytes=1500),
                              link_rate_bps=link.rate_bps)
    scheduler.add_flow(FlowQueue("slow", rate_bps=1e6))
    scheduler.add_flow(FlowQueue("burst", rate_bps=1e9))
    probes = []
    original = scheduler.schedule

    def counting_schedule(now):
        probes.append(now)
        return original(now)

    scheduler.schedule = counting_schedule
    engine = TransmitEngine(sim, scheduler, link)
    engine.arrival_sink("slow", Packet("slow"))
    engine.arrival_sink("slow", Packet("slow"))  # arms a ~12 ms retry
    sim.run_until(0.005)
    assert engine._retry_handle is not None
    stale = engine._retry_handle
    engine.arrival_sink("burst", Packet("burst"))  # transmits immediately
    sim.run_until(0.1)
    assert stale.cancelled  # batch retired the stale timer
    assert len(engine.recorder) == 3
    # Each probe instant appears once: no double-kick at the stale time.
    assert len(probes) == len(set(probes))
