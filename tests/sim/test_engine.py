"""Tests for the transmit engine, with a FIFO scheduler (the simplest
engine-compatible scheduler) and a shaping scheduler for retry timers."""

import pytest

from repro.baselines.fifo import FifoScheduler
from repro.sched import PieoScheduler, TokenBucket
from repro.sim import (FlowQueue, Link, Packet, Simulator, TransmitEngine,
                       gbps)


def test_engine_serializes_packets_on_link():
    sim = Simulator()
    link = Link(gbps(1))  # 1500 B -> 12 us each
    engine = TransmitEngine(sim, FifoScheduler(), link)
    for index in range(3):
        engine.arrival_sink("f", Packet("f"))
    sim.run_until(1.0)
    departures = engine.recorder.departures
    assert len(departures) == 3
    times = [departure.time for departure in departures]
    assert times[1] - times[0] == pytest.approx(1500 * 8 / 1e9)
    assert times[2] - times[1] == pytest.approx(1500 * 8 / 1e9)


def test_engine_records_fifo_order():
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    engine.arrival_sink("a", Packet("a"))
    engine.arrival_sink("b", Packet("b"))
    sim.run_until(1.0)
    assert engine.recorder.order() == ["a", "b"]


def test_engine_stays_quiet_with_no_arrivals():
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    sim.run_until(1.0)
    assert len(engine.recorder) == 0
    assert sim.events_fired == 0


def test_engine_arms_retry_for_shaped_traffic():
    """Non-work-conserving path: a lone ineligible flow must be retried
    at its send time, not spin."""
    sim = Simulator()
    link = Link(gbps(10))
    scheduler = PieoScheduler(TokenBucket(default_burst_bytes=1500),
                              link_rate_bps=link.rate_bps)
    flow = FlowQueue("f", rate_bps=1e6)  # 1 Mbps -> 12 ms per MTU
    scheduler.add_flow(flow)
    engine = TransmitEngine(sim, scheduler, link)
    # Two packets: the first rides the initial burst allowance, the
    # second must wait a full token refill (12 ms).
    engine.arrival_sink("f", Packet("f"))
    engine.arrival_sink("f", Packet("f"))
    sim.run_until(0.1)
    departures = engine.recorder.departures
    assert len(departures) == 2
    gap = departures[1].time - departures[0].time
    assert gap == pytest.approx(1500 * 8 / 1e6, rel=0.01)
    # The event count must stay tiny (timer-driven, not polling).
    assert sim.events_fired < 25


def test_departure_listener_fires_at_finish_time():
    sim = Simulator()
    link = Link(gbps(1))
    engine = TransmitEngine(sim, FifoScheduler(), link)
    fired = []
    engine.add_departure_listener("f", lambda: fired.append(sim.now))
    engine.arrival_sink("f", Packet("f"))
    sim.run_until(1.0)
    assert fired == [pytest.approx(1500 * 8 / 1e9)]


def test_packet_departure_time_stamped():
    sim = Simulator()
    engine = TransmitEngine(sim, FifoScheduler(), Link(gbps(1)))
    packet = Packet("f")
    engine.arrival_sink("f", packet)
    sim.run_until(1.0)
    assert packet.departure_time == pytest.approx(1500 * 8 / 1e9)


def test_link_never_overcommitted():
    """Aggregate throughput can never exceed link rate."""
    sim = Simulator()
    link = Link(gbps(1))
    engine = TransmitEngine(sim, FifoScheduler(), link)
    for index in range(100):
        engine.arrival_sink("f", Packet("f"))
    sim.run_until(0.01)
    elapsed = engine.recorder.departures[-1].time
    achieved = engine.recorder.aggregate_rate_bps(0.0, elapsed + 12e-6)
    assert achieved <= 1e9 * 1.001
