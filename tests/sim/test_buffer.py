"""Tests for shared-buffer admission (repro.sim.buffer)."""

import pytest

from repro.errors import ConfigurationError
from repro.obs import Tracer
from repro.sim import FlowQueue, Packet
from repro.sim.buffer import (BufferManager, LongestQueueDrop, RedDrop,
                              TailDrop, available_drop_policies,
                              get_drop_policy, make_drop_policy,
                              register_drop_policy)


def _pkt(flow_id, size=100):
    return Packet(flow_id=flow_id, size_bytes=size)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
def test_registry_lists_builtin_policies():
    names = available_drop_policies()
    assert {"tail-drop", "longest-queue", "red"} <= set(names)
    assert names == sorted(names)


def test_registry_instantiates_each_policy():
    assert isinstance(make_drop_policy("tail-drop"), TailDrop)
    assert isinstance(make_drop_policy("longest-queue"),
                      LongestQueueDrop)
    assert isinstance(make_drop_policy("red"), RedDrop)


def test_registry_unknown_name():
    with pytest.raises(ConfigurationError, match="unknown drop policy"):
        get_drop_policy("nope")


def test_registry_custom_registration():
    class MyPolicy(TailDrop):
        name = "mine"

    register_drop_policy("test-only", MyPolicy, description="x")
    try:
        assert isinstance(make_drop_policy("test-only"), MyPolicy)
    finally:
        from repro.sim.buffer import _DROP_POLICIES
        del _DROP_POLICIES["test-only"]


def test_buffer_accepts_policy_by_name_or_instance():
    assert isinstance(BufferManager(policy="red").policy, RedDrop)
    policy = LongestQueueDrop()
    assert BufferManager(policy=policy).policy is policy
    assert isinstance(BufferManager().policy, TailDrop)


# ----------------------------------------------------------------------
# Capacity accounting
# ----------------------------------------------------------------------
def test_global_byte_capacity_tail_drop():
    buffer = BufferManager(capacity_bytes=250)
    assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.admit("p0", "f1", _pkt("f1"), 0.0)
    assert not buffer.admit("p0", "f2", _pkt("f2"), 0.0)
    assert buffer.admitted == 2
    assert buffer.dropped == 1
    assert buffer.total_bytes == 200
    assert buffer.total_pkts == 2
    assert buffer.drops_by_reason == {"buffer:bytes": 1}


def test_global_pkt_capacity():
    buffer = BufferManager(capacity_pkts=1)
    assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert not buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.drops_by_reason == {"buffer:pkts": 1}


def test_per_port_and_per_flow_carveouts():
    buffer = BufferManager(capacity_bytes=10_000, per_port_bytes=300,
                           per_flow_pkts=2)
    for _ in range(2):
        assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    # Third packet for f0 violates the flow carve-out ...
    assert not buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.drops_by_reason == {"flow:pkts": 1}
    # ... another flow on the same port hits the port carve-out ...
    assert buffer.admit("p0", "f1", _pkt("f1"), 0.0)
    assert not buffer.admit("p0", "f1", _pkt("f1"), 0.0)
    assert buffer.drops_by_reason == {"flow:pkts": 1, "port:bytes": 1}
    # ... while another port is unaffected.
    assert buffer.admit("p1", "f2", _pkt("f2"), 0.0)


def test_release_credits_occupancy_back():
    buffer = BufferManager(capacity_bytes=200)
    assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert not buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    buffer.release("p0", "f0", 100)
    assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.total_pkts == 2


def test_release_underflow_raises():
    buffer = BufferManager(capacity_bytes=1000)
    buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    buffer.release("p0", "f0", 100)
    with pytest.raises(ValueError, match="underflow"):
        buffer.release("p0", "f0", 100)


def test_invalid_capacities_rejected():
    with pytest.raises(ConfigurationError):
        BufferManager(capacity_bytes=0)
    with pytest.raises(ConfigurationError):
        BufferManager(per_flow_pkts=-1)


def test_occupancy_snapshot():
    buffer = BufferManager(capacity_bytes=1000)
    buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    buffer.admit("p1", "f1", _pkt("f1", size=50), 0.0)
    snap = buffer.occupancy()
    assert snap["total_bytes"] == 150
    assert snap["total_pkts"] == 2
    assert snap["port_bytes"] == {"p0": 100, "p1": 50}
    assert snap["dropped"] == 0


# ----------------------------------------------------------------------
# Drop tracing
# ----------------------------------------------------------------------
def test_drop_events_carry_reason_and_port():
    tracer = Tracer()
    buffer = BufferManager(capacity_pkts=1, tracer=tracer)
    buffer.admit("p0", "f0", _pkt("f0"), 1.0)
    buffer.admit("p1", "f1", _pkt("f1"), 2.0)
    drops = tracer.events_of("drop")
    assert len(drops) == 1
    event = drops[0]
    assert event.time == 2.0
    assert event.fields["reason"] == "buffer:pkts"
    assert event.fields["port"] == "p1"
    assert event.fields["flow_id"] == "f1"


# ----------------------------------------------------------------------
# Longest-queue (push-out) policy
# ----------------------------------------------------------------------
def _lqd_buffer(capacity_bytes):
    buffer = BufferManager(capacity_bytes=capacity_bytes,
                           policy="longest-queue")
    queues = {}

    def attach(port_id):
        def resolver(flow_id):
            return queues.get((port_id, flow_id))
        buffer.attach_port(port_id, resolver)

    def admit(port_id, flow_id, size=100):
        packet = _pkt(flow_id, size)
        queue = queues.setdefault((port_id, flow_id),
                                  FlowQueue(flow_id))
        if buffer.admit(port_id, flow_id, packet, 0.0):
            queue.push(packet)
            return True
        return False

    return buffer, attach, admit, queues


def test_lqd_evicts_tail_of_longest_queue():
    buffer, attach, admit, queues = _lqd_buffer(capacity_bytes=400)
    attach("p0")
    attach("p1")
    for _ in range(3):
        assert admit("p0", "hog")
    assert admit("p1", "mouse")
    # Full.  A new arrival on p1 pushes out the hog's tail (the policy
    # trims the victim queue through the registered resolver).
    assert admit("p1", "mouse2")
    assert buffer.evicted == 1
    assert len(queues[("p0", "hog")]) == 2
    assert buffer.flow_pkts[("p0", "hog")] == 2
    assert buffer.drops_by_reason == {"evicted:longest-queue": 1}
    assert buffer.drops_by_port == {"p0": 1}


def test_lqd_never_strands_single_packet_queues():
    buffer, attach, admit, queues = _lqd_buffer(capacity_bytes=200)
    attach("p0")
    assert admit("p0", "a")
    assert admit("p0", "b")
    # Every queue has depth 1: no eligible victim, degrade to tail-drop.
    assert not admit("p0", "c")
    assert buffer.evicted == 0
    assert buffer.drops_by_reason == {"buffer:bytes": 1}


def test_lqd_respects_per_flow_carveout():
    # A flow exceeding its own carve-out must not push out others.
    buffer, attach, admit, queues = _lqd_buffer(capacity_bytes=10_000)
    buffer.per_flow_pkts = 2
    attach("p0")
    assert admit("p0", "greedy")
    assert admit("p0", "greedy")
    assert admit("p0", "other")
    assert admit("p0", "other")
    assert not admit("p0", "greedy")
    assert buffer.evicted == 0
    assert buffer.drops_by_reason == {"flow:pkts": 1}


def test_drop_tail_guard_on_flow_queue():
    queue = FlowQueue("f")
    queue.push(_pkt("f"))
    with pytest.raises(ValueError, match="drop_tail"):
        queue.drop_tail()
    queue.push(_pkt("f"))
    dropped = queue.drop_tail()
    assert dropped.flow_id == "f"
    assert queue.packets_dropped == 1
    assert queue.bytes_dropped == 100
    assert len(queue) == 1
    assert queue.backlog_bytes == 100


# ----------------------------------------------------------------------
# RED policy
# ----------------------------------------------------------------------
def test_red_validates_parameters():
    with pytest.raises(ConfigurationError):
        RedDrop(min_fill=0.8, max_fill=0.4)
    with pytest.raises(ConfigurationError):
        RedDrop(max_probability=0.0)
    with pytest.raises(ConfigurationError):
        RedDrop(ewma_weight=1.5)


def test_red_forces_drops_above_max_fill():
    buffer = BufferManager(
        capacity_bytes=1000,
        policy=RedDrop(min_fill=0.1, max_fill=0.5, ewma_weight=1.0))
    # The EWMA with weight 1 tracks the instantaneous occupancy, so
    # once occupancy reaches max_fill (500 bytes) every further
    # arrival is force-dropped.
    for _ in range(7):
        buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert not buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.admitted == 5
    assert set(buffer.drops_by_reason) == {"red:forced"}
    assert buffer.drops_by_reason["red:forced"] == 3


def test_red_is_deterministic_across_runs():
    def run():
        buffer = BufferManager(capacity_bytes=2000, policy="red")
        outcomes = []
        for index in range(40):
            flow_id = f"f{index % 4}"
            admitted = buffer.admit("p0", flow_id, _pkt("f"), 0.0)
            outcomes.append(admitted)
            if admitted and index % 3 == 0:
                buffer.release("p0", flow_id, 100)
        return outcomes, buffer.drops_by_reason

    first = run()
    assert first == run()
    assert any(not admitted for admitted in first[0])  # RED did drop


def test_red_without_byte_capacity_is_passthrough():
    buffer = BufferManager(policy="red")
    for _ in range(100):
        assert buffer.admit("p0", "f0", _pkt("f0"), 0.0)
    assert buffer.dropped == 0
