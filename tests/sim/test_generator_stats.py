"""Statistical properties of every traffic generator and flow-size
sampler: seeded determinism, mean rates against closed forms, and
heavy-tail mass where the distribution has one.

Sample sizes and tolerances are chosen so the checks are robust (the
seeds are fixed — these are regression tests of the samplers'
distributions, not flaky Monte Carlo)."""

import math
import random

import pytest

from repro.net.workload import (DATA_MINING_CDF, WEB_SEARCH_CDF,
                                make_size_sampler)
from repro.sim.events import Simulator
from repro.sim.generators import (BackloggedSource, CbrGenerator,
                                  EmpiricalCdfSampler, OnOffGenerator,
                                  ParetoSampler, PoissonGenerator)
from repro.sim.link import gbps
from repro.sim.packet import MTU_BYTES

RATE = gbps(1)
DURATION = 0.01
EXPECTED_PACKETS = RATE * DURATION / (MTU_BYTES * 8)


def _collect(make_generator, duration=DURATION):
    """Run one generator to ``duration``; returns arrival times."""
    sim = Simulator()
    times = []
    generator = make_generator(
        sim, lambda _fid, packet: times.append(sim.now))
    generator.start(0.0)
    sim.run_until(duration)
    return times


class TestCbr:
    def test_exact_rate_and_spacing(self):
        times = _collect(lambda sim, sink: CbrGenerator(
            sim, "f", sink, rate_bps=RATE, end_time=DURATION))
        assert len(times) == pytest.approx(EXPECTED_PACKETS, abs=1)
        gaps = {round(b - a, 12) for a, b in zip(times, times[1:])}
        assert len(gaps) == 1  # perfectly periodic

    def test_respects_end_time(self):
        times = _collect(lambda sim, sink: CbrGenerator(
            sim, "f", sink, rate_bps=RATE, end_time=DURATION / 2))
        assert max(times) < DURATION / 2

    def test_rejects_nonpositive_rate(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            CbrGenerator(sim, "f", lambda *_: None, rate_bps=0)


class TestPoisson:
    def test_mean_rate_within_tolerance(self):
        times = _collect(lambda sim, sink: PoissonGenerator(
            sim, "f", sink, rate_bps=RATE, end_time=DURATION,
            rng=random.Random(7)))
        # ~833 arrivals expected; 3-sigma of a Poisson count is ~9%.
        assert len(times) == pytest.approx(EXPECTED_PACKETS, rel=0.12)

    def test_seeded_determinism(self):
        runs = [_collect(lambda sim, sink: PoissonGenerator(
            sim, "f", sink, rate_bps=RATE, end_time=DURATION,
            rng=random.Random(3))) for _ in range(2)]
        assert runs[0] == runs[1]

    def test_interarrival_cv_is_exponential(self):
        times = _collect(lambda sim, sink: PoissonGenerator(
            sim, "f", sink, rate_bps=RATE, end_time=DURATION,
            rng=random.Random(1)))
        gaps = [b - a for a, b in zip(times, times[1:])]
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / len(gaps)
        # Exponential gaps: coefficient of variation 1.
        assert math.sqrt(var) / mean == pytest.approx(1.0, rel=0.2)


class TestOnOff:
    def test_long_run_rate_below_peak(self):
        times = _collect(lambda sim, sink: OnOffGenerator(
            sim, "f", sink, peak_rate_bps=RATE, on_seconds=5e-4,
            off_seconds=5e-4, end_time=DURATION,
            rng=random.Random(5)))
        # Duty cycle ~0.5: well below the peak count, well above zero.
        assert 0.2 * EXPECTED_PACKETS < len(times) \
            < 0.85 * EXPECTED_PACKETS

    def test_bursts_run_at_peak_rate(self):
        times = _collect(lambda sim, sink: OnOffGenerator(
            sim, "f", sink, peak_rate_bps=RATE, on_seconds=5e-4,
            off_seconds=5e-4, end_time=DURATION,
            rng=random.Random(5)))
        peak_gap = MTU_BYTES * 8 / RATE
        gaps = [b - a for a, b in zip(times, times[1:])]
        on_gaps = [g for g in gaps if g <= peak_gap * 1.0001]
        off_gaps = [g for g in gaps if g > peak_gap * 1.0001]
        assert on_gaps and off_gaps  # both regimes observed
        assert all(g == pytest.approx(peak_gap) for g in on_gaps)

    def test_seeded_determinism(self):
        runs = [_collect(lambda sim, sink: OnOffGenerator(
            sim, "f", sink, peak_rate_bps=RATE, on_seconds=1e-4,
            off_seconds=1e-4, end_time=DURATION,
            rng=random.Random(2))) for _ in range(2)]
        assert runs[0] == runs[1]


class TestBacklogged:
    def test_stays_topped_up(self):
        sim = Simulator()
        queue = []
        source = BackloggedSource(sim, "f", lambda _f, p: queue.append(p),
                                  depth=4)
        source.start(0.0)
        sim.run_until(1e-6)
        assert len(queue) == 4
        source.on_departure()
        assert len(queue) == 5  # replaced immediately


def _sample_many(sampler, n=20_000):
    return [sampler.sample() for _ in range(n)]


class TestEmpiricalCdfSampler:
    @pytest.mark.parametrize("cdf", [WEB_SEARCH_CDF, DATA_MINING_CDF])
    def test_sample_mean_matches_closed_form(self, cdf):
        sampler = EmpiricalCdfSampler(cdf, rng=random.Random(11))
        samples = _sample_many(sampler)
        assert sum(samples) / len(samples) == pytest.approx(
            sampler.mean_bytes, rel=0.25)  # heavy tail: loose mean

    @pytest.mark.parametrize("cdf", [WEB_SEARCH_CDF, DATA_MINING_CDF])
    def test_tail_mass_matches_closed_form(self, cdf):
        sampler = EmpiricalCdfSampler(cdf, rng=random.Random(13))
        samples = _sample_many(sampler)
        for threshold in (cdf[1][0], cdf[-3][0]):
            expected = sampler.tail_mass(threshold)
            observed = sum(s > threshold for s in samples) / len(samples)
            assert observed == pytest.approx(expected, abs=0.01)

    def test_support_stays_within_table(self):
        sampler = EmpiricalCdfSampler(WEB_SEARCH_CDF,
                                      rng=random.Random(17))
        samples = _sample_many(sampler, n=5000)
        assert min(samples) >= WEB_SEARCH_CDF[0][0]
        assert max(samples) <= WEB_SEARCH_CDF[-1][0]

    def test_atom_at_first_point(self):
        sampler = EmpiricalCdfSampler(WEB_SEARCH_CDF,
                                      rng=random.Random(19))
        samples = _sample_many(sampler)
        first_size, first_prob = WEB_SEARCH_CDF[0]
        observed = sum(s == first_size for s in samples) / len(samples)
        assert observed == pytest.approx(first_prob, abs=0.005)

    def test_seeded_determinism(self):
        draws = [EmpiricalCdfSampler(
            WEB_SEARCH_CDF, rng=random.Random(23)).sample()
            for _ in range(4)]
        again = [EmpiricalCdfSampler(
            WEB_SEARCH_CDF, rng=random.Random(23)).sample()
            for _ in range(4)]
        assert draws == again

    def test_validation(self):
        with pytest.raises(ValueError):
            EmpiricalCdfSampler([])
        with pytest.raises(ValueError):
            EmpiricalCdfSampler([(100, 0.5), (50, 1.0)])  # sizes down
        with pytest.raises(ValueError):
            EmpiricalCdfSampler([(50, 0.5), (100, 0.4)])  # probs down
        with pytest.raises(ValueError):
            EmpiricalCdfSampler([(50, 0.9)])  # doesn't reach 1.0
        with pytest.raises(ValueError):
            EmpiricalCdfSampler([(-1, 1.0)])


class TestParetoSampler:
    def test_sample_mean_matches_closed_form(self):
        sampler = ParetoSampler(alpha=1.5, scale_bytes=1000.0,
                                cap_bytes=1e6, rng=random.Random(29))
        samples = _sample_many(sampler, n=50_000)
        assert sum(samples) / len(samples) == pytest.approx(
            sampler.mean_bytes, rel=0.1)

    def test_tail_mass_matches_closed_form(self):
        sampler = ParetoSampler(alpha=1.5, scale_bytes=1000.0,
                                cap_bytes=1e6, rng=random.Random(31))
        samples = _sample_many(sampler)
        for threshold in (2000.0, 10_000.0, 100_000.0):
            expected = sampler.tail_mass(threshold)
            observed = sum(s > threshold for s in samples) / len(samples)
            assert observed == pytest.approx(expected, abs=0.01)

    def test_alpha_one_mean_is_logarithmic(self):
        sampler = ParetoSampler(alpha=1.0, scale_bytes=1000.0,
                                cap_bytes=1e6)
        xm, cap = 1000.0, 1e6
        assert sampler.mean_bytes == pytest.approx(
            xm * math.log(cap / xm) + (xm / cap) * cap)

    def test_cap_and_floor(self):
        sampler = ParetoSampler(alpha=0.5, scale_bytes=1000.0,
                                cap_bytes=5000.0, rng=random.Random(37))
        samples = _sample_many(sampler, n=5000)
        assert max(samples) <= 5000
        assert min(samples) >= 1000

    def test_validation(self):
        with pytest.raises(ValueError):
            ParetoSampler(alpha=0)
        with pytest.raises(ValueError):
            ParetoSampler(scale_bytes=0)
        with pytest.raises(ValueError):
            ParetoSampler(scale_bytes=1000, cap_bytes=500)


class TestWorkloadFactory:
    @pytest.mark.parametrize("name", ["web-search", "data-mining",
                                      "pareto"])
    def test_known_workloads(self, name):
        sampler = make_size_sampler(name, random.Random(0))
        assert sampler.mean_bytes > 0
        assert sampler.sample() >= 1

    def test_unknown_workload_rejected(self):
        from repro.errors import ConfigurationError
        with pytest.raises(ConfigurationError):
            make_size_sampler("mystery", random.Random(0))
