"""Tests for the discrete-event simulator."""

import pytest

from repro.errors import SimulationError
from repro.sim.events import Simulator


def test_events_fire_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(3.0, lambda: log.append("c"))
    sim.schedule(1.0, lambda: log.append("a"))
    sim.schedule(2.0, lambda: log.append("b"))
    sim.run()
    assert log == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fire_in_schedule_order():
    sim = Simulator()
    log = []
    for name in "xyz":
        sim.schedule(1.0, lambda name=name: log.append(name))
    sim.run()
    assert log == ["x", "y", "z"]


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule(1.0, lambda: None)
    with pytest.raises(SimulationError):
        sim.schedule_in(-1.0, lambda: None)


def test_cancel_prevents_firing():
    sim = Simulator()
    log = []
    handle = sim.schedule(1.0, lambda: log.append("cancelled"))
    sim.schedule(2.0, lambda: log.append("kept"))
    handle.cancel()
    sim.run()
    assert log == ["kept"]


def test_run_until_stops_clock_at_end_time():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(10.0, lambda: log.append(10))
    sim.run_until(5.0)
    assert log == [1]
    assert sim.now == 5.0
    sim.run_until(20.0)
    assert log == [1, 10]


def test_events_can_schedule_events():
    sim = Simulator()
    log = []

    def chain(depth):
        log.append(depth)
        if depth < 3:
            sim.schedule_in(1.0, lambda: chain(depth + 1))

    sim.schedule(0.0, lambda: chain(0))
    sim.run()
    assert log == [0, 1, 2, 3]
    assert sim.now == 3.0


def test_livelock_guard():
    sim = Simulator()

    def rearm():
        sim.schedule_in(0.0, rearm)

    sim.schedule(0.0, rearm)
    with pytest.raises(SimulationError):
        sim.run(max_events=100)


def test_peek_next_time_skips_cancelled():
    sim = Simulator()
    handle = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    handle.cancel()
    assert sim.peek_next_time() == 2.0
