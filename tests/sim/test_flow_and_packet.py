"""Tests for packets and flow queues."""

import pytest

from repro.sim.flow import FlowQueue
from repro.sim.packet import MTU_BYTES, Packet


def test_packet_defaults():
    packet = Packet(flow_id="f")
    assert packet.size_bytes == MTU_BYTES
    assert packet.size_bits == MTU_BYTES * 8
    assert packet.departure_time is None


def test_packet_ids_unique():
    assert Packet("a").packet_id != Packet("a").packet_id


def test_packet_size_validation():
    with pytest.raises(ValueError):
        Packet("f", size_bytes=0)


def test_flow_fifo_order():
    flow = FlowQueue("f")
    first, second = Packet("f"), Packet("f")
    assert flow.push(first) is True      # was empty
    assert flow.push(second) is False
    assert flow.pop() is first
    assert flow.pop() is second
    assert flow.is_empty


def test_flow_head_and_sizes():
    flow = FlowQueue("f")
    assert flow.head is None
    assert flow.head_size() == 0
    flow.push(Packet("f", size_bytes=700))
    flow.push(Packet("f", size_bytes=100))
    assert flow.head_size() == 700
    assert flow.backlog_bytes == 800
    assert len(flow) == 2


def test_flow_statistics():
    flow = FlowQueue("f")
    flow.push(Packet("f", size_bytes=10))
    flow.push(Packet("f", size_bytes=20))
    flow.pop()
    assert flow.packets_enqueued == 2
    assert flow.packets_dequeued == 1
    assert flow.bytes_enqueued == 30
    assert flow.bytes_dequeued == 10


def test_flow_weight_validation():
    with pytest.raises(ValueError):
        FlowQueue("f", weight=0)


def test_flow_scheduling_state_is_per_flow():
    a, b = FlowQueue("a"), FlowQueue("b")
    a.state["finish_time"] = 4.2
    assert "finish_time" not in b.state
